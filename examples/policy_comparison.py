"""Compare every caching algorithm on a generated SDSS-like trace.

Generates an EDR-flavor workload, measures yields once, then replays it
through the full algorithm line-up at both caching granularities,
printing the Tables-1/2-style breakdown and the cumulative-cost chart of
Figures 7/8.

Run:  python examples/policy_comparison.py  [num_queries]
"""

from __future__ import annotations

import sys

from repro.federation import Federation, Mediator
from repro.sim import compare_policies
from repro.sim.reporting import cost_series_chart, format_breakdown
from repro.workload import SMALL, build_sdss_catalog, edr_trace, prepare_trace

POLICIES = (
    "rate-profile",
    "online-by",
    "space-eff-by",
    "gds",
    "gdsp",
    "lru",
    "lru-k",
    "semantic",
    "static",
    "no-cache",
)


def main() -> None:
    num_queries = int(sys.argv[1]) if len(sys.argv) > 1 else 1500

    print(f"generating and measuring a {num_queries}-query EDR trace...")
    catalog = build_sdss_catalog(SMALL)
    federation = Federation.single_site(catalog)
    mediator = Mediator(federation)
    prepared = prepare_trace(edr_trace(num_queries, SMALL), mediator)

    database = federation.total_database_bytes()
    capacity = database * 3 // 10
    print(
        f"database {database / 1e6:.2f} MB, cache {capacity / 1e6:.2f} MB "
        f"(30%), sequence cost {prepared.sequence_bytes / 1e6:.2f} MB\n"
    )

    for granularity in ("table", "column"):
        results = compare_policies(
            prepared,
            federation,
            capacity,
            granularity,
            policies=POLICIES,
        )
        print(
            format_breakdown(
                results,
                title=f"=== {granularity} caching ===",
                sequence_bytes=prepared.sequence_bytes,
            )
        )
        print()
        chart_input = {
            name: results[name]
            for name in ("rate-profile", "gds", "static", "no-cache")
        }
        print(
            cost_series_chart(
                chart_input,
                title=f"cumulative WAN bytes, {granularity} caching",
            )
        )
        print()


if __name__ == "__main__":
    main()
