"""The scalability story: total WAN traffic as the federation grows.

The paper's motivation is SkyQuery's "impending scalability crisis":
network performance limits the federation at fewer than 10 sites, with
120 expected.  Because each mediator cache acts independently (Section
3), the federation's total traffic is the sum over client sites — this
script grows the client population and compares the no-cache total
against bypass-yield caching at every site.

Run:  python examples/federation_scaleout.py
"""

from __future__ import annotations

from repro.core import RateProfilePolicy
from repro.federation import Federation, Mediator
from repro.sim import ClientSite, simulate_fleet
from repro.workload import (
    TINY,
    TraceConfig,
    build_sdss_catalog,
    generate_trace,
    prepare_trace,
)

CLIENT_COUNTS = (1, 2, 4, 8)
QUERIES_PER_CLIENT = 300


def main() -> None:
    federation = Federation.single_site(build_sdss_catalog(TINY), "sdss")
    mediator = Mediator(federation)
    database = federation.total_database_bytes()
    capacity = database * 3 // 10

    # Each client site issues its own workload (different seeds: real
    # user communities differ), with a bypass-yield cache at its
    # mediator.
    client_traces = []
    for client in range(max(CLIENT_COUNTS)):
        trace = generate_trace(
            TraceConfig(
                num_queries=QUERIES_PER_CLIENT,
                flavor="edr",
                seed=9000 + client,
            ),
            TINY,
        )
        client_traces.append(prepare_trace(trace, mediator))

    print(
        f"{'clients':>7} {'no-cache total':>16} "
        f"{'bypass-yield total':>20} {'savings':>8}"
    )
    for count in CLIENT_COUNTS:
        fleet = simulate_fleet(
            federation,
            [
                ClientSite(
                    name=f"site-{i}",
                    trace=client_traces[i],
                    policy=RateProfilePolicy(capacity_bytes=capacity),
                )
                for i in range(count)
            ],
            granularity="table",
        )
        print(
            f"{count:>7} {fleet.sequence_bytes / 1e6:>13.2f} MB "
            f"{fleet.total_bytes / 1e6:>17.2f} MB "
            f"{fleet.savings_factor:>7.1f}x"
        )

    print(
        "\nEvery added client multiplies the uncached WAN load; with an "
        "altruistic\nbypass-yield cache at each mediator the shared "
        "network sees only the\nresidual bypasses and the (amortized) "
        "object loads — the federation can\ngrow without the network "
        "melting."
    )


if __name__ == "__main__":
    main()
