"""Quickstart: a bypass-yield cache in front of a tiny federation.

Builds a synthetic SDSS-like database, stands up a one-server
federation, and walks a handful of queries through the Rate-Profile
bypass-yield cache, printing each decision and the final WAN accounting.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import RateProfilePolicy
from repro.federation import Federation, Mediator
from repro.sim import Simulator
from repro.workload import (
    TINY,
    Trace,
    TraceRecord,
    build_sdss_catalog,
    prepare_trace,
)


def main() -> None:
    # 1. A synthetic astronomy database on one federation server.
    catalog = build_sdss_catalog(TINY, seed=42)
    federation = Federation.single_site(catalog, server_name="sdss")
    mediator = Mediator(federation)
    print(f"database: {federation.total_database_bytes():,} bytes across "
          f"{len(catalog.table_names())} tables\n")

    # 2. A small workload: region scans repeat against PhotoTag (worth
    #    caching); one-off identity probes and a Frame query are not.
    sqls = [
        "SELECT objID, ra, dec, modelMag_r FROM PhotoTag "
        "WHERE ra BETWEEN 10 AND 200",
        "SELECT objID, ra, dec, modelMag_r FROM PhotoTag "
        "WHERE ra BETWEEN 30 AND 220",
        "SELECT * FROM PhotoObj WHERE objID = 17",
        "SELECT objID, ra, dec, modelMag_r FROM PhotoTag "
        "WHERE ra BETWEEN 50 AND 240",
        "SELECT frameID, sky FROM Frame WHERE run = 3 AND camcol = 2",
        "SELECT objID, ra, dec, modelMag_r FROM PhotoTag "
        "WHERE ra BETWEEN 60 AND 250",
        "SELECT objID, ra, dec, modelMag_r FROM PhotoTag "
        "WHERE ra BETWEEN 80 AND 260",
    ]
    trace = Trace("quickstart")
    for i, sql in enumerate(sqls):
        trace.append(TraceRecord(index=i, sql=sql, template="demo"))

    # 3. Measure every query's yield by executing it (the paper
    #    re-executes its traces against the server for the same reason).
    prepared = prepare_trace(trace, mediator)

    # 4. Replay through a bypass-yield cache sized at 30% of the DB.
    capacity = federation.total_database_bytes() * 3 // 10
    policy = RateProfilePolicy(capacity_bytes=capacity)
    simulator = Simulator(federation, granularity="table")

    print(f"{'query':<58} {'yield':>8}  decision")
    for index, query in enumerate(prepared):
        event = simulator.build_query(query, index)
        decision = policy.process(event)
        action = "cache hit" if decision.served_from_cache else "bypass"
        if decision.loads:
            action += f" (loaded {', '.join(decision.loads)})"
        print(f"{query.sql[:56]:<58} {query.yield_bytes:>8}  {action}")

    print(f"\ncached objects: {policy.store.object_ids()}")
    print(f"cache used: {policy.store.used_bytes:,} / {capacity:,} bytes")
    print(f"hit rate: {policy.hit_rate:.0%}")

    # 5. Full accounting via the simulator (fresh policy, same trace).
    result = simulator.run(
        prepared, RateProfilePolicy(capacity_bytes=capacity)
    )
    print(
        f"\nWAN traffic: {result.total_bytes:,.0f} bytes "
        f"(bypass {result.breakdown.bypass_bytes:,.0f} + "
        f"loads {result.breakdown.load_bytes:,.0f}); "
        f"no-cache cost would be {result.sequence_bytes:,.0f}"
    )


if __name__ == "__main__":
    main()
