"""Analyze a scientific workload: what should a cache actually hold?

Runs the paper's Section 6.1 analyses on a generated trace:

* query containment (Figure 4) — can a semantic/result cache help?
* column and table locality (Figures 5-6) — do schema elements recur?

The punchline matches the paper: results don't repeat, schemas do, so
cache database objects, not query results.

Run:  python examples/workload_analysis.py
"""

from __future__ import annotations

from repro.federation import Federation, Mediator
from repro.workload import (
    SMALL,
    analyze_containment,
    analyze_locality,
    build_sdss_catalog,
    edr_trace,
)


def main() -> None:
    catalog = build_sdss_catalog(SMALL)
    federation = Federation.single_site(catalog)
    mediator = Mediator(federation)
    trace = edr_trace(2000, SMALL)
    lookup = federation.schema_lookup()

    print("=== query containment (the semantic-caching question) ===")
    containment = analyze_containment(trace, mediator, window=50)
    print(f"object queries analyzed:   {containment.total_queries}")
    print(
        f"contained in prior window: {containment.contained_queries} "
        f"({containment.containment_rate:.1%})"
    )
    print(
        f"objIDs reused at all:      {containment.reused_ids} of "
        f"{containment.distinct_ids} ({containment.reuse_rate:.1%})"
    )
    print(
        "=> almost no result reuse: a semantic cache would sit idle.\n"
    )

    for granularity in ("column", "table"):
        print(f"=== {granularity} locality (the schema-reuse story) ===")
        universe = len(federation.objects(granularity))
        report = analyze_locality(
            trace, lookup, granularity, universe_size=universe
        )
        print(
            f"{granularity}s used: {report.distinct_used} of {universe} "
            "in the schema"
        )
        print(
            f"fraction of used {granularity}s receiving 90% of "
            f"references: {report.concentration(0.9):.0%}"
        )
        print(
            f"mean consecutive-reuse run: "
            f"{report.mean_run_length():.1f} queries"
        )
        top = sorted(
            report.reference_counts.items(),
            key=lambda item: item[1],
            reverse=True,
        )[:5]
        print(f"hottest {granularity}s:")
        for name, count in top:
            print(f"  {name:<24} {count:>5} referencing queries")
        print(
            f"=> a small, stable working set: ideal {granularity}-"
            "granularity cache objects.\n"
        )


if __name__ == "__main__":
    main()
