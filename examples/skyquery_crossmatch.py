"""SkyQuery-style cross-match over a two-server federation.

The motivating workload of the World-Wide Telescope: join optical (SDSS)
detections against radio (FIRST) sources hosted on a *different* server.
Shows query decomposition — each server evaluates its local filters and
ships only the needed columns — and why that data reduction makes naive
whole-object caching dangerous.

Run:  python examples/skyquery_crossmatch.py
"""

from __future__ import annotations

from repro.federation import DatabaseServer, Federation, Mediator
from repro.workload import SMALL, build_first_catalog, build_sdss_catalog


def main() -> None:
    # Two sites: the optical survey and the radio survey, with the radio
    # archive behind a slower (3x cost) WAN link.
    federation = Federation.single_site(
        build_sdss_catalog(SMALL, seed=1), server_name="sdss"
    )
    federation.add_server(
        DatabaseServer("first", build_first_catalog(SMALL, seed=2)),
        link_weight=3.0,
    )
    mediator = Mediator(federation)

    crossmatch = (
        "SELECT p.objID, p.ra, p.dec, p.modelMag_r, f.peak "
        "FROM PhotoObj p, First f "
        "WHERE p.objID = f.objID AND f.peak > 2.0 "
        "AND p.modelMag_r < 19.0"
    )

    print("cross-match query:")
    print(f"  {crossmatch}\n")

    outcome = mediator.bypass(crossmatch)
    print(f"matched sources: {outcome.result.row_count}")
    print(f"result size (yield): {outcome.result.byte_size:,} bytes\n")

    print("decomposed shipping (per server):")
    for server, shipped in sorted(outcome.per_server_bytes.items()):
        weight = federation.network.link(server).weight
        print(
            f"  {server:<6} shipped {shipped:>8,} bytes "
            f"(link weight {weight}, cost {shipped * weight:,.0f})"
        )
    print(f"total WAN bytes: {outcome.wan_bytes:,}")
    print(f"total weighted cost: {outcome.wan_cost:,.0f}\n")

    # Contrast: what loading the raw inputs into a cache would cost.
    photo = federation.object_size("PhotoObj")
    first = federation.object_size("First")
    load_cost = (
        federation.fetch_cost("PhotoObj") + federation.fetch_cost("First")
    )
    print("contrast — caching both input tables instead:")
    print(f"  PhotoObj is {photo:,} bytes, First is {first:,} bytes")
    print(f"  weighted load cost: {load_cost:,.0f} "
          f"({load_cost / max(outcome.wan_cost, 1):,.0f}x the bypass cost)")
    print(
        "\nThis asymmetry — compact results versus bulky inputs — is why "
        "the bypass\ndecision exists: evaluating at the servers preserves "
        "their filtering and\nparallelism, and the cache only loads "
        "objects whose future yield justifies it."
    )


if __name__ == "__main__":
    main()
