"""Exception hierarchy for the bypass-yield caching reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still discriminating on the specific subclass when needed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SQLError(ReproError):
    """Base class for errors raised by the SQL engine."""


class LexerError(SQLError):
    """Raised when the lexer encounters an unrecognizable character sequence.

    Attributes:
        position: Zero-based character offset of the offending input.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class ParseError(SQLError):
    """Raised when the token stream does not form a valid statement."""


class PlanError(SQLError):
    """Raised when a parsed statement cannot be turned into a plan.

    Typical causes: unknown tables or columns, ambiguous column references,
    or aggregates mixed incorrectly with non-aggregated expressions.
    """


class ExecutionError(SQLError):
    """Raised when a valid plan fails during evaluation."""


class CatalogError(SQLError):
    """Raised for schema/catalog violations (duplicate or missing objects)."""


class FederationError(ReproError):
    """Raised for federation-level failures (unknown servers, bad routes)."""


class FaultError(ReproError):
    """Raised for malformed fault schedules or fault-engine misuse."""


class BackendUnavailable(FederationError):
    """Raised when a backend server stays dark through every retry.

    Typed so drivers can discriminate "the federation is degraded"
    from configuration errors: the proxy converts it into a degraded
    :class:`~repro.core.proxy.ProxyResponse`, the simulator accounts it
    as an unavailable query.

    Attributes:
        server: Name of the dark server (the first one encountered).
        operation: ``"load"`` or ``"bypass"``.
        object_id: The object being fetched, for load failures.
        attempts: Transport attempts made before giving up (0 when the
            circuit breaker refused the request outright).
    """

    def __init__(
        self,
        server: str,
        operation: str = "bypass",
        object_id: str = "",
        attempts: int = 0,
    ) -> None:
        detail = f" fetching {object_id!r}" if object_id else ""
        super().__init__(
            f"backend {server!r} unavailable during {operation}{detail} "
            f"(after {attempts} attempt(s))"
        )
        self.server = server
        self.operation = operation
        self.object_id = object_id
        self.attempts = attempts


class CacheError(ReproError):
    """Raised for cache misconfiguration (e.g. object larger than cache)."""


class WorkloadError(ReproError):
    """Raised for workload-generation and trace-file problems."""


class ConfigurationError(ReproError):
    """Raised for invalid runtime configuration (environment variables,
    CLI flags) where a clear message beats a traceback."""


class AnalysisError(ReproError):
    """Raised by the static-analysis tooling (``repro-lint``) for bad
    rule registrations, unknown rule selections, or missing inputs."""
