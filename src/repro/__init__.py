"""Bypass-yield caching for scientific database federations.

Reproduction of Malik, Burns, Chaudhary, "Bypass Caching: Making
Scientific Databases Good Network Citizens" (ICDE 2005).

Subpackages:

* :mod:`repro.sqlengine` — mini SQL engine (parser, planner, executor).
* :mod:`repro.federation` — SkyQuery-like federation simulator with WAN
  byte accounting.
* :mod:`repro.workload` — SDSS-style synthetic data/query/trace generation
  and the workload analyzers behind Figures 4-6.
* :mod:`repro.core` — the paper's contribution: yield model, BYHR/BYU
  metrics, Rate-Profile / OnlineBY / SpaceEffBY algorithms, baselines,
  and the live :class:`~repro.core.proxy.BypassYieldProxy`.
* :mod:`repro.sim` — trace-driven simulator and experiment sweep runner.
* :mod:`repro.experiments` — one module per paper table/figure.

The most common entry points are re-exported here::

    from repro import BypassYieldProxy, Federation, RateProfilePolicy
"""

from repro.core.policies import make_policy
from repro.core.policies.online import OnlineBYPolicy, SpaceEffBYPolicy
from repro.core.policies.rate_profile import RateProfilePolicy
from repro.core.proxy import BypassYieldProxy
from repro.federation.federation import Federation
from repro.federation.mediator import Mediator
from repro.federation.server import DatabaseServer
from repro.sim.simulator import Simulator
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import QueryEngine
from repro.workload.generator import dr1_trace, edr_trace, generate_trace
from repro.workload.prepare import prepare_trace
from repro.workload.sdss_schema import build_sdss_catalog

__version__ = "1.0.0"

__all__ = [
    "BypassYieldProxy",
    "Catalog",
    "DatabaseServer",
    "Federation",
    "Mediator",
    "OnlineBYPolicy",
    "QueryEngine",
    "RateProfilePolicy",
    "Simulator",
    "SpaceEffBYPolicy",
    "build_sdss_catalog",
    "dr1_trace",
    "edr_trace",
    "generate_trace",
    "make_policy",
    "prepare_trace",
]
