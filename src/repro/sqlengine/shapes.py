"""Shape-keyed plan caching: parse and plan each query *template* once.

Scientific workloads rarely repeat exact SQL, but they repeat query
*shapes* constantly: a million-query trace is a handful of templates
instantiated with different literals (Section 6.1).  Exact-SQL plan
caches miss almost always; this module caches by shape instead.

A query's **shape** is its text with every number and string literal
replaced by ``?`` (``TOP``/``LIMIT`` counts excepted — those bake into
the statement as plain ints, so they stay part of the shape).  The first
query of a shape is parsed and planned normally and becomes the shape's
*template*; subsequent queries of the same shape skip the lexer, parser,
and planner entirely — their literal values are extracted with one
C-speed regex pass and *rebound* into a copy of the template's AST and
plan.

Rebinding is sound because the parse structure is a function of the
shape alone: two queries with the same shape differ only in literal
leaf values, and both the recursive-descent parser and the planner's
conjunct classification are value-independent.  The module does not
take that on faith:

* at cache time, the template's literals (in AST walk order) must match
  the text-extracted values (in text order) positionally — otherwise
  the shape is marked unbindable and every query of that shape takes
  the full parse path;
* the first actual rebind of each shape is verified against a fresh
  ``plan_select(parse(sql))`` by dataclass equality; a mismatch demotes
  the shape to unbindable.

Either way the planner stays correct; shapes only ever *add* speed.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.sqlengine.ast_nodes import (
    BetweenOp,
    BinaryOp,
    Expr,
    FuncCall,
    InOp,
    IsNullOp,
    Literal,
    SelectStatement,
    UnaryOp,
)
from repro.sqlengine.expressions import split_conjuncts
from repro.sqlengine.parser import parse
from repro.sqlengine.planner import QueryPlan, SchemaLookup, plan_select

__all__ = ["ShapePlanner", "query_shape"]

#: Bound on distinct cached shapes (LRU-evicted beyond this).
DEFAULT_MAX_SHAPES = 512

# One pass over the SQL text: protect TOP/LIMIT counts, then replace
# string and number literals with ``?`` while collecting their values.
# The number lookbehind keeps digits inside identifiers (``t1``,
# ``[col2]``) out of the literal stream, mirroring the lexer's rule
# that a number token cannot start inside a word.
_LITERAL_RE = re.compile(
    r"""
    (\b(?:top|limit)\s+\d+)             # 1: shape-protected count
    | ('(?:[^']|'')*')                  # 2: string literal
    | ((?<![\w\]])                      # 3: number literal
       (?:\d+\.\d+|\d+|\.\d+)(?:[eE][+-]?\d+)?)
    """,
    re.IGNORECASE | re.VERBOSE,
)


def query_shape(sql: str) -> Tuple[str, List[Any]]:
    """Split ``sql`` into its shape and the literal values, text order.

    Numbers decode exactly as the lexer does (int unless a dot or
    exponent appears); strings decode ``''`` escapes.
    """
    values: List[Any] = []

    def repl(match: "re.Match[str]") -> str:
        protected, string, number = match.group(1, 2, 3)
        if protected is not None:
            return protected
        if string is not None:
            values.append(string[1:-1].replace("''", "'"))
        elif "." in number or "e" in number or "E" in number:
            values.append(float(number))
        else:
            values.append(int(number))
        return "?"

    return _LITERAL_RE.sub(repl, sql), values


# ----------------------------------------------------------------------
# Literal walks
# ----------------------------------------------------------------------
#
# All walks below visit expressions in *document order* — the order the
# literals appear in the SQL text — which is what lines the AST slots up
# with the text-extracted values.  ``Literal(None)`` (the NULL keyword)
# is not a slot: NULL is part of the shape text.


def _collect_literals(expr: Expr, out: List[Any]) -> None:
    if isinstance(expr, Literal):
        if expr.value is not None:
            out.append(expr.value)
    elif isinstance(expr, BinaryOp):
        _collect_literals(expr.left, out)
        _collect_literals(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _collect_literals(expr.operand, out)
    elif isinstance(expr, BetweenOp):
        _collect_literals(expr.operand, out)
        _collect_literals(expr.low, out)
        _collect_literals(expr.high, out)
    elif isinstance(expr, InOp):
        _collect_literals(expr.operand, out)
        for item in expr.items:
            _collect_literals(item, out)
    elif isinstance(expr, IsNullOp):
        _collect_literals(expr.operand, out)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            _collect_literals(arg, out)


def _statement_exprs(statement: SelectStatement) -> List[Expr]:
    """Expression roots in document order: items, ON, WHERE, GROUP BY,
    HAVING, ORDER BY."""
    exprs: List[Expr] = [
        item.expr for item in statement.items if item.expr is not None
    ]
    exprs.extend(join.condition for join in statement.joins)
    if statement.where is not None:
        exprs.append(statement.where)
    exprs.extend(statement.group_by)
    if statement.having is not None:
        exprs.append(statement.having)
    exprs.extend(item.expr for item in statement.order_by)
    return exprs


def statement_literals(statement: SelectStatement) -> List[Any]:
    """All rebindable literal values in the statement, document order."""
    values: List[Any] = []
    for expr in _statement_exprs(statement):
        _collect_literals(expr, values)
    return values


class _Rebinder:
    """Rebuilds a template expression tree with fresh literal values.

    ``counts`` maps ``id(node)`` to the number of rebindable literals in
    that subtree, precomputed once per template — subtrees with zero
    slots are shared, not copied, so rebinding touches only the paths
    that actually hold literals.
    """

    __slots__ = ("counts", "values", "pos")

    def __init__(self, counts: Dict[int, int]) -> None:
        self.counts = counts
        self.values: List[Any] = []
        self.pos = 0

    def rebind(self, expr: Expr) -> Expr:
        if not self.counts.get(id(expr), 0):
            return expr
        if isinstance(expr, Literal):
            value = self.values[self.pos]
            self.pos += 1
            return Literal(value)
        if isinstance(expr, BinaryOp):
            return BinaryOp(
                expr.op, self.rebind(expr.left), self.rebind(expr.right)
            )
        if isinstance(expr, UnaryOp):
            return UnaryOp(expr.op, self.rebind(expr.operand))
        if isinstance(expr, BetweenOp):
            return BetweenOp(
                self.rebind(expr.operand),
                self.rebind(expr.low),
                self.rebind(expr.high),
                expr.negated,
            )
        if isinstance(expr, InOp):
            return InOp(
                self.rebind(expr.operand),
                tuple(self.rebind(item) for item in expr.items),
                expr.negated,
            )
        if isinstance(expr, IsNullOp):
            return IsNullOp(self.rebind(expr.operand), expr.negated)
        if isinstance(expr, FuncCall):
            return FuncCall(
                expr.name,
                tuple(self.rebind(arg) for arg in expr.args),
                expr.star,
                expr.distinct,
            )
        return expr  # pragma: no cover - exhaustive over Expr


def _count_literals(expr: Expr, counts: Dict[int, int]) -> int:
    if isinstance(expr, Literal):
        total = 0 if expr.value is None else 1
    elif isinstance(expr, BinaryOp):
        total = _count_literals(expr.left, counts) + _count_literals(
            expr.right, counts
        )
    elif isinstance(expr, UnaryOp):
        total = _count_literals(expr.operand, counts)
    elif isinstance(expr, BetweenOp):
        total = (
            _count_literals(expr.operand, counts)
            + _count_literals(expr.low, counts)
            + _count_literals(expr.high, counts)
        )
    elif isinstance(expr, InOp):
        total = _count_literals(expr.operand, counts)
        for item in expr.items:
            total += _count_literals(item, counts)
    elif isinstance(expr, IsNullOp):
        total = _count_literals(expr.operand, counts)
    elif isinstance(expr, FuncCall):
        total = 0
        for arg in expr.args:
            total += _count_literals(arg, counts)
    else:
        total = 0
    counts[id(expr)] = total
    return total


# ----------------------------------------------------------------------
# Shape entries
# ----------------------------------------------------------------------


class _ShapeEntry:
    """One cached template: parsed statement, plan, and rebind metadata."""

    __slots__ = (
        "statement",
        "plan",
        "counts",
        "conjunct_tags",
        "output_items",
        "bindable",
        "verified",
    )

    def __init__(self, statement: SelectStatement, plan: QueryPlan) -> None:
        self.statement = statement
        self.plan = plan
        self.counts: Dict[int, int] = {}
        total = 0
        for expr in _statement_exprs(statement):
            total += _count_literals(expr, self.counts)
        self.conjunct_tags = _tag_conjuncts(statement, plan)
        self.output_items = _map_outputs(statement, plan)
        self.bindable = True
        self.verified = False

    def literal_values(self) -> List[Any]:
        return statement_literals(self.statement)

    def bind(self, values: List[Any]) -> QueryPlan:
        """Instantiate the template with ``values`` (text order)."""
        rebinder = _Rebinder(self.counts)
        rebinder.values = values
        statement = self._bind_statement(rebinder)
        return self._bind_plan(statement)

    def _bind_statement(self, rebinder: _Rebinder) -> SelectStatement:
        counts = self.counts
        st = self.statement
        items = tuple(
            item
            if item.expr is None or not counts.get(id(item.expr), 0)
            else replace(item, expr=rebinder.rebind(item.expr))
            for item in st.items
        )
        joins = tuple(
            join
            if not counts.get(id(join.condition), 0)
            else replace(join, condition=rebinder.rebind(join.condition))
            for join in st.joins
        )
        where = (
            None
            if st.where is None
            else rebinder.rebind(st.where)
        )
        group_by = tuple(rebinder.rebind(expr) for expr in st.group_by)
        having = (
            None
            if st.having is None
            else rebinder.rebind(st.having)
        )
        order_by = tuple(
            item
            if not counts.get(id(item.expr), 0)
            else replace(item, expr=rebinder.rebind(item.expr))
            for item in st.order_by
        )
        return replace(
            st,
            items=items,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
        )

    def _bind_plan(self, statement: SelectStatement) -> QueryPlan:
        template = self.plan
        num_tables = len(statement.tables)
        scope = [
            entry
            if entry.join_condition is None
            else replace(
                entry,
                join_condition=statement.joins[
                    index - num_tables
                ].condition,
            )
            for index, entry in enumerate(template.scope)
        ]

        conjuncts: List[Expr] = list(split_conjuncts(statement.where))
        for join in statement.joins:
            if join.kind == "inner":
                conjuncts.extend(split_conjuncts(join.condition))
        local: Dict[str, List[Expr]] = {
            entry.binding: [] for entry in scope
        }
        residual: List[Expr] = []
        for conjunct, tag in zip(conjuncts, self.conjunct_tags):
            if tag[0] == "local":
                local[tag[1]].append(conjunct)
            elif tag[0] == "residual":
                residual.append(conjunct)
            # Join edges carry no literals; the template's are reused.

        items = statement.items
        outputs = [
            out
            if item_index is None
            or items[item_index].expr is out.expr
            else replace(out, expr=items[item_index].expr)
            for out, item_index in zip(template.outputs, self.output_items)
        ]
        return QueryPlan(
            statement=statement,
            scope=scope,
            local_predicates=local,
            join_edges=list(template.join_edges),
            residual_predicates=residual,
            outputs=outputs,
            has_aggregates=template.has_aggregates,
            group_by=statement.group_by,
        )


def _aligned(template_values: List[Any], text_values: List[Any]) -> bool:
    """Positional, *type-strict* value equality (``5 != 5.0`` here)."""
    return len(template_values) == len(text_values) and all(
        type(a) is type(b) and a == b
        for a, b in zip(template_values, text_values)
    )


def _tag_conjuncts(
    statement: SelectStatement, plan: QueryPlan
) -> List[Tuple[str, str]]:
    """Where each WHERE/ON conjunct landed, by position.

    The planner appends the *same* expression objects into its buckets,
    so identity lookup recovers the classification without re-running
    it.  Classification depends only on column references — never on
    literal values — so the tags hold for every instantiation of the
    shape.
    """
    conjuncts: List[Expr] = list(split_conjuncts(statement.where))
    for join in statement.joins:
        if join.kind == "inner":
            conjuncts.extend(split_conjuncts(join.condition))
    local_ids = {
        id(expr): binding
        for binding, exprs in plan.local_predicates.items()
        for expr in exprs
    }
    residual_ids = {id(expr) for expr in plan.residual_predicates}
    tags: List[Tuple[str, str]] = []
    for conjunct in conjuncts:
        binding = local_ids.get(id(conjunct))
        if binding is not None:
            tags.append(("local", binding))
        elif id(conjunct) in residual_ids:
            tags.append(("residual", ""))
        else:
            tags.append(("edge", ""))
    return tags


def _map_outputs(
    statement: SelectStatement, plan: QueryPlan
) -> List[Optional[int]]:
    """For each plan output, the select-item index whose expression it
    carries (``None`` for star-expanded columns, which hold no literals)."""
    item_for_expr = {
        id(item.expr): index
        for index, item in enumerate(statement.items)
        if item.expr is not None
    }
    return [item_for_expr.get(id(out.expr)) for out in plan.outputs]


# ----------------------------------------------------------------------
# The planner front-end
# ----------------------------------------------------------------------


class ShapePlanner:
    """Plans SQL through a bounded LRU cache of query shapes.

    Drop-in replacement for ``plan_select(parse(sql), lookup)`` — same
    results (enforced by per-shape verification), sublinear work on
    template-heavy workloads.

    Attributes:
        shape_hits: Queries served by rebinding a cached template.
        shape_misses: Queries that built a new template.
        fallbacks: Queries planned the slow way because their shape is
            unbindable (literal order could not be aligned, or a rebind
            verification failed).
    """

    def __init__(
        self,
        lookup: SchemaLookup,
        max_shapes: int = DEFAULT_MAX_SHAPES,
    ) -> None:
        if max_shapes <= 0:
            raise ValueError("max_shapes must be positive")
        self._lookup = lookup
        self._max_shapes = max_shapes
        self._shapes: "OrderedDict[str, Optional[_ShapeEntry]]" = (
            OrderedDict()
        )
        self.shape_hits = 0
        self.shape_misses = 0
        self.fallbacks = 0

    def _plan_fresh(self, sql: str) -> QueryPlan:
        return plan_select(parse(sql), self._lookup)

    def plan(self, sql: str) -> QueryPlan:
        """Parse-and-plan ``sql``, reusing the shape template if one
        exists."""
        shape, values = query_shape(sql)
        entry = self._shapes.get(shape)
        if entry is None and shape not in self._shapes:
            return self._build_template(shape, values, sql)
        self._shapes.move_to_end(shape)
        if entry is None or not entry.bindable:
            self.fallbacks += 1
            return self._plan_fresh(sql)
        self.shape_hits += 1
        bound = entry.bind(values)
        if not entry.verified:
            # First rebind of this shape: check the fast path against
            # the full parse+plan once, then trust it.
            fresh = self._plan_fresh(sql)
            if bound != fresh:
                entry.bindable = False
                self.fallbacks += 1
                self.shape_hits -= 1
                return fresh
            entry.verified = True
        return bound

    def _build_template(
        self, shape: str, values: List[Any], sql: str
    ) -> QueryPlan:
        self.shape_misses += 1
        plan = self._plan_fresh(sql)
        entry: Optional[_ShapeEntry] = _ShapeEntry(plan.statement, plan)
        # The template is usable only if its AST literal slots line up
        # one-for-one with the text-extracted values; a mismatch (a
        # comment containing digits, a folded literal) makes the shape
        # unbindable, never wrong.
        if entry is not None and not _aligned(entry.literal_values(), values):
            entry = None
        self._shapes[shape] = entry
        if len(self._shapes) > self._max_shapes:
            self._shapes.popitem(last=False)
        return plan

    @property
    def cached_shapes(self) -> int:
        return len(self._shapes)
