"""Table statistics and selectivity-based yield estimation.

The paper measures yields exactly "by re-executing the traces with the
server".  A production mediator cannot afford that; it would estimate
result sizes from catalog statistics, the way query optimizers do.  This
module provides classical equi-width-histogram statistics and a
selectivity estimator over the engine's predicate AST, giving
``estimate_yield(plan)`` — the estimated result bytes of a query without
executing it.  The companion ablation benchmark asks the question that
matters for the paper: do bypass-yield cache decisions survive the
estimation error?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import SQLError
from repro.sqlengine.ast_nodes import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InOp,
    IsNullOp,
    Literal,
    UnaryOp,
)
from repro.sqlengine.planner import QueryPlan, ScopeEntry
from repro.sqlengine.storage import Table

#: Fallback selectivity for predicates the estimator cannot reason about.
DEFAULT_SELECTIVITY = 0.33


@dataclass
class ColumnStatistics:
    """Equi-width histogram statistics for one numeric column.

    String columns get only null/distinct counts (equality selectivity
    still works through ``distinct_count``).
    """

    null_count: int
    distinct_count: int
    row_count: int
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    histogram: List[int] = field(default_factory=list)

    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count

    def selectivity_eq(self, value: Any) -> float:
        """P(column = value) assuming uniform distinct values."""
        if self.non_null_count == 0 or self.distinct_count == 0:
            return 0.0
        if isinstance(value, (int, float)):
            if (
                self.minimum is not None
                and self.maximum is not None
                and not self.minimum <= value <= self.maximum
            ):
                return 0.0
        return min(1.0, 1.0 / self.distinct_count) * (
            self.non_null_count / max(1, self.row_count)
        )

    def selectivity_range(
        self,
        low: Optional[float],
        high: Optional[float],
    ) -> float:
        """P(low <= column <= high) from the histogram.

        ``None`` bounds are open (±infinity).
        """
        if self.non_null_count == 0:
            return 0.0
        if (
            self.minimum is None
            or self.maximum is None
            or not self.histogram
        ):
            return DEFAULT_SELECTIVITY
        lo = self.minimum if low is None else max(low, self.minimum)
        hi = self.maximum if high is None else min(high, self.maximum)
        if lo > hi:
            return 0.0
        span = self.maximum - self.minimum
        if span <= 0:
            # Single-valued column: all or nothing.
            inside = lo <= self.minimum <= hi
            fraction = 1.0 if inside else 0.0
        else:
            bins = len(self.histogram)
            width = span / bins
            covered = 0.0
            for i, count in enumerate(self.histogram):
                bin_lo = self.minimum + i * width
                bin_hi = bin_lo + width
                overlap = max(
                    0.0, min(hi, bin_hi) - max(lo, bin_lo)
                )
                if width > 0 and count:
                    covered += count * (overlap / width)
            # The max value sits on the last bin's upper edge; clamp.
            fraction = min(1.0, covered / max(1, self.non_null_count))
        return fraction * (self.non_null_count / max(1, self.row_count))

    def selectivity_null(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count


@dataclass
class TableStatistics:
    """Statistics for every column of one table."""

    table_name: str
    row_count: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    @classmethod
    def collect(cls, table: Table, bins: int = 16) -> "TableStatistics":
        """Scan a table once and build per-column statistics."""
        if bins <= 0:
            raise SQLError("histogram bins must be positive")
        stats = cls(table_name=table.name, row_count=table.row_count)
        for col in table.schema.columns:
            values = table.column_values(col.name)
            non_null = [v for v in values if v is not None]
            numeric = [
                v for v in non_null if isinstance(v, (int, float))
            ]
            column = ColumnStatistics(
                null_count=len(values) - len(non_null),
                distinct_count=len(set(non_null)),
                row_count=len(values),
            )
            if numeric and len(numeric) == len(non_null):
                column.minimum = float(min(numeric))
                column.maximum = float(max(numeric))
                histogram = [0] * bins
                span = column.maximum - column.minimum
                for value in numeric:
                    if span <= 0:
                        histogram[0] += 1
                        continue
                    index = int(
                        (value - column.minimum) / span * bins
                    )
                    histogram[min(index, bins - 1)] += 1
                column.histogram = histogram
            stats.columns[col.key] = column
        return stats

    def column(self, name: str) -> Optional[ColumnStatistics]:
        return self.columns.get(name.lower())


class YieldEstimator:
    """Estimate result sizes from statistics, never touching the data."""

    def __init__(self, stats_by_table: Dict[str, TableStatistics]) -> None:
        self._stats = {
            name.lower(): stats for name, stats in stats_by_table.items()
        }

    @classmethod
    def from_catalog(cls, catalog, bins: int = 16) -> "YieldEstimator":
        """Collect statistics for every table of a catalog-like provider
        (anything with ``tables()``)."""
        return cls(
            {
                table.name: TableStatistics.collect(table, bins)
                for table in catalog.tables()
            }
        )

    def table_stats(self, table_name: str) -> Optional[TableStatistics]:
        return self._stats.get(table_name.lower())

    # -- cardinality -----------------------------------------------------

    def estimate_rows(self, plan: QueryPlan) -> float:
        """Estimated row count of a plan's result (pre-LIMIT)."""
        cardinality = 1.0
        for entry in plan.scope:
            stats = self.table_stats(entry.table_name)
            rows = float(stats.row_count) if stats else 1000.0
            selectivity = 1.0
            for predicate in plan.local_predicates.get(entry.binding, []):
                selectivity *= self._selectivity(predicate, entry)
            cardinality *= rows * selectivity

        for edge in plan.join_edges:
            # Classic equi-join estimate: divide by the larger distinct
            # count of the two join keys.
            distinct = max(
                self._distinct(plan, edge.left_binding, edge.left_column),
                self._distinct(
                    plan, edge.right_binding, edge.right_column
                ),
                1,
            )
            cardinality /= distinct

        for predicate in plan.residual_predicates:
            cardinality *= DEFAULT_SELECTIVITY

        if plan.has_aggregates:
            cardinality = self._estimate_groups(plan, cardinality)
        if plan.statement.distinct:
            cardinality *= 0.9  # mild dedup assumption
        if plan.statement.limit is not None:
            cardinality = min(cardinality, float(plan.statement.limit))
        return max(0.0, cardinality)

    def estimate_yield(self, plan: QueryPlan) -> float:
        """Estimated result bytes: rows x output row width."""
        width = sum(out.width for out in plan.outputs)
        return self.estimate_rows(plan) * width

    # -- internals ---------------------------------------------------------

    def _entry_column(
        self, entry: ScopeEntry, ref: ColumnRef
    ) -> Optional[ColumnStatistics]:
        if ref.table is not None and ref.table.lower() != (
            entry.binding.lower()
        ):
            return None
        if ref.column not in entry.schema:
            return None
        stats = self.table_stats(entry.table_name)
        if stats is None:
            return None
        return stats.column(ref.column)

    def _distinct(
        self, plan: QueryPlan, binding: str, column: str
    ) -> int:
        for entry in plan.scope:
            if entry.binding.lower() == binding.lower():
                stats = self.table_stats(entry.table_name)
                if stats is None:
                    return 1
                col = stats.column(column)
                return col.distinct_count if col else 1
        return 1

    def _estimate_groups(
        self, plan: QueryPlan, input_rows: float
    ) -> float:
        if not plan.group_by:
            return 1.0
        groups = 1.0
        for expr in plan.group_by:
            if isinstance(expr, ColumnRef):
                for entry in plan.scope:
                    column = self._entry_column(entry, expr)
                    if column is not None:
                        groups *= max(1, column.distinct_count)
                        break
                else:
                    groups *= 10.0
            else:
                groups *= 10.0
        return min(groups, input_rows) if input_rows > 0 else groups

    def _operand_stats(
        self, operand: Expr, entry: ScopeEntry
    ) -> Optional[ColumnStatistics]:
        """Statistics for a bare column operand; None for expressions."""
        if isinstance(operand, ColumnRef):
            return self._entry_column(entry, operand)
        return None

    def _selectivity(self, predicate: Expr, entry: ScopeEntry) -> float:
        if isinstance(predicate, BinaryOp):
            return self._selectivity_binary(predicate, entry)
        if isinstance(predicate, BetweenOp):
            column = self._operand_stats(predicate.operand, entry)
            low = _literal_number(predicate.low)
            high = _literal_number(predicate.high)
            if column is None or low is None or high is None:
                return DEFAULT_SELECTIVITY
            inside = column.selectivity_range(low, high)
            return 1.0 - inside if predicate.negated else inside
        if isinstance(predicate, InOp):
            column = self._operand_stats(predicate.operand, entry)
            if column is None:
                return DEFAULT_SELECTIVITY
            total = 0.0
            for item in predicate.items:
                if isinstance(item, Literal):
                    total += column.selectivity_eq(item.value)
            total = min(1.0, total)
            return 1.0 - total if predicate.negated else total
        if isinstance(predicate, IsNullOp):
            column = self._operand_stats(predicate.operand, entry)
            if column is None:
                return DEFAULT_SELECTIVITY
            fraction = column.selectivity_null()
            return 1.0 - fraction if predicate.negated else fraction
        if isinstance(predicate, UnaryOp) and predicate.op == "not":
            return 1.0 - self._selectivity(predicate.operand, entry)
        return DEFAULT_SELECTIVITY

    def _selectivity_binary(
        self, predicate: BinaryOp, entry: ScopeEntry
    ) -> float:
        if predicate.op == "and":
            return self._selectivity(
                predicate.left, entry
            ) * self._selectivity(predicate.right, entry)
        if predicate.op == "or":
            left = self._selectivity(predicate.left, entry)
            right = self._selectivity(predicate.right, entry)
            return min(1.0, left + right - left * right)

        column, value, op = self._comparison_parts(predicate, entry)
        if column is None or op is None:
            return DEFAULT_SELECTIVITY
        if op == "=":
            return column.selectivity_eq(value)
        if op == "<>":
            return max(0.0, 1.0 - column.selectivity_eq(value))
        if not isinstance(value, (int, float)):
            return DEFAULT_SELECTIVITY
        if op in ("<", "<="):
            return column.selectivity_range(None, float(value))
        if op in (">", ">="):
            return column.selectivity_range(float(value), None)
        return DEFAULT_SELECTIVITY

    def _comparison_parts(
        self, predicate: BinaryOp, entry: ScopeEntry
    ) -> Tuple[Optional[ColumnStatistics], Any, Optional[str]]:
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}
        if isinstance(predicate.left, ColumnRef) and isinstance(
            predicate.right, Literal
        ):
            return (
                self._entry_column(entry, predicate.left),
                predicate.right.value,
                predicate.op,
            )
        if isinstance(predicate.right, ColumnRef) and isinstance(
            predicate.left, Literal
        ):
            op = flipped.get(predicate.op, predicate.op)
            return (
                self._entry_column(entry, predicate.right),
                predicate.left.value,
                op,
            )
        return None, None, None


def _literal_number(expr: Expr) -> Optional[float]:
    if isinstance(expr, Literal) and isinstance(expr.value, (int, float)):
        return float(expr.value)
    return None
