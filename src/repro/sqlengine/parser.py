"""Recursive-descent parser for the SELECT subset.

Grammar (roughly)::

    select      := SELECT [DISTINCT] [TOP n] items FROM tables
                   {join} [WHERE expr] [GROUP BY exprs [HAVING expr]]
                   [ORDER BY order_items] [LIMIT n]
    items       := item {',' item}
    item        := '*' | ident '.' '*' | expr [[AS] ident]
    tables      := table_ref {',' table_ref}
    table_ref   := ident [[AS] ident]
    join        := [INNER | LEFT [OUTER]] JOIN table_ref ON expr
    expr        := or_expr
    or_expr     := and_expr {OR and_expr}
    and_expr    := not_expr {AND not_expr}
    not_expr    := NOT not_expr | predicate
    predicate   := additive [comparison | BETWEEN | IN | IS NULL | LIKE]
    additive    := term {('+'|'-') term}
    term        := factor {('*'|'/'|'%') factor}
    factor      := literal | func | column | '(' expr ')' | '-' factor
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.sqlengine.ast_nodes import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InOp,
    IsNullOp,
    Join,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    TableRef,
    UnaryOp,
)
from repro.sqlengine.lexer import Token, TokenType, tokenize

_COMPARISON_OPS = frozenset({"=", "<>", "!=", "<", "<=", ">", ">="})
_FUNCTION_KEYWORDS = frozenset({"count", "sum", "avg", "min", "max"})


def parse(sql: str) -> SelectStatement:
    """Parse one SELECT statement.

    Raises:
        ParseError: on any syntax error, including trailing garbage.
        LexerError: on malformed tokens.
    """
    return _Parser(tokenize(sql), sql).parse_select(top_level=True)


class _Parser:
    def __init__(self, tokens: List[Token], source: str) -> None:
        self._tokens = tokens
        self._source = source
        self._pos = 0

    # -- token helpers --------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.ttype is not TokenType.EOF:
            self._pos += 1
        return tok

    def _error(self, message: str) -> ParseError:
        tok = self._peek()
        context = self._source[max(0, tok.position - 20) : tok.position + 20]
        return ParseError(
            f"{message} near {tok.text or '<eof>'!r} "
            f"(position {tok.position}: ...{context}...)"
        )

    def _expect_keyword(self, word: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(word):
            raise self._error(f"expected {word.upper()}")
        return self._advance()

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _expect(self, ttype: TokenType) -> Token:
        tok = self._peek()
        if tok.ttype is not ttype:
            raise self._error(f"expected {ttype.value}")
        return self._advance()

    def _ident_text(self, tok: Token) -> str:
        # Bracketed identifiers carry the name in .value.
        return tok.value if tok.value is not None else tok.text

    def _expect_ident(self) -> str:
        tok = self._peek()
        if tok.ttype is TokenType.IDENT:
            return self._ident_text(self._advance())
        # Non-reserved usage of function keywords as identifiers is rare;
        # reject to keep error messages crisp.
        raise self._error("expected identifier")

    # -- statement ------------------------------------------------------

    def parse_select(self, top_level: bool = False) -> SelectStatement:
        self._expect_keyword("select")
        distinct = self._accept_keyword("distinct")

        limit: Optional[int] = None
        if self._accept_keyword("top"):
            tok = self._expect(TokenType.NUMBER)
            if not isinstance(tok.value, int) or tok.value < 0:
                raise self._error("TOP expects a non-negative integer")
            limit = tok.value

        items = self._parse_select_items()
        self._expect_keyword("from")
        tables = self._parse_table_refs()
        joins = self._parse_joins()

        where = None
        if self._accept_keyword("where"):
            where = self.parse_expr()

        group_by: Tuple[Expr, ...] = ()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            group_by = tuple(self._parse_expr_list())
        having = None
        if self._accept_keyword("having"):
            # HAVING without GROUP BY is legal SQL (single implicit
            # group); the planner rejects it when no aggregate appears.
            having = self.parse_expr()

        order_by: Tuple[OrderItem, ...] = ()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            order_by = tuple(self._parse_order_items())

        if self._accept_keyword("limit"):
            tok = self._expect(TokenType.NUMBER)
            if not isinstance(tok.value, int) or tok.value < 0:
                raise self._error("LIMIT expects a non-negative integer")
            if limit is not None:
                limit = min(limit, tok.value)
            else:
                limit = tok.value

        if top_level and self._peek().ttype is not TokenType.EOF:
            raise self._error("unexpected input after statement")

        return SelectStatement(
            items=tuple(items),
            tables=tuple(tables),
            joins=tuple(joins),
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            distinct=distinct,
        )

    def _parse_select_items(self) -> List[SelectItem]:
        items = [self._parse_select_item()]
        while self._peek().ttype is TokenType.COMMA:
            self._advance()
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        tok = self._peek()
        if tok.ttype is TokenType.STAR:
            self._advance()
            return SelectItem(star=True)
        if (
            tok.ttype is TokenType.IDENT
            and self._peek(1).ttype is TokenType.DOT
            and self._peek(2).ttype is TokenType.STAR
        ):
            table = self._ident_text(self._advance())
            self._advance()  # dot
            self._advance()  # star
            return SelectItem(star=True, table=table)

        expr = self.parse_expr()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().ttype is TokenType.IDENT:
            alias = self._ident_text(self._advance())
        return SelectItem(expr=expr, alias=alias)

    def _parse_table_refs(self) -> List[TableRef]:
        refs = [self._parse_table_ref()]
        while self._peek().ttype is TokenType.COMMA:
            self._advance()
            refs.append(self._parse_table_ref())
        return refs

    def _parse_table_ref(self) -> TableRef:
        table = self._expect_ident()
        alias = None
        if self._accept_keyword("as"):
            alias = self._expect_ident()
        elif self._peek().ttype is TokenType.IDENT:
            alias = self._ident_text(self._advance())
        return TableRef(table=table, alias=alias)

    def _parse_joins(self) -> List[Join]:
        joins: List[Join] = []
        while True:
            kind = "inner"
            if self._peek().is_keyword("inner"):
                if not self._peek(1).is_keyword("join"):
                    raise self._error("expected JOIN after INNER")
                self._advance()
            elif self._peek().is_keyword("left"):
                self._advance()
                self._accept_keyword("outer")
                kind = "left"
                if not self._peek().is_keyword("join"):
                    raise self._error("expected JOIN after LEFT [OUTER]")
            if not self._accept_keyword("join"):
                if kind == "left":
                    raise self._error("expected JOIN")
                break
            table = self._parse_table_ref()
            self._expect_keyword("on")
            condition = self.parse_expr()
            joins.append(Join(table=table, condition=condition, kind=kind))
        return joins

    def _parse_order_items(self) -> List[OrderItem]:
        items = []
        while True:
            expr = self.parse_expr()
            ascending = True
            if self._accept_keyword("desc"):
                ascending = False
            else:
                self._accept_keyword("asc")
            items.append(OrderItem(expr=expr, ascending=ascending))
            if self._peek().ttype is TokenType.COMMA:
                self._advance()
                continue
            return items

    def _parse_expr_list(self) -> List[Expr]:
        exprs = [self.parse_expr()]
        while self._peek().ttype is TokenType.COMMA:
            self._advance()
            exprs.append(self.parse_expr())
        return exprs

    # -- expressions ----------------------------------------------------

    def parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        while self._accept_keyword("or"):
            right = self._parse_and()
            left = BinaryOp("or", left, right)
        return left

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        while self._accept_keyword("and"):
            right = self._parse_not()
            left = BinaryOp("and", left, right)
        return left

    def _parse_not(self) -> Expr:
        if self._accept_keyword("not"):
            return UnaryOp("not", self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        tok = self._peek()
        if tok.ttype is TokenType.OP and tok.text in _COMPARISON_OPS:
            op = self._advance().text
            if op == "!=":
                op = "<>"
            right = self._parse_additive()
            return BinaryOp(op, left, right)
        negated = False
        if tok.is_keyword("not") and self._peek(1).ttype is TokenType.KEYWORD:
            follower = self._peek(1).text
            if follower in ("between", "in", "like"):
                self._advance()
                negated = True
                tok = self._peek()
        if tok.is_keyword("between"):
            self._advance()
            low = self._parse_additive()
            self._expect_keyword("and")
            high = self._parse_additive()
            return BetweenOp(left, low, high, negated=negated)
        if tok.is_keyword("in"):
            self._advance()
            self._expect(TokenType.LPAREN)
            items = self._parse_expr_list()
            self._expect(TokenType.RPAREN)
            return InOp(left, tuple(items), negated=negated)
        if tok.is_keyword("like"):
            self._advance()
            pattern = self._parse_additive()
            expr: Expr = BinaryOp("like", left, pattern)
            if negated:
                expr = UnaryOp("not", expr)
            return expr
        if tok.is_keyword("is"):
            self._advance()
            is_negated = self._accept_keyword("not")
            self._expect_keyword("null")
            return IsNullOp(left, negated=is_negated)
        if negated:
            raise self._error("expected BETWEEN, IN or LIKE after NOT")
        return left

    def _parse_additive(self) -> Expr:
        left = self._parse_term()
        while True:
            tok = self._peek()
            if tok.ttype is TokenType.OP and tok.text in ("+", "-"):
                op = self._advance().text
                left = BinaryOp(op, left, self._parse_term())
            else:
                return left

    def _parse_term(self) -> Expr:
        left = self._parse_factor()
        while True:
            tok = self._peek()
            if tok.ttype is TokenType.STAR:
                self._advance()
                left = BinaryOp("*", left, self._parse_factor())
            elif tok.ttype is TokenType.OP and tok.text in ("/", "%"):
                op = self._advance().text
                left = BinaryOp(op, left, self._parse_factor())
            else:
                return left

    def _parse_factor(self) -> Expr:
        tok = self._peek()
        if tok.ttype is TokenType.OP and tok.text == "-":
            self._advance()
            return UnaryOp("-", self._parse_factor())
        if tok.ttype is TokenType.OP and tok.text == "+":
            self._advance()
            return self._parse_factor()
        if tok.ttype is TokenType.NUMBER:
            self._advance()
            return Literal(tok.value)
        if tok.ttype is TokenType.STRING:
            self._advance()
            return Literal(tok.value)
        if tok.is_keyword("null"):
            self._advance()
            return Literal(None)
        if tok.ttype is TokenType.KEYWORD and tok.text in _FUNCTION_KEYWORDS:
            return self._parse_function(self._advance().text)
        if tok.ttype is TokenType.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(TokenType.RPAREN)
            return expr
        if tok.ttype is TokenType.IDENT:
            name = self._ident_text(self._advance())
            if self._peek().ttype is TokenType.LPAREN:
                return self._parse_function(name)
            if self._peek().ttype is TokenType.DOT:
                self._advance()
                column = self._expect_ident()
                return ColumnRef(column=column, table=name)
            return ColumnRef(column=name)
        raise self._error("expected expression")

    def _parse_function(self, name: str) -> FuncCall:
        self._expect(TokenType.LPAREN)
        if self._peek().ttype is TokenType.STAR:
            self._advance()
            self._expect(TokenType.RPAREN)
            return FuncCall(name=name.lower(), star=True)
        distinct = self._accept_keyword("distinct")
        args: List[Expr] = []
        if self._peek().ttype is not TokenType.RPAREN:
            args = self._parse_expr_list()
        self._expect(TokenType.RPAREN)
        return FuncCall(
            name=name.lower(), args=tuple(args), distinct=distinct
        )
