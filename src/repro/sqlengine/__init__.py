"""A from-scratch mini SQL engine (parser, planner, column-store executor).

This package is the substrate the federation servers run.  It exists so
that every query in a workload trace can be *actually executed* against
synthetic data, giving the bypass-yield cache exact result sizes (yields)
rather than estimates — mirroring how the paper re-executed the SDSS
traces against a live server.

Public entry points:

* :func:`repro.sqlengine.parser.parse` — SQL text to AST.
* :class:`repro.sqlengine.executor.QueryEngine` — parse+plan+execute facade.
* :class:`repro.sqlengine.catalog.Catalog` — table container with exact
  object-size metadata.
"""

from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import QueryEngine, ResultColumn, ResultSet
from repro.sqlengine.parser import parse
from repro.sqlengine.printer import expr_to_sql, explain, to_sql
from repro.sqlengine.planner import QueryPlan, SchemaLookup, plan_select
from repro.sqlengine.schema import Column, DatabaseSchema, TableSchema
from repro.sqlengine.statistics import (
    ColumnStatistics,
    TableStatistics,
    YieldEstimator,
)
from repro.sqlengine.storage import Table
from repro.sqlengine.types import ColumnType

__all__ = [
    "Catalog",
    "Column",
    "ColumnStatistics",
    "ColumnType",
    "DatabaseSchema",
    "QueryEngine",
    "QueryPlan",
    "ResultColumn",
    "ResultSet",
    "SchemaLookup",
    "Table",
    "TableSchema",
    "TableStatistics",
    "YieldEstimator",
    "expr_to_sql",
    "explain",
    "parse",
    "plan_select",
    "to_sql",
]
