"""SQL rendering: turn ASTs back into parseable text.

Used by EXPLAIN output, error messages, and the parser's round-trip
property tests (``parse(to_sql(parse(q)))`` must equal ``parse(q)``).
Emitted text is fully parenthesized where precedence could be ambiguous,
so it is not guaranteed to be byte-identical to the input — only
structurally identical after re-parsing.
"""

from __future__ import annotations

from typing import List

from repro.errors import SQLError
from repro.sqlengine.ast_nodes import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InOp,
    IsNullOp,
    Join,
    Literal,
    OrderItem,
    SelectItem,
    SelectStatement,
    UnaryOp,
)

_NEEDS_IDENT_QUOTING = frozenset(" .,()[]+-*/%<>='\"")


def render_identifier(name: str) -> str:
    """Quote an identifier with [brackets] when it needs it."""
    if not name:
        raise SQLError("cannot render an empty identifier")
    if any(ch in _NEEDS_IDENT_QUOTING for ch in name):
        return f"[{name}]"
    return name


def render_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def expr_to_sql(expr: Expr) -> str:
    """Render one expression as parseable SQL text."""
    if isinstance(expr, Literal):
        return render_literal(expr.value)
    if isinstance(expr, ColumnRef):
        column = render_identifier(expr.column)
        if expr.table is None:
            return column
        return f"{render_identifier(expr.table)}.{column}"
    if isinstance(expr, UnaryOp):
        inner = expr_to_sql(expr.operand)
        if expr.op == "not":
            # Fully parenthesized: NOT binds looser than BETWEEN/IN/
            # comparisons, so a bare "NOT x" as an operand would
            # re-parse with different structure.
            return f"(NOT ({inner}))"
        return f"(-({inner}))"
    if isinstance(expr, BinaryOp):
        left = expr_to_sql(expr.left)
        right = expr_to_sql(expr.right)
        op = expr.op.upper() if expr.op in ("and", "or", "like") else expr.op
        return f"({left} {op} {right})"
    if isinstance(expr, BetweenOp):
        negation = "NOT " if expr.negated else ""
        return (
            f"({expr_to_sql(expr.operand)} {negation}BETWEEN "
            f"{expr_to_sql(expr.low)} AND {expr_to_sql(expr.high)})"
        )
    if isinstance(expr, InOp):
        items = ", ".join(expr_to_sql(item) for item in expr.items)
        negation = "NOT " if expr.negated else ""
        return f"({expr_to_sql(expr.operand)} {negation}IN ({items}))"
    if isinstance(expr, IsNullOp):
        negation = "NOT " if expr.negated else ""
        return f"({expr_to_sql(expr.operand)} IS {negation}NULL)"
    if isinstance(expr, FuncCall):
        name = expr.name.upper()
        if expr.star:
            return f"{name}(*)"
        args = ", ".join(expr_to_sql(arg) for arg in expr.args)
        distinct = "DISTINCT " if expr.distinct else ""
        return f"{name}({distinct}{args})"
    raise SQLError(f"cannot render expression {expr!r}")


def _render_item(item: SelectItem) -> str:
    if item.star:
        if item.table is None:
            return "*"
        return f"{render_identifier(item.table)}.*"
    assert item.expr is not None
    text = expr_to_sql(item.expr)
    if item.alias:
        text += f" AS {render_identifier(item.alias)}"
    return text


def _render_join(join: Join) -> str:
    keyword = "JOIN" if join.kind == "inner" else "LEFT JOIN"
    table = render_identifier(join.table.table)
    if join.table.alias:
        table += f" {render_identifier(join.table.alias)}"
    return f"{keyword} {table} ON {expr_to_sql(join.condition)}"


def _render_order(item: OrderItem) -> str:
    direction = "ASC" if item.ascending else "DESC"
    return f"{expr_to_sql(item.expr)} {direction}"


def to_sql(statement: SelectStatement) -> str:
    """Render a full SELECT statement as parseable SQL text."""
    parts: List[str] = ["SELECT"]
    if statement.distinct:
        parts.append("DISTINCT")
    parts.append(", ".join(_render_item(item) for item in statement.items))

    tables: List[str] = []
    for ref in statement.tables:
        text = render_identifier(ref.table)
        if ref.alias:
            text += f" {render_identifier(ref.alias)}"
        tables.append(text)
    parts.append("FROM " + ", ".join(tables))

    for join in statement.joins:
        parts.append(_render_join(join))

    if statement.where is not None:
        parts.append("WHERE " + expr_to_sql(statement.where))
    if statement.group_by:
        parts.append(
            "GROUP BY "
            + ", ".join(expr_to_sql(expr) for expr in statement.group_by)
        )
    if statement.having is not None:
        parts.append("HAVING " + expr_to_sql(statement.having))
    if statement.order_by:
        parts.append(
            "ORDER BY "
            + ", ".join(_render_order(item) for item in statement.order_by)
        )
    if statement.limit is not None:
        parts.append(f"LIMIT {statement.limit}")
    return " ".join(parts)


def explain(plan) -> str:
    """Human-readable plan summary: scans, pushdowns, joins, residuals.

    Accepts a :class:`~repro.sqlengine.planner.QueryPlan`.
    """
    lines: List[str] = ["QueryPlan"]
    for entry in plan.scope:
        label = f"scan {entry.table_name}"
        if entry.binding.lower() != entry.table_name.lower():
            label += f" AS {entry.binding}"
        if entry.join_kind != "inner":
            label = f"{entry.join_kind} join -> " + label
            if entry.join_condition is not None:
                label += f" ON {expr_to_sql(entry.join_condition)}"
        lines.append(f"  {label}")
        for predicate in plan.local_predicates.get(entry.binding, []):
            lines.append(f"    pushdown: {expr_to_sql(predicate)}")
    for edge in plan.join_edges:
        lines.append(
            f"  hash join: {edge.left_binding}.{edge.left_column} = "
            f"{edge.right_binding}.{edge.right_column}"
        )
    for predicate in plan.residual_predicates:
        lines.append(f"  residual filter: {expr_to_sql(predicate)}")
    if plan.has_aggregates:
        group = ", ".join(expr_to_sql(e) for e in plan.group_by) or "(all)"
        lines.append(f"  aggregate over: {group}")
    outputs = ", ".join(out.name for out in plan.outputs)
    lines.append(f"  project: {outputs}")
    if plan.statement.order_by:
        lines.append(
            "  order by: "
            + ", ".join(
                _render_order(item) for item in plan.statement.order_by
            )
        )
    if plan.statement.limit is not None:
        lines.append(f"  limit: {plan.statement.limit}")
    return "\n".join(lines)
