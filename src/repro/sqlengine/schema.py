"""Schema objects: columns, tables, and whole-database schemas.

Schemas carry exact byte widths because the bypass-yield model prices
everything in bytes: object (table/column) sizes determine cache space and
fetch costs, and column widths determine how a query's yield is divided
among the objects it touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import CatalogError
from repro.sqlengine.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A named, typed column with a fixed storage width in bytes.

    Args:
        name: Column name; matching is case-insensitive but the declared
            case is preserved for display.
        ctype: The scalar type.
        width: Storage bytes per value.  Defaults to the type's natural
            width; override for wide strings (CHAR(n)).
    """

    name: str
    ctype: ColumnType
    width: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("column name must be non-empty")
        if self.width == 0:
            object.__setattr__(self, "width", self.ctype.default_width)
        if self.width <= 0:
            raise CatalogError(
                f"column {self.name!r} must have positive width, got {self.width}"
            )

    @property
    def key(self) -> str:
        """Case-insensitive lookup key."""
        return self.name.lower()


class TableSchema:
    """Ordered collection of columns forming one table's schema."""

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not name:
            raise CatalogError("table name must be non-empty")
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        self.name = name
        self._columns: List[Column] = list(columns)
        self._by_key: Dict[str, Column] = {}
        for col in self._columns:
            if col.key in self._by_key:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {name!r}"
                )
            self._by_key[col.key] = col

    @property
    def key(self) -> str:
        """Case-insensitive lookup key."""
        return self.name.lower()

    @property
    def columns(self) -> Tuple[Column, ...]:
        return tuple(self._columns)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(col.name for col in self._columns)

    @property
    def row_width(self) -> int:
        """Total bytes per row across all columns."""
        return sum(col.width for col in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._by_key

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name.

        Raises:
            CatalogError: if no such column exists.
        """
        try:
            return self._by_key[name.lower()]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def index_of(self, name: str) -> int:
        """Position of ``name`` within the column order."""
        key = name.lower()
        for i, col in enumerate(self._columns):
            if col.key == key:
                return i
        raise CatalogError(f"table {self.name!r} has no column {name!r}")

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name}:{c.ctype.value}" for c in self._columns)
        return f"TableSchema({self.name!r}, [{cols}])"


@dataclass
class DatabaseSchema:
    """A named collection of table schemas (one per federation server)."""

    name: str
    tables: Dict[str, TableSchema] = field(default_factory=dict)

    def add(self, table: TableSchema) -> None:
        if table.key in self.tables:
            raise CatalogError(
                f"schema {self.name!r} already has table {table.name!r}"
            )
        self.tables[table.key] = table

    def table(self, name: str) -> TableSchema:
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise CatalogError(
                f"schema {self.name!r} has no table {name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.tables

    def table_names(self) -> List[str]:
        return [t.name for t in self.tables.values()]


def resolve_column(
    schemas: Sequence[TableSchema],
    column_name: str,
    table_hint: Optional[str] = None,
) -> Tuple[TableSchema, Column]:
    """Resolve a possibly-unqualified column against candidate tables.

    Args:
        schemas: Tables in scope (FROM-clause order).
        column_name: Bare column name.
        table_hint: Optional table name or alias that qualifies the column.

    Returns:
        The (table, column) pair.

    Raises:
        CatalogError: when the column is unknown or ambiguous.
    """
    if table_hint is not None:
        hint = table_hint.lower()
        for table in schemas:
            if table.key == hint:
                return table, table.column(column_name)
        raise CatalogError(f"unknown table or alias {table_hint!r}")

    matches = [
        (table, table.column(column_name))
        for table in schemas
        if column_name in table
    ]
    if not matches:
        names = ", ".join(t.name for t in schemas)
        raise CatalogError(
            f"column {column_name!r} not found in any of: {names}"
        )
    if len(matches) > 1:
        owners = ", ".join(t.name for t, _ in matches)
        raise CatalogError(
            f"column {column_name!r} is ambiguous (in {owners})"
        )
    return matches[0]
