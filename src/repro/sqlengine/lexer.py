"""Tokenizer for the SQL subset used by the astronomy workload.

Handles identifiers (including ``[bracketed]`` SQL Server style), dotted
names, numeric and string literals, operators, and the keyword set needed
for select-project-join-aggregate queries.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterator, List, Optional

from repro.errors import LexerError

KEYWORDS = frozenset(
    {
        "select", "from", "where", "and", "or", "not", "as", "top",
        "join", "inner", "left", "outer", "on", "group", "by", "order",
        "asc", "desc", "between", "in", "like", "is", "null", "limit",
        "distinct", "count", "sum", "avg", "min", "max", "having",
    }
)


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENT = "ident"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    COMMA = "comma"
    DOT = "dot"
    LPAREN = "lparen"
    RPAREN = "rparen"
    STAR = "star"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """One lexical token.

    Attributes:
        ttype: Token category.
        text: Canonical text (keywords lowered, identifiers as written).
        value: Decoded value for literals (int/float/str).
        position: Character offset in the source.
    """

    ttype: TokenType
    text: str
    value: Any
    position: int

    def is_keyword(self, word: str) -> bool:
        return self.ttype is TokenType.KEYWORD and self.text == word


_TWO_CHAR_OPS = ("<=", ">=", "<>", "!=")
_ONE_CHAR_OPS = "<>=+-/%"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql`` into a list ending with an EOF token.

    Raises:
        LexerError: on unterminated strings or unexpected characters.
    """
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":
            # Line comment.
            j = sql.find("\n", i)
            i = n if j < 0 else j + 1
            continue
        if ch == "," :
            tokens.append(Token(TokenType.COMMA, ",", None, i))
            i += 1
            continue
        if ch == "." and not (i + 1 < n and sql[i + 1].isdigit()):
            tokens.append(Token(TokenType.DOT, ".", None, i))
            i += 1
            continue
        if ch == "(":
            tokens.append(Token(TokenType.LPAREN, "(", None, i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(TokenType.RPAREN, ")", None, i))
            i += 1
            continue
        if ch == "*":
            tokens.append(Token(TokenType.STAR, "*", None, i))
            i += 1
            continue
        if ch == "'":
            tokens.append(_lex_string(sql, i))
            i += len(tokens[-1].text)
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and sql[i + 1].isdigit()
        ):
            tokens.append(_lex_number(sql, i))
            i += len(tokens[-1].text)
            continue
        if ch == "[":
            tokens.append(_lex_bracketed(sql, i))
            i += len(tokens[-1].text)
            continue
        if ch.isalpha() or ch == "_":
            tokens.append(_lex_word(sql, i))
            i += len(tokens[-1].text)
            continue
        two = sql[i : i + 2]
        if two in _TWO_CHAR_OPS:
            tokens.append(Token(TokenType.OP, two, None, i))
            i += 2
            continue
        if ch in _ONE_CHAR_OPS:
            tokens.append(Token(TokenType.OP, ch, None, i))
            i += 1
            continue
        raise LexerError(f"unexpected character {ch!r}", i)
    tokens.append(Token(TokenType.EOF, "", None, n))
    return tokens


def _lex_string(sql: str, start: int) -> Token:
    """Lex a single-quoted string with '' as the escape for a quote."""
    i = start + 1
    n = len(sql)
    chars: List[str] = []
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                chars.append("'")
                i += 2
                continue
            text = sql[start : i + 1]
            return Token(TokenType.STRING, text, "".join(chars), start)
        chars.append(ch)
        i += 1
    raise LexerError("unterminated string literal", start)


def _lex_number(sql: str, start: int) -> Token:
    i = start
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            # A dot not followed by a digit terminates the number (it is
            # probably a qualified-name dot after an integer — unlikely,
            # but keep the rule strict).
            if i + 1 < n and sql[i + 1].isdigit():
                seen_dot = True
                i += 1
            else:
                break
        elif ch in "eE" and not seen_exp and i > start:
            nxt = sql[i + 1] if i + 1 < n else ""
            nxt2 = sql[i + 2] if i + 2 < n else ""
            if nxt.isdigit() or (nxt in "+-" and nxt2.isdigit()):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    text = sql[start:i]
    if seen_dot or seen_exp:
        return Token(TokenType.NUMBER, text, float(text), start)
    return Token(TokenType.NUMBER, text, int(text), start)


def _lex_word(sql: str, start: int) -> Token:
    i = start
    n = len(sql)
    while i < n and (sql[i].isalnum() or sql[i] == "_"):
        i += 1
    text = sql[start:i]
    lowered = text.lower()
    if lowered in KEYWORDS:
        return Token(TokenType.KEYWORD, lowered, None, start)
    return Token(TokenType.IDENT, text, None, start)


def _lex_bracketed(sql: str, start: int) -> Token:
    end = sql.find("]", start)
    if end < 0:
        raise LexerError("unterminated bracketed identifier", start)
    text = sql[start : end + 1]
    return Token(TokenType.IDENT, text, text[1:-1], start)
