"""Expression compilation and evaluation with SQL three-valued logic.

Expressions are compiled once per query into Python closures operating on
flat row tuples; a :class:`RowLayout` maps qualified and unqualified column
names to tuple positions.  NULL propagates through comparisons and
arithmetic; AND/OR/NOT follow SQL's three-valued truth tables with ``None``
standing in for UNKNOWN.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, PlanError
from repro.sqlengine.ast_nodes import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InOp,
    IsNullOp,
    Literal,
    UnaryOp,
)

RowFunc = Callable[[Tuple[Any, ...]], Any]


class RowLayout:
    """Name-to-position mapping for the flat row tuples of one query scope.

    Each column is addressable as ``binding.column`` and, when unambiguous,
    as the bare ``column``.
    """

    def __init__(self) -> None:
        self._qualified: Dict[Tuple[str, str], int] = {}
        self._unqualified: Dict[str, Optional[int]] = {}
        self._width = 0
        self._slots: List[Tuple[str, str]] = []

    @property
    def width(self) -> int:
        return self._width

    @property
    def slots(self) -> List[Tuple[str, str]]:
        """(binding, column) per tuple position."""
        return list(self._slots)

    def add(self, binding: str, column: str) -> int:
        """Register one column; returns its tuple position."""
        key = (binding.lower(), column.lower())
        if key in self._qualified:
            raise PlanError(
                f"duplicate column {binding}.{column} in row layout"
            )
        position = self._width
        self._qualified[key] = position
        bare = column.lower()
        if bare in self._unqualified:
            # Mark ambiguous: bare-name lookup now fails.
            self._unqualified[bare] = None
        else:
            self._unqualified[bare] = position
        self._slots.append((binding, column))
        self._width += 1
        return position

    def position(self, column: str, binding: Optional[str] = None) -> int:
        """Tuple position for a column reference.

        Raises:
            PlanError: unknown or ambiguous reference.
        """
        if binding is not None:
            key = (binding.lower(), column.lower())
            if key not in self._qualified:
                raise PlanError(f"unknown column {binding}.{column}")
            return self._qualified[key]
        pos = self._unqualified.get(column.lower(), -1)
        if pos == -1:
            raise PlanError(f"unknown column {column}")
        if pos is None:
            raise PlanError(f"ambiguous column {column}")
        return pos

    def has(self, column: str, binding: Optional[str] = None) -> bool:
        try:
            self.position(column, binding)
            return True
        except PlanError:
            return False


def sql_and(left: Any, right: Any) -> Any:
    """SQL three-valued AND."""
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def sql_or(left: Any, right: Any) -> Any:
    """SQL three-valued OR."""
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


def sql_not(value: Any) -> Any:
    """SQL three-valued NOT."""
    if value is None:
        return None
    return not value


_COMPARATORS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITHMETIC: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


def like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (%, _) into a compiled regex."""
    parts: List[str] = []
    for ch in pattern:
        if ch == "%":
            parts.append(".*")
        elif ch == "_":
            parts.append(".")
        else:
            parts.append(re.escape(ch))
    return re.compile("^" + "".join(parts) + "$", re.IGNORECASE)


def compile_expr(expr: Expr, layout: RowLayout) -> RowFunc:
    """Compile ``expr`` to a closure over row tuples.

    Aggregate function calls must be rewritten away before compilation
    (the planner replaces them with column references into the aggregated
    layout); encountering one here is a planning bug.
    """
    if isinstance(expr, Literal):
        value = expr.value
        return lambda row: value

    if isinstance(expr, ColumnRef):
        pos = layout.position(expr.column, expr.table)
        return lambda row: row[pos]

    if isinstance(expr, UnaryOp):
        operand = compile_expr(expr.operand, layout)
        if expr.op == "not":
            return lambda row: sql_not(operand(row))
        if expr.op == "-":
            def negate(row: Tuple[Any, ...]) -> Any:
                value = operand(row)
                return None if value is None else -value
            return negate
        raise PlanError(f"unknown unary operator {expr.op!r}")

    if isinstance(expr, BinaryOp):
        return _compile_binary(expr, layout)

    if isinstance(expr, BetweenOp):
        operand = compile_expr(expr.operand, layout)
        low = compile_expr(expr.low, layout)
        high = compile_expr(expr.high, layout)
        negated = expr.negated

        def between(row: Tuple[Any, ...]) -> Any:
            value = operand(row)
            lo = low(row)
            hi = high(row)
            if value is None or lo is None or hi is None:
                return None
            result = lo <= value <= hi
            return not result if negated else result

        return between

    if isinstance(expr, InOp):
        operand = compile_expr(expr.operand, layout)
        items = [compile_expr(item, layout) for item in expr.items]
        negated = expr.negated

        def contains(row: Tuple[Any, ...]) -> Any:
            value = operand(row)
            if value is None:
                return None
            candidates = [item(row) for item in items]
            result = value in [c for c in candidates if c is not None]
            if not result and any(c is None for c in candidates):
                return None
            return not result if negated else result

        return contains

    if isinstance(expr, IsNullOp):
        operand = compile_expr(expr.operand, layout)
        negated = expr.negated

        def is_null(row: Tuple[Any, ...]) -> bool:
            result = operand(row) is None
            return not result if negated else result

        return is_null

    if isinstance(expr, FuncCall):
        from repro.sqlengine.functions import (
            is_aggregate_name,
            is_scalar_function,
            scalar_function,
        )

        if is_aggregate_name(expr.name):
            raise PlanError(
                f"aggregate {expr.name!r} cannot be evaluated per-row; "
                "the planner must rewrite it"
            )
        if not is_scalar_function(expr.name):
            raise PlanError(f"unknown function {expr.name!r}")
        if expr.star or expr.distinct:
            raise PlanError(
                f"scalar function {expr.name!r} takes plain arguments"
            )
        min_args, max_args, implementation = scalar_function(expr.name)
        if not min_args <= len(expr.args) <= max_args:
            raise PlanError(
                f"{expr.name!r} expects {min_args}"
                + (f"-{max_args}" if max_args != min_args else "")
                + f" arguments, got {len(expr.args)}"
            )
        arg_funcs = [compile_expr(arg, layout) for arg in expr.args]

        def call(row: Tuple[Any, ...]) -> Any:
            values = [func(row) for func in arg_funcs]
            if any(value is None for value in values):
                return None
            try:
                return implementation(*values)
            except (TypeError, ValueError) as exc:
                raise ExecutionError(
                    f"{expr.name}({values!r}) failed: {exc}"
                ) from exc

        return call

    raise PlanError(f"cannot compile expression {expr!r}")


def _compile_binary(expr: BinaryOp, layout: RowLayout) -> RowFunc:
    op = expr.op
    if op == "and":
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        return lambda row: sql_and(left(row), right(row))
    if op == "or":
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        return lambda row: sql_or(left(row), right(row))
    if op == "like":
        left = compile_expr(expr.left, layout)
        if not isinstance(expr.right, Literal) or not isinstance(
            expr.right.value, str
        ):
            raise PlanError("LIKE requires a string literal pattern")
        regex = like_to_regex(expr.right.value)

        def like(row: Tuple[Any, ...]) -> Any:
            value = left(row)
            if value is None:
                return None
            if not isinstance(value, str):
                raise ExecutionError(
                    f"LIKE applied to non-string value {value!r}"
                )
            return regex.match(value) is not None

        return like
    if op in _COMPARATORS:
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        compare = _COMPARATORS[op]

        def comparison(row: Tuple[Any, ...]) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            try:
                return compare(a, b)
            except TypeError as exc:
                raise ExecutionError(
                    f"cannot compare {a!r} and {b!r}: {exc}"
                ) from exc

        return comparison
    if op in _ARITHMETIC:
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)
        apply = _ARITHMETIC[op]

        def arithmetic(row: Tuple[Any, ...]) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            try:
                return apply(a, b)
            except TypeError as exc:
                raise ExecutionError(
                    f"arithmetic error on {a!r} {op} {b!r}: {exc}"
                ) from exc

        return arithmetic
    if op == "/":
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)

        def divide(row: Tuple[Any, ...]) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None:
                return None
            if b == 0:
                return None  # SQL engines commonly NULL-out, we follow.
            return a / b

        return divide
    if op == "%":
        left = compile_expr(expr.left, layout)
        right = compile_expr(expr.right, layout)

        def modulo(row: Tuple[Any, ...]) -> Any:
            a = left(row)
            b = right(row)
            if a is None or b is None or b == 0:
                return None
            return a % b

        return modulo
    raise PlanError(f"unknown binary operator {op!r}")


def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]
