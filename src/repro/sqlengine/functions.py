"""Aggregate function implementations.

Each aggregate is a small accumulator object; the executor feeds it one
value per input row (NULLs are skipped, per SQL semantics) and reads
``result()`` at group end.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Set

from repro.errors import PlanError


class Aggregate:
    """Base accumulator; subclasses override :meth:`add` / :meth:`result`."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountAggregate(Aggregate):
    """COUNT(expr) — counts non-NULL inputs. COUNT(*) feeds a sentinel."""

    def __init__(self, distinct: bool = False) -> None:
        self._count = 0
        self._distinct = distinct
        self._seen: Set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._count += 1

    def result(self) -> int:
        return self._count


class SumAggregate(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._total: Any = None
        self._distinct = distinct
        self._seen: Set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total = value if self._total is None else self._total + value

    def result(self) -> Any:
        return self._total


class AvgAggregate(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._total: Any = None
        self._count = 0
        self._distinct = distinct
        self._seen: Set[Any] = set()

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self._total = value if self._total is None else self._total + value
        self._count += 1

    def result(self) -> Optional[float]:
        if self._count == 0:
            return None
        return self._total / self._count


class MinAggregate(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value < self._best:
            self._best = value

    def result(self) -> Any:
        return self._best


class MaxAggregate(Aggregate):
    def __init__(self, distinct: bool = False) -> None:
        self._best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self._best is None or value > self._best:
            self._best = value

    def result(self) -> Any:
        return self._best


_FACTORIES: Dict[str, Callable[[bool], Aggregate]] = {
    "count": lambda distinct: CountAggregate(distinct),
    "sum": lambda distinct: SumAggregate(distinct),
    "avg": lambda distinct: AvgAggregate(distinct),
    "min": lambda distinct: MinAggregate(distinct),
    "max": lambda distinct: MaxAggregate(distinct),
}


def _sql_abs(value: Any) -> Any:
    return abs(value)


def _sql_floor(value: Any) -> int:
    import math

    return math.floor(value)


def _sql_ceiling(value: Any) -> int:
    import math

    return math.ceil(value)


def _sql_sqrt(value: Any) -> Optional[float]:
    import math

    if value < 0:
        return None  # SQL engines raise; NULL keeps the pipeline total
    return math.sqrt(value)


def _sql_log10(value: Any) -> Optional[float]:
    import math

    if value <= 0:
        return None
    return math.log10(value)


def _sql_power(base: Any, exponent: Any) -> Optional[float]:
    try:
        result = float(base) ** float(exponent)
    except (OverflowError, ZeroDivisionError):
        return None
    if isinstance(result, complex):
        return None
    return result


def _sql_round(value: Any, digits: Any = 0) -> float:
    return round(float(value), int(digits))


#: Scalar functions: name -> (min_args, max_args, implementation).
#: NULL inputs short-circuit to NULL before the implementation runs.
SCALAR_FUNCTIONS: Dict[str, tuple] = {
    "abs": (1, 1, _sql_abs),
    "floor": (1, 1, _sql_floor),
    "ceiling": (1, 1, _sql_ceiling),
    "sqrt": (1, 1, _sql_sqrt),
    "log10": (1, 1, _sql_log10),
    "power": (2, 2, _sql_power),
    "round": (1, 2, _sql_round),
}


def is_scalar_function(name: str) -> bool:
    return name.lower() in SCALAR_FUNCTIONS


def scalar_function(name: str):
    """(min_args, max_args, callable) for a scalar function.

    Raises:
        PlanError: unknown function name.
    """
    try:
        return SCALAR_FUNCTIONS[name.lower()]
    except KeyError:
        raise PlanError(f"unknown function {name!r}") from None


def make_aggregate(name: str, distinct: bool = False) -> Aggregate:
    """Instantiate an aggregate accumulator by (case-insensitive) name.

    Raises:
        PlanError: for unknown aggregate names.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise PlanError(f"unknown aggregate function {name!r}") from None
    return factory(distinct)


def is_aggregate_name(name: str) -> bool:
    return name.lower() in _FACTORIES
