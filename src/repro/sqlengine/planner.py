"""Query planning: binding, predicate pushdown, and join-edge extraction.

The planner turns a parsed :class:`SelectStatement` into a
:class:`QueryPlan`:

* FROM/JOIN relations are bound against the catalog and given scope
  bindings (alias or table name);
* the WHERE clause is split into conjuncts, each classified as a
  single-relation *local* predicate (pushed below the join), an equi-join
  edge (executed as a hash join), or a residual predicate evaluated on the
  joined rows;
* SELECT stars are expanded, aliases recorded, and aggregate usage
  validated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import PlanError
from repro.sqlengine.ast_nodes import (
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    SelectItem,
    SelectStatement,
    column_refs,
    is_aggregate,
)
from repro.sqlengine.expressions import split_conjuncts
from repro.sqlengine.schema import TableSchema


@dataclass(frozen=True)
class ScopeEntry:
    """One relation in the query scope.

    ``join_kind`` is ``"inner"`` for FROM-list tables and inner joins;
    left-joined tables carry ``"left"`` plus their raw ON condition
    (which must not merge into the global predicate pool — it only
    governs matching, never filters the preserved side).
    """

    binding: str          # alias or table name used to qualify columns
    table_name: str       # underlying catalog table
    schema: TableSchema
    join_kind: str = "inner"
    join_condition: Optional[Expr] = None


@dataclass(frozen=True)
class JoinEdge:
    """An equality join condition ``left_binding.col = right_binding.col``."""

    left_binding: str
    left_column: str
    right_binding: str
    right_column: str


@dataclass(frozen=True)
class OutputColumn:
    """One output column of the projection.

    ``source`` is the (table_name, column_name) provenance when the output
    is a bare column reference — the yield model uses it to attribute
    result bytes to cacheable objects.  ``width`` is the byte width used
    for yield computation.
    """

    name: str
    expr: Expr
    width: int
    source: Optional[Tuple[str, str]] = None


@dataclass
class QueryPlan:
    """Everything the executor needs, fully bound."""

    statement: SelectStatement
    scope: List[ScopeEntry]
    local_predicates: Dict[str, List[Expr]]
    join_edges: List[JoinEdge]
    residual_predicates: List[Expr]
    outputs: List[OutputColumn]
    has_aggregates: bool
    group_by: Tuple[Expr, ...] = ()

    def binding_for_table(self, table_name: str) -> Optional[str]:
        for entry in self.scope:
            if entry.table_name.lower() == table_name.lower():
                return entry.binding
        return None


class SchemaProvider:
    """Minimal protocol the planner needs: table-schema lookup by name."""

    def table_schema(self, name: str) -> TableSchema:  # pragma: no cover
        raise NotImplementedError


def plan_select(
    statement: SelectStatement, schemas: "SchemaLookup"
) -> QueryPlan:
    """Bind and plan a SELECT statement.

    Args:
        statement: Parsed statement.
        schemas: Anything with a ``table_schema(name) -> TableSchema``
            method (catalogs and federations both provide one).

    Raises:
        PlanError: unknown/ambiguous names, bad aggregate usage.
    """
    scope = _build_scope(statement, schemas)
    bindings = {entry.binding.lower(): entry for entry in scope}
    left_bindings = {
        entry.binding for entry in scope if entry.join_kind == "left"
    }

    conjuncts: List[Expr] = list(split_conjuncts(statement.where))
    for join in statement.joins:
        if join.kind == "inner":
            conjuncts.extend(split_conjuncts(join.condition))
        else:
            # Left-join ON conditions stay attached to the scope entry;
            # validate their column references here.
            for ref in column_refs(join.condition):
                _resolve_binding(ref, scope, bindings)

    local: Dict[str, List[Expr]] = {entry.binding: [] for entry in scope}
    edges: List[JoinEdge] = []
    residual: List[Expr] = []

    for conjunct in conjuncts:
        placed = _classify_conjunct(conjunct, scope, bindings)
        if placed[0] == "local" and placed[1] not in left_bindings:
            local[placed[1]].append(conjunct)
        elif placed[0] == "edge" and not (
            {placed[1].left_binding, placed[1].right_binding}
            & left_bindings
        ):
            edges.append(placed[1])
        else:
            # WHERE predicates touching a left-joined relation evaluate
            # after NULL padding, so they cannot be pushed below it.
            residual.append(conjunct)

    outputs = _expand_outputs(statement, scope)
    has_aggregates = bool(statement.group_by) or any(
        out.expr is not None and is_aggregate(out.expr) for out in outputs
    )
    if statement.having is not None and not has_aggregates:
        raise PlanError("HAVING requires GROUP BY or aggregates")

    _validate_column_refs(statement, scope, outputs)

    return QueryPlan(
        statement=statement,
        scope=scope,
        local_predicates=local,
        join_edges=edges,
        residual_predicates=residual,
        outputs=outputs,
        has_aggregates=has_aggregates,
        group_by=statement.group_by,
    )


class SchemaLookup:
    """Adapter giving the planner schema lookup over a dict of schemas."""

    def __init__(self, tables: Dict[str, TableSchema]) -> None:
        self._tables = {key.lower(): value for key, value in tables.items()}

    @classmethod
    def from_catalog(cls, catalog: "CatalogLike") -> "SchemaLookup":
        tables = {t.name: t.schema for t in catalog.tables()}
        return cls(tables)

    def table_schema(self, name: str) -> TableSchema:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise PlanError(f"unknown table {name!r}") from None


class CatalogLike:  # pragma: no cover - typing helper only
    def tables(self) -> Sequence[object]:
        raise NotImplementedError


def _build_scope(
    statement: SelectStatement, schemas: SchemaLookup
) -> List[ScopeEntry]:
    scope: List[ScopeEntry] = []
    seen: Set[str] = set()

    def add(ref, kind: str, condition: Optional[Expr]) -> None:
        schema = schemas.table_schema(ref.table)
        binding = ref.binding
        if binding.lower() in seen:
            raise PlanError(f"duplicate table binding {binding!r}")
        seen.add(binding.lower())
        scope.append(
            ScopeEntry(
                binding=binding,
                table_name=schema.name,
                schema=schema,
                join_kind=kind,
                join_condition=condition,
            )
        )

    for ref in statement.tables:
        add(ref, "inner", None)
    for join in statement.joins:
        condition = join.condition if join.kind != "inner" else None
        add(join.table, join.kind, condition)
    return scope


def _resolve_binding(
    ref: ColumnRef,
    scope: List[ScopeEntry],
    bindings: Dict[str, ScopeEntry],
) -> str:
    """The scope binding that owns ``ref``.

    Raises:
        PlanError: unknown or ambiguous column.
    """
    if ref.table is not None:
        entry = bindings.get(ref.table.lower())
        if entry is None:
            raise PlanError(f"unknown table or alias {ref.table!r}")
        if ref.column not in entry.schema:
            raise PlanError(
                f"table {entry.table_name!r} has no column {ref.column!r}"
            )
        return entry.binding
    owners = [
        entry for entry in scope if ref.column in entry.schema
    ]
    if not owners:
        raise PlanError(f"unknown column {ref.column!r}")
    if len(owners) > 1:
        names = ", ".join(entry.binding for entry in owners)
        raise PlanError(f"ambiguous column {ref.column!r} (in {names})")
    return owners[0].binding


def _classify_conjunct(
    conjunct: Expr,
    scope: List[ScopeEntry],
    bindings: Dict[str, ScopeEntry],
):
    """Classify one WHERE conjunct as local, join edge, or residual."""
    refs = column_refs(conjunct)
    owner_bindings = {
        _resolve_binding(ref, scope, bindings) for ref in refs
    }
    if len(owner_bindings) == 1:
        return ("local", owner_bindings.pop())
    if (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
        and len(owner_bindings) == 2
    ):
        left_binding = _resolve_binding(conjunct.left, scope, bindings)
        right_binding = _resolve_binding(conjunct.right, scope, bindings)
        return (
            "edge",
            JoinEdge(
                left_binding=left_binding,
                left_column=conjunct.left.column,
                right_binding=right_binding,
                right_column=conjunct.right.column,
            ),
        )
    if not owner_bindings:
        # Constant predicate; evaluate on joined rows (cheap anyway).
        return ("residual", None)
    return ("residual", None)


def _expand_outputs(
    statement: SelectStatement, scope: List[ScopeEntry]
) -> List[OutputColumn]:
    outputs: List[OutputColumn] = []
    for item in statement.items:
        if item.star:
            outputs.extend(_expand_star(item, scope))
            continue
        expr = item.expr
        assert expr is not None
        name = item.alias or _default_name(expr, len(outputs))
        width, source = _output_width(expr, scope)
        outputs.append(
            OutputColumn(name=name, expr=expr, width=width, source=source)
        )
    return outputs


def _expand_star(
    item: SelectItem, scope: List[ScopeEntry]
) -> List[OutputColumn]:
    if item.table is not None:
        entries = [
            entry
            for entry in scope
            if entry.binding.lower() == item.table.lower()
        ]
        if not entries:
            raise PlanError(f"unknown table or alias {item.table!r} in *")
    else:
        entries = list(scope)
    outputs: List[OutputColumn] = []
    for entry in entries:
        for col in entry.schema.columns:
            ref = ColumnRef(column=col.name, table=entry.binding)
            outputs.append(
                OutputColumn(
                    name=col.name,
                    expr=ref,
                    width=col.width,
                    source=(entry.table_name, col.name),
                )
            )
    return outputs


def _default_name(expr: Expr, index: int) -> str:
    if isinstance(expr, ColumnRef):
        return expr.column
    if isinstance(expr, FuncCall):
        return expr.name
    return f"expr_{index}"


_DEFAULT_EXPR_WIDTH = 8


def _output_width(
    expr: Expr, scope: List[ScopeEntry]
) -> Tuple[int, Optional[Tuple[str, str]]]:
    """Byte width (and provenance) of one output expression.

    Bare column references inherit the column's declared width and record
    provenance; computed expressions are priced at 8 bytes (a double/
    bigint), which matches how the paper sizes derived values.
    """
    if isinstance(expr, ColumnRef):
        bindings = {entry.binding.lower(): entry for entry in scope}
        binding = _resolve_binding(expr, scope, bindings)
        entry = bindings[binding.lower()]
        col = entry.schema.column(expr.column)
        return col.width, (entry.table_name, col.name)
    return _DEFAULT_EXPR_WIDTH, None


def _validate_column_refs(
    statement: SelectStatement,
    scope: List[ScopeEntry],
    outputs: List[OutputColumn],
) -> None:
    bindings = {entry.binding.lower(): entry for entry in scope}
    exprs: List[Expr] = [out.expr for out in outputs]
    if statement.where is not None:
        exprs.append(statement.where)
    exprs.extend(statement.group_by)
    if statement.having is not None:
        exprs.append(statement.having)
    for join in statement.joins:
        exprs.append(join.condition)
    alias_names = {
        (out.name or "").lower() for out in outputs
    }
    for expr in exprs:
        for ref in column_refs(expr):
            try:
                _resolve_binding(ref, scope, bindings)
            except PlanError:
                if ref.table is None and ref.column.lower() in alias_names:
                    continue  # references a select alias; allowed downstream
                raise
