"""Plan execution: scans, hash joins, aggregation, ordering, projection.

The executor consumes a :class:`~repro.sqlengine.planner.QueryPlan` and a
table provider (anything with ``table(name) -> Table``) and produces a
:class:`ResultSet` whose exact byte size is the query's *yield* in the
bypass-yield model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError, PlanError
from repro.sqlengine.ast_nodes import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InOp,
    IsNullOp,
    Literal,
    OrderItem,
    UnaryOp,
    is_aggregate,
)
from repro.sqlengine.expressions import RowLayout, compile_expr
from repro.sqlengine.functions import make_aggregate
from repro.sqlengine.parser import parse
from repro.sqlengine.planner import (
    JoinEdge,
    OutputColumn,
    QueryPlan,
    ScopeEntry,
    SchemaLookup,
    plan_select,
)
from repro.sqlengine.storage import Table
from repro.sqlengine.vectorized import filtered_rows as _vector_filtered_rows

#: Scan-path observer: ``(table_name, path)`` with path one of
#: ``"index"`` (hash-index probe), ``"vectorized"`` (columnar mask
#: evaluation), or ``"rowpath"`` (row-at-a-time fallback).  Installed by
#: observability layers (the mediator's execute span) to attribute how
#: each table scan actually ran; ``None`` costs one comparison per scan.
ScanObserver = Callable[[str, str], None]

_SCAN_OBSERVER: Optional[ScanObserver] = None


def set_scan_observer(
    observer: Optional[ScanObserver],
) -> Optional[ScanObserver]:
    """Install (or clear) the scan observer; returns the previous one.

    Callers restore the previous observer when done so nested
    executions (a traced mediator evaluating inside a traced driver)
    compose.
    """
    global _SCAN_OBSERVER
    previous = _SCAN_OBSERVER
    _SCAN_OBSERVER = observer
    return previous


@dataclass
class ResultColumn:
    """Metadata for one result column.

    ``width`` prices each value in bytes for yield accounting; ``source``
    records (table, column) provenance for bare column outputs.
    """

    name: str
    width: int
    source: Optional[Tuple[str, str]] = None


@dataclass
class ResultSet:
    """Materialized query result with exact byte accounting."""

    columns: List[ResultColumn]
    rows: List[Tuple[Any, ...]]

    @property
    def row_count(self) -> int:
        return len(self.rows)

    @property
    def row_width(self) -> int:
        return sum(col.width for col in self.columns)

    @property
    def byte_size(self) -> int:
        """The query's yield: result bytes shipped to the application."""
        return self.row_width * len(self.rows)

    def column_names(self) -> List[str]:
        return [col.name for col in self.columns]

    def column_values(self, name: str) -> List[Any]:
        key = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == key:
                return [row[i] for row in self.rows]
        raise ExecutionError(f"result has no column {name!r}")


class QueryEngine:
    """Facade: parse + plan + execute against one table provider.

    The provider must offer ``table(name) -> Table`` and ``tables() ->
    list[Table]`` (the :class:`~repro.sqlengine.catalog.Catalog` API).
    """

    def __init__(self, catalog: Any) -> None:
        self._catalog = catalog
        self._lookup = SchemaLookup.from_catalog(catalog)

    def plan(self, sql: str) -> QueryPlan:
        return plan_select(parse(sql), self._lookup)

    def execute(self, sql: str) -> ResultSet:
        """Parse, plan and run ``sql``, returning the materialized result."""
        return execute_plan(self.plan(sql), self._catalog)

    def yield_bytes(self, sql: str) -> int:
        """The yield of ``sql``: exact result size in bytes."""
        return self.execute(sql).byte_size


def execute_plan(plan: QueryPlan, provider: Any) -> ResultSet:
    """Run a bound plan against ``provider`` (``table(name) -> Table``)."""
    rows, layout = _join_all(plan, provider)

    if plan.residual_predicates:
        rows = _filter(rows, plan.residual_predicates, layout)

    if plan.has_aggregates:
        rows, layout, outputs, order_exprs = _aggregate(plan, rows, layout)
    else:
        outputs = plan.outputs
        order_exprs = [item.expr for item in plan.statement.order_by]

    projected = _project(rows, layout, outputs)

    if plan.statement.distinct:
        projected = _distinct(projected)

    if plan.statement.order_by:
        projected = _order(
            projected, rows, layout, outputs, order_exprs,
            plan.statement.order_by, plan.has_aggregates,
            plan.statement.distinct,
        )

    if plan.statement.limit is not None:
        projected = projected[: plan.statement.limit]

    columns = [
        ResultColumn(name=out.name, width=out.width, source=out.source)
        for out in outputs
    ]
    return ResultSet(columns=columns, rows=projected)


# ----------------------------------------------------------------------
# Scan and join
# ----------------------------------------------------------------------

def _scan(
    entry: ScopeEntry, predicates: List[Expr], provider: Any
) -> Tuple[List[Tuple[Any, ...]], RowLayout]:
    """Scan one table, applying its pushed-down local predicates.

    When a predicate is an equality against a literal on an indexed
    column, the hash index supplies the candidate rows and only the
    remaining predicates are evaluated.
    """
    table: Table = provider.table(entry.table_name)
    layout = RowLayout()
    for col in entry.schema.columns:
        layout.add(entry.binding, col.name)

    rows: Optional[List[Tuple[Any, ...]]] = None
    remaining = predicates
    scan_path = "rowpath"
    probe = _index_probe(predicates, table)
    if probe is not None:
        rows, used_predicate = probe
        remaining = [p for p in predicates if p is not used_predicate]
        scan_path = "index"
    if rows is None:
        if remaining:
            # Columnar fast path: predicate masks over cached numpy
            # column arrays.  Returns None (numpy absent, expression
            # not vectorizable) to keep the row-at-a-time path.
            vectorized = _vector_filtered_rows(table, remaining, layout)
            if vectorized is not None:
                if _SCAN_OBSERVER is not None:
                    _SCAN_OBSERVER(entry.table_name, "vectorized")
                return vectorized, layout
        rows = table.materialized_rows()
    if remaining:
        rows = _filter(rows, remaining, layout)
    if _SCAN_OBSERVER is not None:
        _SCAN_OBSERVER(entry.table_name, scan_path)
    return rows, layout


def _index_probe(
    predicates: List[Expr], table: Table
) -> Optional[Tuple[List[Tuple[Any, ...]], Expr]]:
    """(matching rows, predicate served by the index) or None."""
    for predicate in predicates:
        if not (
            isinstance(predicate, BinaryOp) and predicate.op == "="
        ):
            continue
        sides = (
            (predicate.left, predicate.right),
            (predicate.right, predicate.left),
        )
        for column_side, value_side in sides:
            if not (
                isinstance(column_side, ColumnRef)
                and isinstance(value_side, Literal)
            ):
                continue
            matches = table.index_lookup(
                column_side.column, value_side.value
            )
            if matches is not None:
                return matches, predicate
    return None


def _join_all(
    plan: QueryPlan, provider: Any
) -> Tuple[List[Tuple[Any, ...]], RowLayout]:
    """Join all scope relations left-to-right using hash joins on the
    extracted equi-join edges (cartesian product when no edge applies)."""
    entries = plan.scope
    rows, layout = _scan(
        entries[0], plan.local_predicates.get(entries[0].binding, []),
        provider,
    )
    joined = {entries[0].binding.lower()}
    remaining_edges = list(plan.join_edges)

    for entry in entries[1:]:
        right_rows, right_layout = _scan(
            entry, plan.local_predicates.get(entry.binding, []), provider
        )
        merged_layout = _merge_layouts(layout, right_layout)
        if entry.join_kind == "left":
            rows = _left_outer_join(
                rows, layout, right_rows, right_layout,
                merged_layout, entry,
            )
        else:
            edges, remaining_edges = _edges_for(
                remaining_edges, joined, entry.binding
            )
            if edges:
                rows = _hash_join(
                    rows, layout, right_rows, right_layout, edges,
                    entry.binding,
                )
            else:
                rows = [
                    left + right for left in rows for right in right_rows
                ]
        layout = merged_layout
        joined.add(entry.binding.lower())

    # Edges never attached to a join step (e.g. both sides already joined
    # via another path) become post-join filters.
    for edge in remaining_edges:
        left_pos = layout.position(edge.left_column, edge.left_binding)
        right_pos = layout.position(edge.right_column, edge.right_binding)
        rows = [
            row
            for row in rows
            if row[left_pos] is not None and row[left_pos] == row[right_pos]
        ]
    return rows, layout


def _edges_for(
    edges: List[JoinEdge], joined: set, new_binding: str
) -> Tuple[List[Tuple[int, int, bool]], List[JoinEdge]]:
    """Partition edges into those usable for joining ``new_binding`` now.

    Returns (usable, remaining); usable entries are raw edges re-expressed
    later by the caller.
    """
    new_key = new_binding.lower()
    usable: List[JoinEdge] = []
    remaining: List[JoinEdge] = []
    for edge in edges:
        left = edge.left_binding.lower()
        right = edge.right_binding.lower()
        if left in joined and right == new_key:
            usable.append(edge)
        elif right in joined and left == new_key:
            usable.append(
                JoinEdge(
                    left_binding=edge.right_binding,
                    left_column=edge.right_column,
                    right_binding=edge.left_binding,
                    right_column=edge.left_column,
                )
            )
        else:
            remaining.append(edge)
    return usable, remaining


def _merge_layouts(left: RowLayout, right: RowLayout) -> RowLayout:
    merged = RowLayout()
    for binding, column in left.slots:
        merged.add(binding, column)
    for binding, column in right.slots:
        merged.add(binding, column)
    return merged


def _hash_join(
    left_rows: List[Tuple[Any, ...]],
    left_layout: RowLayout,
    right_rows: List[Tuple[Any, ...]],
    right_layout: RowLayout,
    edges: List[JoinEdge],
    right_binding: str,
) -> List[Tuple[Any, ...]]:
    left_positions = [
        left_layout.position(edge.left_column, edge.left_binding)
        for edge in edges
    ]
    right_positions = [
        right_layout.position(edge.right_column, right_binding)
        for edge in edges
    ]
    index: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in right_rows:
        key = tuple(row[p] for p in right_positions)
        if any(value is None for value in key):
            continue  # NULL never joins
        index.setdefault(key, []).append(row)
    output: List[Tuple[Any, ...]] = []
    for row in left_rows:
        key = tuple(row[p] for p in left_positions)
        if any(value is None for value in key):
            continue
        for match in index.get(key, ()):
            output.append(row + match)
    return output


def _left_outer_join(
    left_rows: List[Tuple[Any, ...]],
    left_layout: RowLayout,
    right_rows: List[Tuple[Any, ...]],
    right_layout: RowLayout,
    merged_layout: RowLayout,
    entry: "ScopeEntry",
) -> List[Tuple[Any, ...]]:
    """LEFT OUTER JOIN: every left row survives; unmatched ones get the
    right side NULL-padded.  Equality conjuncts of the ON condition that
    link the two sides drive a hash index; any remaining ON conjuncts
    are evaluated per candidate pair.
    """
    from repro.sqlengine.expressions import split_conjuncts

    condition = entry.join_condition
    conjuncts = split_conjuncts(condition)
    binding_key = entry.binding.lower()

    # Split ON into hashable equi pairs vs. everything else.
    left_positions: List[int] = []
    right_positions: List[int] = []
    residual: List[Expr] = []
    for conjunct in conjuncts:
        pair = _equi_pair(
            conjunct, left_layout, right_layout, binding_key
        )
        if pair is None:
            residual.append(conjunct)
        else:
            left_positions.append(pair[0])
            right_positions.append(pair[1])

    residual_funcs = [
        compile_expr(expr, merged_layout) for expr in residual
    ]
    padding = (None,) * right_layout.width

    index: Optional[Dict[Tuple[Any, ...], List[Tuple[Any, ...]]]] = None
    if left_positions:
        index = {}
        for row in right_rows:
            key = tuple(row[p] for p in right_positions)
            if any(value is None for value in key):
                continue
            index.setdefault(key, []).append(row)

    output: List[Tuple[Any, ...]] = []
    for left_row in left_rows:
        if index is not None:
            key = tuple(left_row[p] for p in left_positions)
            candidates = (
                [] if any(v is None for v in key) else index.get(key, [])
            )
        else:
            candidates = right_rows
        matched = False
        for right_row in candidates:
            combined = left_row + right_row
            if all(func(combined) is True for func in residual_funcs):
                output.append(combined)
                matched = True
        if not matched:
            output.append(left_row + padding)
    return output


def _equi_pair(
    conjunct: Expr,
    left_layout: RowLayout,
    right_layout: RowLayout,
    right_binding: str,
) -> Optional[Tuple[int, int]]:
    """(left_pos, right_pos) when ``conjunct`` is col = col across the
    join boundary; None otherwise."""
    if not (
        isinstance(conjunct, BinaryOp)
        and conjunct.op == "="
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        return None
    for first, second in (
        (conjunct.left, conjunct.right),
        (conjunct.right, conjunct.left),
    ):
        try:
            if (
                second.table is not None
                and second.table.lower() == right_binding
            ):
                left_pos = left_layout.position(first.column, first.table)
                right_pos = right_layout.position(
                    second.column, second.table
                )
                return left_pos, right_pos
        except PlanError:
            continue
    return None


def _filter(
    rows: List[Tuple[Any, ...]], predicates: List[Expr], layout: RowLayout
) -> List[Tuple[Any, ...]]:
    compiled = [compile_expr(pred, layout) for pred in predicates]
    return [
        row for row in rows if all(func(row) is True for func in compiled)
    ]


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------

_GROUP_BINDING = "#group"
_AGG_BINDING = "#agg"


def _collect_aggregates(expr: Expr, out: List[FuncCall]) -> None:
    if isinstance(expr, FuncCall):
        from repro.sqlengine.ast_nodes import AGGREGATE_FUNCTIONS

        if expr.name.lower() in AGGREGATE_FUNCTIONS:
            if expr not in out:
                out.append(expr)
            return
        # Scalar function: aggregates may hide inside its arguments
        # (e.g. FLOOR(AVG(x))).
        for arg in expr.args:
            _collect_aggregates(arg, out)
        return
    if isinstance(expr, BinaryOp):
        _collect_aggregates(expr.left, out)
        _collect_aggregates(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _collect_aggregates(expr.operand, out)
    elif isinstance(expr, BetweenOp):
        _collect_aggregates(expr.operand, out)
        _collect_aggregates(expr.low, out)
        _collect_aggregates(expr.high, out)
    elif isinstance(expr, InOp):
        _collect_aggregates(expr.operand, out)
        for item in expr.items:
            _collect_aggregates(item, out)
    elif isinstance(expr, IsNullOp):
        _collect_aggregates(expr.operand, out)


def _substitute(expr: Expr, mapping: Dict[Expr, Expr]) -> Expr:
    """Replace subtrees structurally equal to a mapping key (top-down)."""
    if expr in mapping:
        return mapping[expr]
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _substitute(expr.left, mapping),
            _substitute(expr.right, mapping),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _substitute(expr.operand, mapping))
    if isinstance(expr, BetweenOp):
        return BetweenOp(
            _substitute(expr.operand, mapping),
            _substitute(expr.low, mapping),
            _substitute(expr.high, mapping),
            expr.negated,
        )
    if isinstance(expr, InOp):
        return InOp(
            _substitute(expr.operand, mapping),
            tuple(_substitute(item, mapping) for item in expr.items),
            expr.negated,
        )
    if isinstance(expr, IsNullOp):
        return IsNullOp(_substitute(expr.operand, mapping), expr.negated)
    if isinstance(expr, FuncCall):
        return FuncCall(
            name=expr.name,
            args=tuple(_substitute(arg, mapping) for arg in expr.args),
            star=expr.star,
            distinct=expr.distinct,
        )
    return expr


def _aggregate(
    plan: QueryPlan,
    rows: List[Tuple[Any, ...]],
    layout: RowLayout,
) -> Tuple[
    List[Tuple[Any, ...]], RowLayout, List[OutputColumn], List[Expr]
]:
    """Group, accumulate, and rewrite outputs over the aggregated layout."""
    statement = plan.statement

    agg_calls: List[FuncCall] = []
    for out in plan.outputs:
        _collect_aggregates(out.expr, agg_calls)
    if statement.having is not None:
        _collect_aggregates(statement.having, agg_calls)
    for item in statement.order_by:
        _collect_aggregates(item.expr, agg_calls)

    group_exprs = list(statement.group_by)
    group_funcs = [compile_expr(expr, layout) for expr in group_exprs]
    agg_arg_funcs: List[Optional[Callable]] = []
    for call in agg_calls:
        if call.star:
            agg_arg_funcs.append(None)
        else:
            if len(call.args) != 1:
                raise PlanError(
                    f"aggregate {call.name!r} takes exactly one argument"
                )
            agg_arg_funcs.append(compile_expr(call.args[0], layout))

    groups: Dict[Tuple[Any, ...], List[Any]] = {}
    group_order: List[Tuple[Any, ...]] = []
    for row in rows:
        key = tuple(func(row) for func in group_funcs)
        if key not in groups:
            groups[key] = [
                make_aggregate(call.name, call.distinct)
                for call in agg_calls
            ]
            group_order.append(key)
        accumulators = groups[key]
        for accumulator, arg_func in zip(accumulators, agg_arg_funcs):
            value = 1 if arg_func is None else arg_func(row)
            accumulator.add(value)

    if not group_exprs and not groups:
        # Aggregate over an empty input still yields one row.
        groups[()] = [
            make_aggregate(call.name, call.distinct) for call in agg_calls
        ]
        group_order.append(())

    agg_layout = RowLayout()
    mapping: Dict[Expr, Expr] = {}
    for i, expr in enumerate(group_exprs):
        agg_layout.add(_GROUP_BINDING, f"g{i}")
        mapping[expr] = ColumnRef(column=f"g{i}", table=_GROUP_BINDING)
    for j, call in enumerate(agg_calls):
        agg_layout.add(_AGG_BINDING, f"a{j}")
        mapping[call] = ColumnRef(column=f"a{j}", table=_AGG_BINDING)

    agg_rows: List[Tuple[Any, ...]] = []
    for key in group_order:
        agg_rows.append(
            key + tuple(acc.result() for acc in groups[key])
        )

    if statement.having is not None:
        having_expr = _substitute(statement.having, mapping)
        having_func = compile_expr(having_expr, agg_layout)
        agg_rows = [row for row in agg_rows if having_func(row) is True]

    outputs: List[OutputColumn] = []
    for out in plan.outputs:
        rewritten = _substitute(out.expr, mapping)
        _check_fully_aggregated(rewritten, out.name)
        outputs.append(
            OutputColumn(
                name=out.name,
                expr=rewritten,
                width=out.width,
                source=out.source,
            )
        )
    order_exprs = [
        _substitute(item.expr, mapping) for item in statement.order_by
    ]
    return agg_rows, agg_layout, outputs, order_exprs


def _check_fully_aggregated(expr: Expr, name: str) -> None:
    """After substitution, any leftover base-table column reference means a
    non-aggregated column was selected without being in GROUP BY."""
    if isinstance(expr, ColumnRef):
        if expr.table not in (_GROUP_BINDING, _AGG_BINDING):
            raise PlanError(
                f"column {expr.display()!r} in output {name!r} must appear "
                "in GROUP BY or inside an aggregate"
            )
        return
    if isinstance(expr, BinaryOp):
        _check_fully_aggregated(expr.left, name)
        _check_fully_aggregated(expr.right, name)
    elif isinstance(expr, UnaryOp):
        _check_fully_aggregated(expr.operand, name)
    elif isinstance(expr, BetweenOp):
        _check_fully_aggregated(expr.operand, name)
        _check_fully_aggregated(expr.low, name)
        _check_fully_aggregated(expr.high, name)
    elif isinstance(expr, InOp):
        _check_fully_aggregated(expr.operand, name)
        for item in expr.items:
            _check_fully_aggregated(item, name)
    elif isinstance(expr, IsNullOp):
        _check_fully_aggregated(expr.operand, name)
    elif isinstance(expr, FuncCall):
        from repro.sqlengine.ast_nodes import AGGREGATE_FUNCTIONS

        if expr.name.lower() in AGGREGATE_FUNCTIONS:
            raise PlanError(
                f"nested aggregate in output {name!r} is not supported"
            )
        for arg in expr.args:
            _check_fully_aggregated(arg, name)


# ----------------------------------------------------------------------
# Projection, distinct, order
# ----------------------------------------------------------------------

def _project(
    rows: List[Tuple[Any, ...]],
    layout: RowLayout,
    outputs: List[OutputColumn],
) -> List[Tuple[Any, ...]]:
    if outputs and all(
        isinstance(out.expr, ColumnRef) for out in outputs
    ):
        # Pure-column projection (the common case by far): one tuple
        # slice per row instead of one closure call per cell.
        positions = [
            layout.position(out.expr.column, out.expr.table)
            for out in outputs
        ]
        if len(positions) == 1:
            pos = positions[0]
            return [(row[pos],) for row in rows]
        from operator import itemgetter

        getter = itemgetter(*positions)
        return [getter(row) for row in rows]
    funcs = [compile_expr(out.expr, layout) for out in outputs]
    return [tuple(func(row) for func in funcs) for row in rows]


def _distinct(rows: List[Tuple[Any, ...]]) -> List[Tuple[Any, ...]]:
    seen = set()
    output = []
    for row in rows:
        if row in seen:
            continue
        seen.add(row)
        output.append(row)
    return output


def _sort_key(value: Any) -> Tuple[int, Any]:
    """NULLs sort first; values must be mutually comparable otherwise."""
    if value is None:
        return (0, 0)
    return (1, value)


def _order(
    projected: List[Tuple[Any, ...]],
    source_rows: List[Tuple[Any, ...]],
    layout: RowLayout,
    outputs: List[OutputColumn],
    order_exprs: List[Expr],
    order_items: Sequence[OrderItem],
    aggregated: bool,
    was_distinct: bool,
) -> List[Tuple[Any, ...]]:
    """Sort projected rows.

    ORDER BY expressions are evaluated against the projected output when
    they match an output alias/column, otherwise against the source rows
    (only possible when projection is row-for-row, i.e. no DISTINCT).
    """
    key_funcs: List[Callable[[int], Any]] = []
    output_index = {
        out.name.lower(): i for i, out in enumerate(outputs)
    }
    for expr, item in zip(order_exprs, order_items):
        func = _order_key_func(
            expr, projected, source_rows, layout, output_index, was_distinct
        )
        key_funcs.append(func)

    decorated = list(range(len(projected)))

    def full_key(i: int) -> Tuple[Any, ...]:
        parts = []
        for func, item in zip(key_funcs, order_items):
            marker, value = _sort_key(func(i))
            if not item.ascending:
                marker = -marker
                value = _Reversed(value)
            parts.append((marker, value))
        return tuple(parts)

    decorated.sort(key=full_key)
    return [projected[i] for i in decorated]


class _Reversed:
    """Wrapper inverting comparison order for DESC sort keys."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        try:
            return other.value < self.value
        except TypeError as exc:
            raise ExecutionError(
                f"cannot order {self.value!r} vs {other.value!r}"
            ) from exc

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and self.value == other.value


def _order_key_func(
    expr: Expr,
    projected: List[Tuple[Any, ...]],
    source_rows: List[Tuple[Any, ...]],
    layout: RowLayout,
    output_index: Dict[str, int],
    was_distinct: bool,
) -> Callable[[int], Any]:
    if isinstance(expr, ColumnRef) and expr.table is None:
        pos = output_index.get(expr.column.lower())
        if pos is not None:
            return lambda i: projected[i][pos]
    try:
        compiled = compile_expr(expr, layout)
    except PlanError:
        raise
    if was_distinct and len(projected) != len(source_rows):
        raise PlanError(
            "ORDER BY over non-selected expressions is incompatible with "
            "DISTINCT"
        )
    return lambda i: compiled(source_rows[i])
