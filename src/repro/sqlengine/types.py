"""Column data types for the mini SQL engine.

The engine is deliberately small: four scalar types cover everything the
SDSS-style astronomy workload needs.  Each type knows its on-disk width in
bytes, which is what the yield model uses to attribute query-result bytes
to individual columns (Section 6 of the paper divides a join query's yield
among columns "based on a ratio of storage size of the attribute to the
total storage sizes of all columns referenced in the query").
"""

from __future__ import annotations

import enum
import math
from typing import Any, Optional


class ColumnType(enum.Enum):
    """Scalar types supported by the engine.

    The byte widths follow SQL Server conventions used by the SDSS archive:
    BIGINT identifiers are 8 bytes, double-precision reals are 8 bytes,
    INT codes are 4 bytes, and strings are modeled with a fixed declared
    width (CHAR(n) semantics) so that object sizes are deterministic.
    """

    BIGINT = "bigint"
    INT = "int"
    FLOAT = "float"
    STRING = "string"

    @property
    def default_width(self) -> int:
        """Storage width in bytes for fixed-width types (strings need a
        declared width; their default models a short CHAR(16))."""
        widths = {
            ColumnType.BIGINT: 8,
            ColumnType.INT: 4,
            ColumnType.FLOAT: 8,
            ColumnType.STRING: 16,
        }
        return widths[self]

    def validate(self, value: Any) -> bool:
        """Return True when ``value`` is a legal instance of this type.

        ``None`` (SQL NULL) is legal for every type.
        """
        if value is None:
            return True
        if self is ColumnType.BIGINT or self is ColumnType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is ColumnType.FLOAT:
            if isinstance(value, bool):
                return False
            return isinstance(value, (int, float))
        if self is ColumnType.STRING:
            return isinstance(value, str)
        return False

    def coerce(self, value: Any) -> Any:
        """Coerce ``value`` to this type's canonical Python representation.

        Raises:
            TypeError: if the value is not coercible.
        """
        if value is None:
            return None
        if self is ColumnType.BIGINT or self is ColumnType.INT:
            if isinstance(value, bool):
                raise TypeError(f"cannot store bool in {self.value} column")
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            raise TypeError(f"cannot store {value!r} in {self.value} column")
        if self is ColumnType.FLOAT:
            if isinstance(value, bool):
                raise TypeError("cannot store bool in float column")
            if isinstance(value, (int, float)):
                result = float(value)
                if math.isnan(result):
                    raise TypeError("NaN is not storable; use NULL")
                return result
            raise TypeError(f"cannot store {value!r} in float column")
        if self is ColumnType.STRING:
            if isinstance(value, str):
                return value
            raise TypeError(f"cannot store {value!r} in string column")
        raise TypeError(f"unknown column type {self!r}")


def type_of_literal(value: Any) -> Optional[ColumnType]:
    """Infer the :class:`ColumnType` of a Python literal, or None for NULL."""
    if value is None:
        return None
    if isinstance(value, bool):
        raise TypeError("boolean literals have no column type")
    if isinstance(value, int):
        return ColumnType.BIGINT
    if isinstance(value, float):
        return ColumnType.FLOAT
    if isinstance(value, str):
        return ColumnType.STRING
    raise TypeError(f"unsupported literal {value!r}")
