"""Vectorized columnar scans: predicate masks over numpy column arrays.

The row-at-a-time executor evaluates compiled closures per row — clean,
but the scan+filter stage dominates exact-yield execution on large
tables.  This module evaluates a scan's pushed-down predicates over
whole columns at once: each table column is lowered to a numpy array
(plus a NULL mask) once and cached until the table changes, and the
conjunction of predicates becomes one boolean mask whose surviving row
indices drive tuple construction.

SQL three-valued logic is preserved exactly: every boolean expression
evaluates to a pair of masks ``(true, unknown)``, mirroring the
row-path's ``True``/``None``/``False`` trichotomy, and only
definitely-true rows survive a filter — identical to
``executor._filter``'s ``is True`` check.

The module degrades gracefully, never wrongly:

* without numpy (:data:`HAVE_NUMPY` false) every entry point returns
  ``None`` and the caller keeps the pure-Python row path;
* expression forms that do not vectorize (LIKE, scalar function calls)
  raise :class:`Unvectorizable` internally and the whole scan falls
  back;
* integer columns whose magnitude exceeds the float64-exact range
  (2**53) are kept as object arrays so comparisons never lose
  precision.

Equivalence with the row path is pinned down by the differential suite
in ``tests/sqlengine/test_vectorized.py``.
"""

from __future__ import annotations

import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.sqlengine.ast_nodes import (
    BetweenOp,
    BinaryOp,
    ColumnRef,
    Expr,
    InOp,
    IsNullOp,
    Literal,
    UnaryOp,
)
from repro.sqlengine.expressions import RowLayout
from repro.sqlengine.storage import Table

try:  # pragma: no cover - exercised via both CI environments
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None  # type: ignore[assignment]

HAVE_NUMPY = _np is not None

__all__ = ["HAVE_NUMPY", "Unvectorizable", "filtered_rows"]

#: Largest integer float64 represents exactly; beyond it int columns
#: stay as object arrays rather than risk lossy comparisons.
_FLOAT64_EXACT = 2 ** 53


class Unvectorizable(Exception):
    """Internal: this expression has no vector form; use the row path."""


class _ColumnVector:
    """One column lowered to arrays: values plus a NULL mask."""

    __slots__ = ("values", "nulls")

    def __init__(self, values: Any, nulls: Any) -> None:
        self.values = values
        self.nulls = nulls


# Per-table cache of lowered columns, invalidated by Table.version.
# Keyed weakly so dropping a catalog drops its arrays.
_VECTOR_CACHE: "weakref.WeakKeyDictionary[Table, Tuple[int, Dict[str, _ColumnVector]]]" = (
    weakref.WeakKeyDictionary()
)


def _lower_column(values: Sequence[Any]) -> _ColumnVector:
    """Build the (values, nulls) arrays for one column."""
    nulls = _np.fromiter(
        (value is None for value in values), dtype=bool, count=len(values)
    )
    has_null = bool(nulls.any())
    kinds = {type(value) for value in values if value is not None}
    if kinds <= {int}:
        peak = max(
            (abs(value) for value in values if value is not None),
            default=0,
        )
        if peak <= _FLOAT64_EXACT:
            filled = (
                [0 if value is None else value for value in values]
                if has_null
                else values
            )
            array = _np.fromiter(
                filled, dtype=_np.int64, count=len(values)
            )
            return _ColumnVector(array, nulls)
    elif kinds <= {int, float}:
        peak = max(
            (
                abs(value)
                for value in values
                if isinstance(value, int)
            ),
            default=0,
        )
        if peak <= _FLOAT64_EXACT:
            filled = (
                [0.0 if value is None else value for value in values]
                if has_null
                else values
            )
            array = _np.fromiter(
                filled, dtype=_np.float64, count=len(values)
            )
            return _ColumnVector(array, nulls)
    array = _np.empty(len(values), dtype=object)
    for position, value in enumerate(values):
        array[position] = value
    return _ColumnVector(array, nulls)


def _table_vectors(table: Table) -> Dict[str, _ColumnVector]:
    cached = _VECTOR_CACHE.get(table)
    if cached is not None and cached[0] == table.version:
        return cached[1]
    vectors: Dict[str, _ColumnVector] = {}
    _VECTOR_CACHE[table] = (table.version, vectors)
    return vectors


def _column_vector(table: Table, key: str) -> _ColumnVector:
    vectors = _table_vectors(table)
    vector = vectors.get(key)
    if vector is None:
        vector = _lower_column(table.column_values(key))
        vectors[key] = vector
    return vector


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------
#
# Value expressions evaluate to (values, nulls); boolean expressions to
# (true_mask, unknown_mask).  Scalars (from literals) stay scalar until
# an operation mixes them with an array — numpy broadcasting does the
# rest.


class _Evaluator:
    def __init__(self, table: Table, layout: RowLayout) -> None:
        self._table = table
        self._layout = layout
        self._count = table.row_count

    def _false(self) -> Any:
        return _np.zeros(self._count, dtype=bool)

    def value(self, expr: Expr) -> Tuple[Any, Any]:
        """Evaluate a value expression to (values, null-mask)."""
        if isinstance(expr, Literal):
            if expr.value is None:
                return 0, True
            return expr.value, False
        if isinstance(expr, ColumnRef):
            position = self._layout.position(expr.column, expr.table)
            key = self._table.schema.columns[position].key
            vector = _column_vector(self._table, key)
            return vector.values, vector.nulls
        if isinstance(expr, UnaryOp) and expr.op == "-":
            values, nulls = self.value(expr.operand)
            return -values, nulls
        if isinstance(expr, BinaryOp) and expr.op in "+-*/%":
            left, left_nulls = self.value(expr.left)
            right, right_nulls = self.value(expr.right)
            nulls = left_nulls | right_nulls
            if expr.op == "+":
                return left + right, nulls
            if expr.op == "-":
                return left - right, nulls
            if expr.op == "*":
                return left * right, nulls
            # Division and modulo NULL out on zero divisors, like the
            # row path.
            zero = right == 0
            safe = _np.where(zero, 1, right) if zero is not False else right
            if expr.op == "/":
                result = left / safe
            else:
                result = left % safe
            return result, nulls | zero
        raise Unvectorizable(repr(expr))

    def boolean(self, expr: Expr) -> Tuple[Any, Any]:
        """Evaluate a predicate to (true-mask, unknown-mask)."""
        if isinstance(expr, BinaryOp):
            op = expr.op
            if op == "and":
                lt, lu = self.boolean(expr.left)
                rt, ru = self.boolean(expr.right)
                true = lt & rt
                false = (~lt & ~lu) | (~rt & ~ru)
                return true, ~true & ~false
            if op == "or":
                lt, lu = self.boolean(expr.left)
                rt, ru = self.boolean(expr.right)
                true = lt | rt
                false = (~lt & ~lu) & (~rt & ~ru)
                return true, ~true & ~false
            if op in ("=", "<>", "<", "<=", ">", ">="):
                return self._compare(expr)
            raise Unvectorizable(repr(expr))
        if isinstance(expr, UnaryOp) and expr.op == "not":
            true, unknown = self.boolean(expr.operand)
            return ~true & ~unknown, unknown
        if isinstance(expr, BetweenOp):
            values, nulls = self.value(expr.operand)
            low, low_nulls = self.value(expr.low)
            high, high_nulls = self.value(expr.high)
            unknown = _mask(nulls | low_nulls | high_nulls, self._count)
            inside = _as_bool((low <= values) & (values <= high))
            if expr.negated:
                inside = ~inside
            return _mask(inside, self._count) & ~unknown, unknown
        if isinstance(expr, InOp):
            return self._contains(expr)
        if isinstance(expr, IsNullOp):
            values_nulls = self.value(expr.operand)[1]
            nulls = _mask(values_nulls, self._count)
            true = ~nulls if expr.negated else nulls
            return true, self._false()
        raise Unvectorizable(repr(expr))

    def _compare(self, expr: BinaryOp) -> Tuple[Any, Any]:
        left, left_nulls = self.value(expr.left)
        right, right_nulls = self.value(expr.right)
        op = expr.op
        if op == "=":
            raw = left == right
        elif op == "<>":
            raw = left != right
        elif op == "<":
            raw = left < right
        elif op == "<=":
            raw = left <= right
        elif op == ">":
            raw = left > right
        else:
            raw = left >= right
        unknown = _mask(left_nulls | right_nulls, self._count)
        return _mask(_as_bool(raw), self._count) & ~unknown, unknown

    def _contains(self, expr: InOp) -> Tuple[Any, Any]:
        values, nulls = self.value(expr.operand)
        candidates: List[Any] = []
        has_null_item = False
        for item in expr.items:
            if not isinstance(item, Literal):
                raise Unvectorizable(repr(item))
            if item.value is None:
                has_null_item = True
            else:
                candidates.append(item.value)
        found = self._false()
        for candidate in candidates:
            found = found | _mask(
                _as_bool(values == candidate), self._count
            )
        unknown = _mask(nulls, self._count)
        if has_null_item:
            # value IN (..., NULL): misses become UNKNOWN, not FALSE.
            unknown = unknown | ~found
        true = found & ~unknown
        if expr.negated:
            return ~found & ~unknown, unknown
        return true, unknown


def _as_bool(raw: Any) -> Any:
    """Comparisons over object arrays yield object dtype; normalize."""
    if isinstance(raw, _np.ndarray) and raw.dtype == object:
        return raw.astype(bool)
    return raw


def _mask(value: Any, count: int) -> Any:
    """Broadcast scalar booleans up to a full mask."""
    if isinstance(value, _np.ndarray):
        return value
    return (
        _np.ones(count, dtype=bool)
        if value
        else _np.zeros(count, dtype=bool)
    )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def filtered_rows(
    table: Table,
    predicates: Sequence[Expr],
    layout: RowLayout,
) -> Optional[List[Tuple[Any, ...]]]:
    """Rows of ``table`` satisfying every predicate, or ``None``.

    ``None`` means "not vectorizable here" — numpy missing, an
    unsupported expression form, or a type error the row path knows how
    to report; the caller must then run the ordinary scan+filter.  A
    returned list is exact: the same rows, in the same order, as
    ``_filter(materialized_rows(), predicates)``.
    """
    if not HAVE_NUMPY or not predicates or table.row_count == 0:
        return None
    try:
        evaluator = _Evaluator(table, layout)
        mask: Optional[Any] = None
        for predicate in predicates:
            true, _unknown = evaluator.boolean(predicate)
            mask = true if mask is None else mask & true
    except Unvectorizable:
        return None
    except (TypeError, ValueError):
        # Mixed-type comparisons the row path reports as execution
        # errors; let it produce the message.
        return None
    rows = table.materialized_rows()
    return [rows[index] for index in _np.nonzero(mask)[0]]
