"""The catalog: named tables plus exact object-size metadata.

A catalog is what one federation server exposes.  Besides table lookup it
answers the two questions the bypass-yield cache keeps asking:

* ``object_size(object_id)`` — how many bytes would loading this object
  (a table or a single column) move across the WAN, and how much cache
  space would it occupy;
* enumeration of all cacheable objects at either granularity.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import CatalogError
from repro.sqlengine.schema import DatabaseSchema, TableSchema
from repro.sqlengine.storage import Table


class Catalog:
    """Tables of one database plus size metadata for cacheable objects."""

    def __init__(self, name: str = "default") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}

    def create_table(self, schema: TableSchema) -> Table:
        """Create an empty table; raises if the name is taken."""
        if schema.key in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema)
        self._tables[schema.key] = table
        return table

    def add_table(self, table: Table) -> None:
        """Register an already-populated table."""
        if table.schema.key in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.schema.key] = table

    def drop_table(self, name: str) -> None:
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def tables(self) -> List[Table]:
        return list(self._tables.values())

    def table_names(self) -> List[str]:
        return [t.name for t in self._tables.values()]

    def schema(self) -> DatabaseSchema:
        """A :class:`DatabaseSchema` snapshot of the current catalog."""
        db = DatabaseSchema(self.name)
        for table in self._tables.values():
            db.add(table.schema)
        return db

    # ------------------------------------------------------------------
    # Cacheable-object metadata
    # ------------------------------------------------------------------

    def total_size_bytes(self) -> int:
        """Total bytes across every table (the 'database size' used when
        expressing cache sizes as a percentage of the database)."""
        return sum(table.size_bytes for table in self._tables.values())

    def object_size(self, object_id: str) -> int:
        """Size in bytes of a cacheable object.

        Object ids follow the convention used throughout the library:
        ``"table"`` for whole-table objects and ``"table.column"`` for
        single-column objects.
        """
        table_name, _, column_name = object_id.partition(".")
        table = self.table(table_name)
        if not column_name:
            return table.size_bytes
        return table.column_size_bytes(column_name)

    def table_objects(self) -> List[str]:
        """Object ids of every table."""
        return [table.name for table in self._tables.values()]

    def column_objects(self) -> List[str]:
        """Object ids of every column of every table."""
        ids: List[str] = []
        for table in self._tables.values():
            for col in table.schema.columns:
                ids.append(f"{table.name}.{col.name}")
        return ids

    def objects(self, granularity: str) -> List[str]:
        """All object ids at ``granularity`` ('table' or 'column')."""
        if granularity == "table":
            return self.table_objects()
        if granularity == "column":
            return self.column_objects()
        raise CatalogError(
            f"unknown granularity {granularity!r}; use 'table' or 'column'"
        )

    def __repr__(self) -> str:
        return f"Catalog({self.name!r}, tables={self.table_names()})"
