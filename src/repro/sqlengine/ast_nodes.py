"""AST node definitions for the SQL subset.

Expressions and statements are plain frozen dataclasses; the planner walks
them, and the workload analyzers (containment, locality) inspect them to
extract referenced tables/columns and predicate structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    """A constant value (int, float, str, or None for NULL)."""

    value: Any


@dataclass(frozen=True)
class ColumnRef:
    """A column reference, optionally qualified: ``alias.column``."""

    column: str
    table: Optional[str] = None

    def display(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column


@dataclass(frozen=True)
class BinaryOp:
    """Binary arithmetic or comparison: ``left op right``.

    op is one of: ``+ - * / % = <> < <= > >= and or like``.
    """

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    """Unary operation: ``not expr`` or ``-expr``."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class BetweenOp:
    """``expr [NOT] BETWEEN low AND high``."""

    operand: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class InOp:
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: "Expr"
    items: Tuple["Expr", ...]
    negated: bool = False


@dataclass(frozen=True)
class IsNullOp:
    """``expr IS [NOT] NULL``."""

    operand: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class FuncCall:
    """Aggregate or scalar function call.

    ``COUNT(*)`` is represented with ``star=True`` and no args.
    """

    name: str
    args: Tuple["Expr", ...] = ()
    star: bool = False
    distinct: bool = False


Expr = Union[
    Literal, ColumnRef, BinaryOp, UnaryOp, BetweenOp, InOp, IsNullOp, FuncCall
]

AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def is_aggregate(expr: Expr) -> bool:
    """True when ``expr`` contains an aggregate function call."""
    if isinstance(expr, FuncCall):
        if expr.name.lower() in AGGREGATE_FUNCTIONS:
            return True
        return any(is_aggregate(arg) for arg in expr.args)
    if isinstance(expr, BinaryOp):
        return is_aggregate(expr.left) or is_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return is_aggregate(expr.operand)
    if isinstance(expr, BetweenOp):
        return (
            is_aggregate(expr.operand)
            or is_aggregate(expr.low)
            or is_aggregate(expr.high)
        )
    if isinstance(expr, InOp):
        return is_aggregate(expr.operand) or any(
            is_aggregate(item) for item in expr.items
        )
    if isinstance(expr, IsNullOp):
        return is_aggregate(expr.operand)
    return False


def column_refs(expr: Expr) -> List[ColumnRef]:
    """All :class:`ColumnRef` nodes inside ``expr`` (document order)."""
    refs: List[ColumnRef] = []
    _collect_refs(expr, refs)
    return refs


def _collect_refs(expr: Expr, out: List[ColumnRef]) -> None:
    if isinstance(expr, ColumnRef):
        out.append(expr)
    elif isinstance(expr, BinaryOp):
        _collect_refs(expr.left, out)
        _collect_refs(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _collect_refs(expr.operand, out)
    elif isinstance(expr, BetweenOp):
        _collect_refs(expr.operand, out)
        _collect_refs(expr.low, out)
        _collect_refs(expr.high, out)
    elif isinstance(expr, InOp):
        _collect_refs(expr.operand, out)
        for item in expr.items:
            _collect_refs(item, out)
    elif isinstance(expr, IsNullOp):
        _collect_refs(expr.operand, out)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            _collect_refs(arg, out)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SelectItem:
    """One item of the select list: expression plus optional alias.

    ``star=True`` with ``table=None`` is ``SELECT *``; with a table it is
    ``alias.*``.
    """

    expr: Optional[Expr] = None
    alias: Optional[str] = None
    star: bool = False
    table: Optional[str] = None


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with an optional alias."""

    table: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this relation is known by in the query scope."""
        return self.alias if self.alias else self.table


@dataclass(frozen=True)
class Join:
    """An explicit ``JOIN ... ON`` clause attached to the FROM list."""

    table: TableRef
    condition: Expr
    kind: str = "inner"


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT query.

    Implicit joins (comma-separated FROM with WHERE equality predicates)
    and explicit JOIN ... ON are both representable.
    """

    items: Tuple[SelectItem, ...]
    tables: Tuple[TableRef, ...]
    joins: Tuple[Join, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False

    def referenced_tables(self) -> List[str]:
        """All table names mentioned in FROM/JOIN, in clause order."""
        names = [ref.table for ref in self.tables]
        names.extend(join.table.table for join in self.joins)
        return names

    def all_table_refs(self) -> List[TableRef]:
        refs = list(self.tables)
        refs.extend(join.table for join in self.joins)
        return refs
