"""Column-store table storage.

Tables are stored column-wise (one Python list per column).  The layout
mirrors the paper's two caching granularities: an entire table is an
object, and so is each individual column, each with an exact byte size
(``width * row_count``).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ExecutionError
from repro.sqlengine.schema import TableSchema


class Table:
    """In-memory column-store relation.

    Rows are appended through :meth:`insert` / :meth:`insert_many`; reads
    go through :meth:`column_values` (vector access) or :meth:`rows`
    (tuple access).  All values are validated and coerced on insert so
    downstream operators never see ill-typed data.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._columns: Dict[str, List[Any]] = {
            col.key: [] for col in schema.columns
        }
        self._row_count = 0
        self._materialized: Optional[List[Tuple[Any, ...]]] = None
        self._indexes: Dict[str, Dict[Any, List[int]]] = {}
        #: Monotonic data version; bumped on every insert so derived
        #: caches (e.g. the vectorized executor's column arrays) can
        #: detect staleness without hashing the data.
        self.version = 0

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return self._row_count

    @property
    def size_bytes(self) -> int:
        """Exact table size: sum of column sizes."""
        return self.schema.row_width * self._row_count

    def column_size_bytes(self, column_name: str) -> int:
        """Exact size in bytes of one column."""
        col = self.schema.column(column_name)
        return col.width * self._row_count

    def insert(self, row: Sequence[Any]) -> None:
        """Append one row given in schema column order."""
        if len(row) != len(self.schema):
            raise ExecutionError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(row)}"
            )
        coerced = []
        for col, value in zip(self.schema.columns, row):
            try:
                coerced.append(col.ctype.coerce(value))
            except TypeError as exc:
                raise ExecutionError(
                    f"bad value for {self.name}.{col.name}: {exc}"
                ) from exc
        for col, value in zip(self.schema.columns, coerced):
            self._columns[col.key].append(value)
            index = self._indexes.get(col.key)
            if index is not None and value is not None:
                index.setdefault(value, []).append(self._row_count)
        self._row_count += 1
        self._materialized = None
        self.version += 1

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append many rows; returns the number inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def column_values(self, column_name: str) -> Sequence[Any]:
        """The full value vector of one column (read-only by convention)."""
        key = column_name.lower()
        if key not in self._columns:
            raise ExecutionError(
                f"table {self.name!r} has no column {column_name!r}"
            )
        return self._columns[key]

    def rows(self) -> Iterator[Tuple[Any, ...]]:
        """Iterate rows as tuples in schema column order."""
        return iter(self.materialized_rows())

    def materialized_rows(self) -> List[Tuple[Any, ...]]:
        """Row tuples, memoized until the next insert.

        The scan path of every query starts here, so repeated workloads
        against the same table reuse one materialization.  Callers must
        not mutate the returned list.
        """
        if self._materialized is None:
            vectors = [
                self._columns[col.key] for col in self.schema.columns
            ]
            self._materialized = list(zip(*vectors)) if vectors else []
        return self._materialized

    def create_index(self, column_name: str) -> None:
        """Build (or rebuild) a hash index on one column.

        The executor consults indexes for equality predicates pushed
        down to a scan; identity-style lookups then touch only matching
        rows instead of the whole table.  Inserts maintain existing
        indexes incrementally.
        """
        col = self.schema.column(column_name)  # validates the name
        index: Dict[Any, List[int]] = {}
        for position, value in enumerate(self._columns[col.key]):
            if value is None:
                continue  # NULL never matches an equality predicate
            index.setdefault(value, []).append(position)
        self._indexes[col.key] = index

    def has_index(self, column_name: str) -> bool:
        return column_name.lower() in self._indexed_columns()

    def _indexed_columns(self) -> List[str]:
        return list(self._indexes)

    def index_lookup(
        self, column_name: str, value: Any
    ) -> Optional[List[Tuple[Any, ...]]]:
        """Rows whose ``column_name`` equals ``value``, via the index.

        Returns None when the column is not indexed (caller falls back
        to a scan); an empty list is a definitive no-match answer.
        """
        key = column_name.lower()
        index = self._indexes.get(key)
        if index is None:
            return None
        if value is None:
            return []
        rows = self.materialized_rows()
        return [rows[position] for position in index.get(value, ())]

    def row_at(self, index: int) -> Tuple[Any, ...]:
        """Random access to one row."""
        if not 0 <= index < self._row_count:
            raise ExecutionError(
                f"row index {index} out of range for table {self.name!r} "
                f"({self._row_count} rows)"
            )
        return tuple(
            self._columns[col.key][index] for col in self.schema.columns
        )

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={self._row_count}, "
            f"bytes={self.size_bytes})"
        )
