"""SDSS-style synthetic workloads: data, queries, traces, analyzers.

* :mod:`repro.workload.sdss_schema` — astronomy schema + data generator.
* :mod:`repro.workload.templates` — parameterized query templates grouped
  into user themes.
* :mod:`repro.workload.generator` — trace generation with the paper's
  workload properties (schema locality, episodes, no containment).
* :mod:`repro.workload.trace` — raw and prepared traces, JSONL storage.
* :mod:`repro.workload.prepare` — execute-and-measure (yield collection).
* :mod:`repro.workload.containment` / :mod:`repro.workload.locality` —
  the analyses behind Figures 4-6.
"""

from repro.workload.containment import (
    ContainmentReport,
    analyze_containment,
)
from repro.workload.generator import (
    TraceConfig,
    dr1_trace,
    edr_trace,
    generate_trace,
)
from repro.workload.locality import (
    LocalityReport,
    analyze_locality,
    referenced_objects,
)
from repro.workload.chunks import (
    ChunkedTrace,
    ChunkManifest,
    write_chunked,
)
from repro.workload.generator import iter_trace_records
from repro.workload.prepare import (
    estimate_trace,
    iter_prepared,
    prepare_trace,
)
from repro.workload.stream import (
    GeneratedStream,
    MaterializedStream,
    QueryStream,
)
from repro.workload.stats import (
    TraceStats,
    YieldStats,
    format_stats,
    trace_stats,
    yield_stats,
)
from repro.workload.sdss_schema import (
    MEDIUM,
    PROFILES,
    SMALL,
    TINY,
    ScaleProfile,
    build_first_catalog,
    build_sdss_catalog,
)
from repro.workload.templates import TEMPLATES, THEMES, QueryTemplate
from repro.workload.trace import (
    PreparedQuery,
    PreparedTrace,
    Trace,
    TraceRecord,
)

__all__ = [
    "ChunkManifest",
    "ChunkedTrace",
    "ContainmentReport",
    "GeneratedStream",
    "LocalityReport",
    "MaterializedStream",
    "QueryStream",
    "MEDIUM",
    "PROFILES",
    "PreparedQuery",
    "PreparedTrace",
    "QueryTemplate",
    "SMALL",
    "ScaleProfile",
    "TEMPLATES",
    "THEMES",
    "TINY",
    "Trace",
    "TraceConfig",
    "TraceRecord",
    "TraceStats",
    "YieldStats",
    "analyze_containment",
    "analyze_locality",
    "build_first_catalog",
    "build_sdss_catalog",
    "dr1_trace",
    "edr_trace",
    "estimate_trace",
    "format_stats",
    "generate_trace",
    "iter_prepared",
    "iter_trace_records",
    "prepare_trace",
    "trace_stats",
    "referenced_objects",
    "write_chunked",
    "yield_stats",
]
