"""Stable on-disk chunked trace format.

A chunked trace is a directory of bounded JSONL chunk files plus a
``manifest.json`` carrying everything a replay needs *before* reading a
single query: length, sequence bytes, content fingerprint, and the
per-object yield totals at both granularities (so the static policy's
offline selection never forces a counting pass).  Layout::

    <dir>/
      manifest.json
      chunk-00000.jsonl
      chunk-00001.jsonl
      ...

Chunk files hold :class:`~repro.workload.trace.PreparedQuery` JSON
lines, at most ``chunk_size`` per file.  The manifest fingerprint is the
same SHA-256 over canonical query lines that
:func:`~repro.workload.trace.fingerprint_queries` computes, so a chunked
trace, the JSONL file it came from, and a regenerated in-memory trace
all agree on identity — which is what keys the compiled-trace memo.

Writing is single-pass and constant-memory: queries stream in, chunks
roll over at the size bound, and the summary statistics accumulate
incrementally (the totals dicts are bounded by the object universe, a
few dozen entries, not by trace length).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import WorkloadError
from repro.workload.stream import QueryStream
from repro.workload.trace import (
    PreparedQuery,
    PreparedTrace,
    canonical_query_line,
)

#: Format tag written into every manifest; bump on incompatible change.
CHUNK_FORMAT = "repro-chunked-trace/1"

#: Default queries per chunk file.
DEFAULT_CHUNK_SIZE = 10_000

_GRANULARITIES = ("table", "column")


@dataclass(frozen=True)
class ChunkInfo:
    """One chunk file of a chunked trace."""

    file: str
    count: int


@dataclass
class ChunkManifest:
    """Summary metadata for a chunked trace directory."""

    name: str
    num_queries: int
    sequence_bytes: int
    fingerprint: str
    chunk_size: int
    chunks: List[ChunkInfo] = field(default_factory=list)
    object_totals: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        return {
            "format": CHUNK_FORMAT,
            "name": self.name,
            "num_queries": self.num_queries,
            "sequence_bytes": self.sequence_bytes,
            "fingerprint": self.fingerprint,
            "chunk_size": self.chunk_size,
            "chunks": [
                {"file": chunk.file, "count": chunk.count}
                for chunk in self.chunks
            ],
            "object_totals": self.object_totals,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "ChunkManifest":
        tag = data.get("format")
        if tag != CHUNK_FORMAT:
            raise WorkloadError(
                f"unsupported chunked-trace format {tag!r}; "
                f"expected {CHUNK_FORMAT!r}"
            )
        try:
            return cls(
                name=str(data["name"]),
                num_queries=int(data["num_queries"]),
                sequence_bytes=int(data["sequence_bytes"]),
                fingerprint=str(data["fingerprint"]),
                chunk_size=int(data["chunk_size"]),
                chunks=[
                    ChunkInfo(
                        file=str(entry["file"]), count=int(entry["count"])
                    )
                    for entry in list(data["chunks"])
                ],
                object_totals={
                    str(granularity): {
                        str(k): float(v) for k, v in dict(totals).items()
                    }
                    for granularity, totals in dict(
                        data["object_totals"]
                    ).items()
                },
            )
        except KeyError as exc:
            raise WorkloadError(f"manifest missing field: {exc}") from exc


def write_chunked(
    directory: Union[str, Path],
    name: str,
    queries: Iterable[PreparedQuery],
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> ChunkManifest:
    """Stream ``queries`` into a chunked trace directory.

    Single pass, constant memory: at no point does more than one query
    (plus the bounded summary accumulators) live in memory.  Returns the
    manifest, which is also written as ``manifest.json``.
    """
    if chunk_size <= 0:
        raise WorkloadError("chunk_size must be positive")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    hasher = hashlib.sha256()
    totals: Dict[str, Dict[str, float]] = {
        granularity: {} for granularity in _GRANULARITIES
    }
    chunks: List[ChunkInfo] = []
    num_queries = 0
    sequence_bytes = 0
    handle: Optional[IO[str]] = None
    in_chunk = 0

    def seal_chunk() -> None:
        """Close the open chunk file and record it in the manifest."""
        nonlocal handle, in_chunk
        if handle is None:
            return
        handle.close()
        handle = None
        chunks.append(
            ChunkInfo(file=f"chunk-{len(chunks):05d}.jsonl", count=in_chunk)
        )
        in_chunk = 0

    try:
        for query in queries:
            if handle is None:
                path = directory / f"chunk-{len(chunks):05d}.jsonl"
                handle = path.open("w", encoding="utf-8")
            line = canonical_query_line(query)
            hasher.update(line)
            hasher.update(b"\n")
            handle.write(line.decode("utf-8") + "\n")
            num_queries += 1
            in_chunk += 1
            sequence_bytes += query.bypass_bytes
            for granularity in _GRANULARITIES:
                bucket = totals[granularity]
                for object_id, share in query.object_yields(
                    granularity
                ).items():
                    bucket[object_id] = bucket.get(object_id, 0.0) + share
            if in_chunk >= chunk_size:
                seal_chunk()
        seal_chunk()
    finally:
        if handle is not None:
            handle.close()

    manifest = ChunkManifest(
        name=name,
        num_queries=num_queries,
        sequence_bytes=sequence_bytes,
        fingerprint=hasher.hexdigest(),
        chunk_size=chunk_size,
        chunks=chunks,
        object_totals=totals,
    )
    manifest_path = directory / "manifest.json"
    with manifest_path.open("w", encoding="utf-8") as out:
        json.dump(manifest.to_json(), out, indent=2, sort_keys=True)
        out.write("\n")
    return manifest


class ChunkedTrace(QueryStream):
    """A chunked trace directory viewed as a re-iterable query stream.

    Iteration reads one chunk line at a time; memory is bounded by the
    longest single line, not the trace.  All replay metadata (length,
    sequence bytes, fingerprint, static-policy object totals) comes from
    the manifest without touching a chunk.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / "manifest.json"
        if not manifest_path.exists():
            raise WorkloadError(
                f"{self.directory} is not a chunked trace "
                f"(no manifest.json)"
            )
        with manifest_path.open("r", encoding="utf-8") as handle:
            self.manifest = ChunkManifest.from_json(json.load(handle))
        self.name = self.manifest.name

    def __iter__(self) -> Iterator[PreparedQuery]:
        for chunk in self.manifest.chunks:
            path = self.directory / chunk.file
            with path.open("r", encoding="utf-8") as handle:
                for line_no, line in enumerate(handle):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        data = json.loads(line)
                    except json.JSONDecodeError as exc:
                        raise WorkloadError(
                            f"{path}:{line_no + 1}: invalid JSON"
                        ) from exc
                    yield PreparedQuery.from_json(data)

    @property
    def num_queries(self) -> Optional[int]:
        return self.manifest.num_queries

    @property
    def sequence_bytes(self) -> Optional[int]:
        return self.manifest.sequence_bytes

    @property
    def fingerprint(self) -> Optional[str]:
        return self.manifest.fingerprint

    def object_totals(self, granularity: str) -> Optional[Dict[str, float]]:
        totals = self.manifest.object_totals.get(granularity)
        if totals is None:
            return None
        return dict(totals)

    def load(self) -> PreparedTrace:
        """Materialize the whole trace (classic sweeps on small traces)."""
        trace = PreparedTrace(
            name=self.name, queries=list(self)  # repro-lint: allow[RPR007] load() is the documented small-trace materializer
        )
        trace.fingerprint = self.manifest.fingerprint
        return trace
