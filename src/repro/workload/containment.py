"""Query-containment analysis (Figure 4 and the semantic-caching question).

The paper evaluates containment experimentally rather than via the
NP-complete general test: queries over celestial objects are compared by
the *object identifiers they return*.  A later query is (workload-)
contained in earlier ones when every objID it returns was already
returned inside a sliding window.  The analysis yields the scatter data
of Figure 4 (points on the same horizontal line = objID reuse) and the
headline statistic: almost no queries are contained, so semantic caching
cannot help this workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.federation.mediator import Mediator
from repro.workload.trace import Trace, TraceRecord


@dataclass
class ContainmentReport:
    """Result of a containment analysis over a query window sequence.

    Attributes:
        points: (query_number, objID) scatter points — Figure 4's data.
        total_queries: Number of object queries analyzed.
        contained_queries: Queries whose entire objID set was previously
            returned within the window.
        reused_ids: objIDs returned by two or more distinct queries.
        distinct_ids: Total distinct objIDs seen.
    """

    points: List[Tuple[int, int]] = field(default_factory=list)
    total_queries: int = 0
    contained_queries: int = 0
    reused_ids: int = 0
    distinct_ids: int = 0

    @property
    def containment_rate(self) -> float:
        """Fraction of analyzed queries that were contained."""
        if self.total_queries == 0:
            return 0.0
        return self.contained_queries / self.total_queries

    @property
    def reuse_rate(self) -> float:
        """Fraction of distinct objIDs that any later query reused."""
        if self.distinct_ids == 0:
            return 0.0
        return self.reused_ids / self.distinct_ids


#: Templates whose results identify individual celestial objects; only
#: these participate in the containment analysis, matching the paper's
#: "disjoint continuous queries" over objects "denoted with unique
#: identifiers".  Broad region sweeps are excluded: their overlapping
#: windows would measure sky-area overlap, not result reuse.
OBJECT_QUERY_TEMPLATES = frozenset({"identity", "neighbors"})


def analyze_containment(
    trace: Trace,
    mediator: Mediator,
    window: int = 50,
    max_queries: int = 200,
    id_column: str = "objID",
) -> ContainmentReport:
    """Run the workload-based containment analysis.

    Args:
        trace: Raw trace; only object-identifying templates are used.
        mediator: Evaluates each query (no WAN accounting involved).
        window: Sliding window size in object queries (paper uses 50).
        max_queries: Cap on how many object queries to analyze.
        id_column: Name of the identifier column in results.

    Returns:
        A :class:`ContainmentReport`.
    """
    report = ContainmentReport()
    recent: List[Set[int]] = []
    first_seen: Dict[int, int] = {}
    reused: Set[int] = set()
    analyzed = 0

    for record in trace:
        if record.template not in OBJECT_QUERY_TEMPLATES:
            continue
        if analyzed >= max_queries:
            break
        ids = _object_ids(record, mediator, id_column)
        if ids is None:
            continue
        analyzed += 1
        window_ids: Set[int] = set()
        for seen in recent[-window:]:
            window_ids.update(seen)
        # Empty results are not "contained": a result cache could not
        # have answered the query without evaluating it.
        if ids and ids <= window_ids:
            report.contained_queries += 1
        for obj_id in ids:
            report.points.append((analyzed, obj_id))  # repro-lint: allow[RPR007] containment analysis materializes reference points by design
            if obj_id in first_seen:
                reused.add(obj_id)
            else:
                first_seen[obj_id] = analyzed
        recent.append(ids)  # repro-lint: allow[RPR007] deque is bounded by the containment window

    report.total_queries = analyzed
    report.distinct_ids = len(first_seen)
    report.reused_ids = len(reused)
    return report


def _object_ids(
    record: TraceRecord, mediator: Mediator, id_column: str
):
    """The set of identifier values the query returns, or None when the
    result exposes no identifier column."""
    result = mediator.evaluate(record.sql)
    names = [c.lower() for c in result.column_names()]
    target = id_column.lower()
    candidates = [
        i for i, name in enumerate(names)
        if name == target or name == "neighborobjid"
    ]
    if not candidates:
        return None
    position = candidates[0]
    return {
        row[position] for row in result.rows if row[position] is not None
    }
