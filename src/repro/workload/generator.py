"""Synthetic SDSS-like trace generation.

The generator reproduces the workload *properties* the paper's Section
6.1 analysis identifies as the ones that matter for cache design:

* **schema locality** — users dwell on a theme (a small working set of
  templates, hence tables/columns) for long stretches; theme switches
  follow a Markov regime process with geometric dwell times;
* **episodes/burstiness** — within a theme, accesses to an object cluster
  in time, then go quiet;
* **negligible query containment** — every instantiation draws fresh
  predicate parameters, and identity queries rarely repeat an object id.

Two flavors, ``edr`` and ``dr1``, mirror the paper's two data releases:
they differ in seed, theme mixture, and dwell times, so DR1 produces a
different (heavier) traffic profile as in the paper's Tables 1-2.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import WorkloadError
from repro.workload.sdss_schema import SMALL, ScaleProfile
from repro.workload.templates import (
    COLD_TEMPLATES,
    TEMPLATES,
    THEMES,
    RegionCursor,
    pick_template,
)
from repro.workload.trace import Trace, TraceRecord

#: Theme weights per flavor.  EDR skews to imaging sweeps; DR1 adds more
#: spectroscopy and cross-match work (new data products drew new users).
FLAVOR_THEME_WEIGHTS: Dict[str, Dict[str, float]] = {
    "edr": {
        "imaging": 0.40,
        "spectro": 0.25,
        "spatial": 0.20,
        "survey_qa": 0.15,
    },
    "dr1": {
        "imaging": 0.30,
        "spectro": 0.35,
        "spatial": 0.15,
        "survey_qa": 0.10,
        "crossmatch": 0.10,
    },
}

FLAVOR_SEEDS = {"edr": 1001, "dr1": 2002}


@dataclass(frozen=True)
class TraceConfig:
    """Knobs for trace generation.

    Attributes:
        num_queries: Trace length.
        flavor: ``"edr"`` or ``"dr1"`` (theme mixture preset), or
            ``"custom"`` with explicit ``theme_weights``.
        seed: RNG seed; defaults to the flavor's canonical seed.
        mean_dwell: Mean queries spent in one theme before switching.
        theme_weights: Explicit mixture (required for ``"custom"``).
        include_crossmatch: Allow the cross-server FIRST templates even
            for flavors that normally exclude them.
        cold_prob: Probability that a query is a one-off reference to a
            bulk archive table (Frame/Mask/ObjProfile) instead of a theme
            query.  These references are what make in-line caching thrash.
    """

    num_queries: int = 5000
    flavor: str = "edr"
    seed: Optional[int] = None
    mean_dwell: int = 250
    theme_weights: Optional[Dict[str, float]] = None
    include_crossmatch: bool = False
    cold_prob: float = 0.05

    def __post_init__(self) -> None:
        if self.num_queries <= 0:
            raise WorkloadError("num_queries must be positive")
        if self.mean_dwell <= 0:
            raise WorkloadError("mean_dwell must be positive")
        if not 0.0 <= self.cold_prob < 1.0:
            raise WorkloadError("cold_prob must be within [0, 1)")
        if self.flavor == "custom":
            if not self.theme_weights:
                raise WorkloadError(
                    "custom flavor requires explicit theme_weights"
                )
        elif self.flavor not in FLAVOR_THEME_WEIGHTS:
            raise WorkloadError(
                f"unknown flavor {self.flavor!r}; "
                f"use {sorted(FLAVOR_THEME_WEIGHTS)} or 'custom'"
            )

    def resolved_weights(self) -> Dict[str, float]:
        if self.theme_weights is not None:
            weights = dict(self.theme_weights)
        else:
            weights = dict(FLAVOR_THEME_WEIGHTS[self.flavor])
        unknown = set(weights) - set(THEMES)
        if unknown:
            raise WorkloadError(f"unknown themes: {sorted(unknown)}")
        total = sum(weights.values())
        if total <= 0:
            raise WorkloadError("theme weights must sum to a positive value")
        return {name: weight / total for name, weight in weights.items()}

    def resolved_seed(self) -> int:
        if self.seed is not None:
            return self.seed
        return FLAVOR_SEEDS.get(self.flavor, 7)


def trace_name(config: TraceConfig) -> str:
    """The canonical trace name for a generation config."""
    return f"{config.flavor}-{config.num_queries}"


def iter_trace_records(
    config: TraceConfig, profile: ScaleProfile = SMALL
) -> Iterator[TraceRecord]:
    """Stream the configured trace one record at a time.

    This is the constant-memory spelling of :func:`generate_trace`: the
    same seeded RNG draws in the same order, so materializing the
    iterator reproduces the batch result record for record.  Million-
    query traces iterate here without ever holding more than one record.
    """
    rng = random.Random(config.resolved_seed())
    weights = config.resolved_weights()
    cursor = RegionCursor(rng)
    if config.include_crossmatch and "crossmatch" not in weights:
        weights = dict(weights)
        weights["crossmatch"] = 0.1
        total = sum(weights.values())
        weights = {k: v / total for k, v in weights.items()}

    theme = _draw_theme(weights, rng)
    switch_prob = 1.0 / config.mean_dwell
    for index in range(config.num_queries):
        if rng.random() < switch_prob:
            theme = _draw_theme(weights, rng)
        if config.cold_prob and rng.random() < config.cold_prob:
            template = TEMPLATES[rng.choice(COLD_TEMPLATES)]
            record_theme = "cold"
        else:
            template = pick_template(theme, rng)
            record_theme = theme
        sql = template.build(rng, cursor, profile)
        yield TraceRecord(
            index=index,
            sql=sql,
            template=template.name,
            theme=record_theme,
        )


def generate_trace(
    config: TraceConfig, profile: ScaleProfile = SMALL
) -> Trace:
    """Generate a trace with the configured locality structure."""
    trace = Trace(name=trace_name(config))
    for record in iter_trace_records(config, profile):
        trace.append(record)  # repro-lint: allow[RPR007] batch API for classic sweeps; scale path streams iter_trace_records
    return trace


def _draw_theme(weights: Dict[str, float], rng: random.Random) -> str:
    point = rng.random()
    acc = 0.0
    for name, weight in weights.items():
        acc += weight
        if point <= acc:
            return name
    return next(iter(weights))


def edr_trace(
    num_queries: int = 5000, profile: ScaleProfile = SMALL
) -> Trace:
    """The canonical EDR-flavor trace ('Set 1' in Tables 1-2)."""
    return generate_trace(
        TraceConfig(num_queries=num_queries, flavor="edr"), profile
    )


def dr1_trace(
    num_queries: int = 5000, profile: ScaleProfile = SMALL
) -> Trace:
    """The canonical DR1-flavor trace ('Set 2' in Tables 1-2)."""
    return generate_trace(
        TraceConfig(num_queries=num_queries, flavor="dr1"), profile
    )
