"""Parameterized query templates mimicking the SDSS trace query classes.

The paper characterizes the trace as "range queries, spatial searches,
identity queries, and aggregate queries" exhibiting *schema* locality
(recurring tables/columns) but almost no *query* locality (recurring
results).  Each template here fixes a schema shape and draws fresh
parameters on every instantiation, which reproduces exactly that
combination.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from repro.workload.sdss_schema import (
    NUM_CAMCOLS,
    NUM_RUNS,
    OBJECT_TYPES,
    SPEC_CLASSES,
    ScaleProfile,
)


@dataclass(frozen=True)
class QueryTemplate:
    """One schema-shaped query family.

    Attributes:
        name: Stable template identifier (recorded in traces).
        tables: Tables the template touches (for documentation/tests; the
            authoritative reference set comes from parsing the SQL).
        build: Draws parameters from ``rng`` and returns SQL text.
    """

    name: str
    tables: Tuple[str, ...]
    build: Callable[[random.Random, "RegionCursor", ScaleProfile], str]


class RegionCursor:
    """A drifting region of interest on the sky.

    Consecutive region queries in a theme look at nearby, slowly-moving
    sky windows — the "common query iterates over regions of the sky"
    pattern from the paper's introduction — without ever producing
    identical predicates (so query containment stays near zero).
    """

    def __init__(self, rng: random.Random) -> None:
        self.ra = rng.uniform(0.0, 360.0)
        self.dec = rng.uniform(-50.0, 50.0)
        self._rng = rng

    def advance(self) -> None:
        """Drift the window; occasionally jump to a fresh area."""
        if self._rng.random() < 0.05:
            self.ra = self._rng.uniform(0.0, 360.0)
            self.dec = self._rng.uniform(-50.0, 50.0)
        else:
            self.ra = (self.ra + self._rng.uniform(0.5, 4.0)) % 360.0
            self.dec = min(
                55.0, max(-55.0, self.dec + self._rng.uniform(-2.0, 2.0))
            )

    def window(
        self, rng: random.Random, ra_span: float, dec_span: float
    ) -> Tuple[float, float, float, float]:
        self.advance()
        ra_lo = self.ra
        ra_hi = min(360.0, ra_lo + ra_span * (0.5 + rng.random()))
        dec_lo = self.dec
        dec_hi = min(60.0, dec_lo + dec_span * (0.5 + rng.random()))
        return ra_lo, ra_hi, dec_lo, dec_hi


def _region_photo(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    ra_lo, ra_hi, dec_lo, dec_hi = cursor.window(rng, 90.0, 70.0)
    return (
        "SELECT objID, ra, dec, type, modelMag_g, modelMag_r, "
        "modelMag_i, petroRad_r FROM PhotoObj "
        f"WHERE ra BETWEEN {ra_lo:.4f} AND {ra_hi:.4f} "
        f"AND dec BETWEEN {dec_lo:.4f} AND {dec_hi:.4f}"
    )


def _region_tag(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    ra_lo, ra_hi, dec_lo, dec_hi = cursor.window(rng, 140.0, 80.0)
    return (
        "SELECT objID, ra, dec, type, modelMag_g, modelMag_r FROM PhotoTag "
        f"WHERE ra BETWEEN {ra_lo:.4f} AND {ra_hi:.4f} "
        f"AND dec BETWEEN {dec_lo:.4f} AND {dec_hi:.4f}"
    )


def _identity(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    obj_id = rng.randrange(1, profile.photoobj_rows + 1)
    return f"SELECT * FROM PhotoObj WHERE objID = {obj_id}"


def _magcut(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    mag = rng.uniform(18.5, 22.0)
    obj_type = rng.choice(OBJECT_TYPES)
    return (
        "SELECT objID, ra, dec, modelMag_r, modelMag_g, type FROM PhotoObj "
        f"WHERE modelMag_r < {mag:.3f} AND type = {obj_type}"
    )


def _psf_colors(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    ra_lo, ra_hi, _, _ = cursor.window(rng, 120.0, 0.0)
    mag = rng.uniform(18.5, 21.5)
    return (
        "SELECT objID, psfMag_g - psfMag_r AS gr, "
        "psfMag_r - psfMag_i AS ri FROM PhotoObj "
        f"WHERE psfMag_r < {mag:.3f} "
        f"AND ra BETWEEN {ra_lo:.4f} AND {ra_hi:.4f}"
    )


def _spec_join(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    # The paper's running example (Section 6).
    spec_class = rng.choice(SPEC_CLASSES)
    z_conf = rng.uniform(0.5, 0.9)
    mag = rng.uniform(15.0, 18.0)
    z_max = rng.uniform(0.05, 0.3)
    return (
        "SELECT p.objID, p.ra, p.dec, p.modelMag_g, s.z AS redshift "
        "FROM SpecObj s, PhotoObj p "
        "WHERE p.objID = s.objID "
        f"AND s.specClass = {spec_class} AND s.zConf > {z_conf:.3f} "
        f"AND p.modelMag_g > {mag:.3f} AND s.z < {z_max:.4f}"
    )


def _spec_range(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    z_lo = rng.uniform(0.0, 0.08)
    z_hi = z_lo + rng.uniform(0.05, 0.25)
    conf = rng.uniform(0.5, 0.9)
    return (
        "SELECT specObjID, objID, z, zConf, specClass FROM SpecObj "
        f"WHERE z BETWEEN {z_lo:.4f} AND {z_hi:.4f} AND zConf > {conf:.3f}"
    )


def _spec_agg(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    z_max = rng.uniform(0.02, 0.3)
    return (
        "SELECT specClass, COUNT(*) AS n, AVG(z) AS meanz FROM SpecObj "
        f"WHERE z < {z_max:.4f} GROUP BY specClass ORDER BY specClass"
    )


def _tag_join_spec(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    z_min = rng.uniform(0.0, 0.1)
    return (
        "SELECT t.objID, t.ra, t.dec, t.modelMag_g, s.z, s.specClass "
        "FROM PhotoTag t, SpecObj s "
        f"WHERE t.objID = s.objID AND s.z > {z_min:.4f}"
    )


def _neighbors(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    obj_id = rng.randrange(1, profile.photoobj_rows + 1)
    dist = rng.uniform(0.005, 0.06)
    return (
        "SELECT neighborObjID, distance FROM Neighbors "
        f"WHERE objID = {obj_id} AND distance < {dist:.5f}"
    )


def _neighbors_scan(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    dist = rng.uniform(0.02, 0.08)
    kind = rng.choice(OBJECT_TYPES)
    return (
        "SELECT objID, neighborObjID, distance, mode FROM Neighbors "
        f"WHERE distance < {dist:.5f} AND neighborType = {kind}"
    )


def _frame_sky(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    run = rng.randrange(1, NUM_RUNS + 1)
    camcol = rng.randrange(1, NUM_CAMCOLS + 1)
    return (
        "SELECT frameID, sky, skyErr, airmass FROM Frame "
        f"WHERE run = {run} AND camcol = {camcol} AND quality >= 2"
    )


def _mask_lookup(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    ra_lo, ra_hi, dec_lo, dec_hi = cursor.window(rng, 12.0, 10.0)
    return (
        "SELECT maskID, ra, dec, radius FROM Mask "
        f"WHERE ra BETWEEN {ra_lo:.4f} AND {ra_hi:.4f} "
        f"AND dec BETWEEN {dec_lo:.4f} AND {dec_hi:.4f} AND type = "
        f"{rng.randrange(5)}"
    )


def _objprofile_fetch(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    obj_id = rng.randrange(1, profile.photoobj_rows + 1)
    band = rng.randrange(5)
    return (
        "SELECT bin, profMean, profErr FROM ObjProfile "
        f"WHERE objID = {obj_id} AND band = {band} ORDER BY bin"
    )


def _field_stats(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    quality = rng.randrange(3)
    return (
        "SELECT run, camcol, COUNT(*) AS n FROM Field "
        f"WHERE quality >= {quality} GROUP BY run, camcol "
        "ORDER BY run, camcol"
    )


def _field_region(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    run = rng.randrange(1, NUM_RUNS + 1)
    camcol = rng.randrange(1, NUM_CAMCOLS + 1)
    return (
        "SELECT fieldID, ra, dec, nObjects FROM Field "
        f"WHERE run = {run} AND camcol = {camcol}"
    )


def _first_match(
    rng: random.Random, cursor: RegionCursor, profile: ScaleProfile
) -> str:
    peak = rng.uniform(0.5, 2.5)
    return (
        "SELECT p.objID, p.ra, p.dec, f.peak FROM PhotoObj p, First f "
        f"WHERE p.objID = f.objID AND f.peak > {peak:.3f}"
    )


TEMPLATES: Dict[str, QueryTemplate] = {
    t.name: t
    for t in [
        QueryTemplate("region_photo", ("PhotoObj",), _region_photo),
        QueryTemplate("region_tag", ("PhotoTag",), _region_tag),
        QueryTemplate("identity", ("PhotoObj",), _identity),
        QueryTemplate("magcut", ("PhotoObj",), _magcut),
        QueryTemplate("psf_colors", ("PhotoObj",), _psf_colors),
        QueryTemplate("spec_join", ("SpecObj", "PhotoObj"), _spec_join),
        QueryTemplate("spec_range", ("SpecObj",), _spec_range),
        QueryTemplate("spec_agg", ("SpecObj",), _spec_agg),
        QueryTemplate("tag_join_spec", ("PhotoTag", "SpecObj"), _tag_join_spec),
        QueryTemplate("neighbors", ("Neighbors",), _neighbors),
        QueryTemplate("neighbors_scan", ("Neighbors",), _neighbors_scan),
        QueryTemplate("frame_sky", ("Frame",), _frame_sky),
        QueryTemplate("mask_lookup", ("Mask",), _mask_lookup),
        QueryTemplate("objprofile_fetch", ("ObjProfile",), _objprofile_fetch),
        QueryTemplate("field_stats", ("Field",), _field_stats),
        QueryTemplate("field_region", ("Field",), _field_region),
        QueryTemplate("first_match", ("PhotoObj", "First"), _first_match),
    ]
}

#: Cold templates: one-off references to bulk archive tables.  They are
#: sprinkled across every theme by the generator (``cold_prob``); their
#: yields are tiny but the tables behind them are huge, which is what
#: makes load-everything in-line caching (GDS) thrash.
COLD_TEMPLATES: Tuple[str, ...] = (
    "frame_sky",
    "mask_lookup",
    "objprofile_fetch",
)

# Themes: template working-sets users dwell on for long stretches.  The
# dwell behaviour produces the heavy, long-lasting schema locality of
# Figures 5 and 6.
THEMES: Dict[str, List[Tuple[str, float]]] = {
    "imaging": [
        ("region_photo", 0.40),
        ("region_tag", 0.20),
        ("identity", 0.15),
        ("magcut", 0.15),
        ("psf_colors", 0.10),
    ],
    "spectro": [
        ("spec_join", 0.35),
        ("spec_range", 0.30),
        ("spec_agg", 0.20),
        ("tag_join_spec", 0.15),
    ],
    "spatial": [
        ("neighbors", 0.45),
        ("neighbors_scan", 0.25),
        ("region_tag", 0.20),
        ("identity", 0.10),
    ],
    "survey_qa": [
        ("field_stats", 0.40),
        ("field_region", 0.35),
        ("region_photo", 0.25),
    ],
    "crossmatch": [
        ("first_match", 0.55),
        ("region_photo", 0.25),
        ("identity", 0.20),
    ],
}


def pick_template(
    theme: str, rng: random.Random
) -> QueryTemplate:
    """Draw a template from a theme's weighted mixture."""
    entries = THEMES[theme]
    total = sum(weight for _, weight in entries)
    point = rng.random() * total
    acc = 0.0
    for name, weight in entries:
        acc += weight
        if point <= acc:
            return TEMPLATES[name]
    return TEMPLATES[entries[-1][0]]
