"""Trace preparation: measure (or estimate) every query's yield once.

The paper measures yields "by re-executing the traces with the server";
we do the same against the synthetic federation through
:class:`~repro.core.yield_model.ExactYieldSource`, then persist the
measurements so that the many simulator runs of the cache-size sweeps
never touch SQL again.  The estimated source swaps execution for
catalog statistics without changing anything downstream.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.core.yield_model import (
    ExactYieldSource,
    YieldSource,
    attribute_yield_columns,
    attribute_yield_tables,
    make_yield_source,
)
from repro.federation.mediator import Mediator
from repro.sqlengine.statistics import YieldEstimator
from repro.workload.trace import (
    PreparedQuery,
    PreparedTrace,
    Trace,
    TraceRecord,
)


def prepare_query(
    record: TraceRecord, mediator: Mediator, source: YieldSource
) -> PreparedQuery:
    """Plan, measure, and attribute one raw trace record."""
    plan = mediator.plan(record.sql)
    servers = tuple(mediator.servers_for_plan(plan))
    measured = source.measure(record.sql, plan, servers)
    return PreparedQuery(
        index=record.index,
        sql=record.sql,
        template=record.template,
        yield_bytes=measured.yield_bytes,
        bypass_bytes=measured.bypass_bytes,
        table_yields=attribute_yield_tables(plan, measured.yield_bytes),
        column_yields=attribute_yield_columns(plan, measured.yield_bytes),
        servers=servers,
    )


def iter_prepared(
    records: Iterable[TraceRecord],
    mediator: Mediator,
    source: YieldSource,
) -> Iterator[PreparedQuery]:
    """Stream prepared queries one at a time — the constant-memory path.

    Million-query runs chain the generator's record iterator into this
    and never hold more than one prepared query; ``prepare_trace`` is
    the materializing wrapper for the classic sweeps.
    """
    for record in records:
        yield prepare_query(record, mediator, source)


def prepare_trace(
    trace: Trace,
    mediator: Mediator,
    progress: Optional[Callable[[int, int], None]] = None,
    source: Optional[YieldSource] = None,
) -> PreparedTrace:
    """Measure every query of ``trace`` (exactly, unless told otherwise).

    Args:
        trace: Raw trace.
        mediator: Federation front-end used for evaluation.  No WAN
            traffic is charged during preparation.
        progress: Optional callback ``(done, total)``.
        source: Yield source; defaults to executing each query
            (:class:`~repro.core.yield_model.ExactYieldSource`).

    Returns:
        A :class:`~repro.workload.trace.PreparedTrace` carrying per-query
        yields and per-object attributions at both granularities.
    """
    if source is None:
        source = ExactYieldSource(mediator)
    prepared = PreparedTrace(name=trace.name)
    total = len(trace)
    for done, record in enumerate(trace, start=1):
        prepared.queries.append(  # repro-lint: allow[RPR007] batch preparation API; scale path uses GeneratedStream
            prepare_query(record, mediator, source)
        )
        if progress is not None:
            progress(done, total)
    prepared.compute_fingerprint()
    return prepared


def estimate_trace(
    trace: Trace,
    mediator: Mediator,
    estimator: Optional[YieldEstimator] = None,
) -> PreparedTrace:
    """Statistics-only trace preparation: no query is executed.

    Yields come from :class:`~repro.sqlengine.statistics.YieldEstimator`
    instead of measurement, making preparation O(plans) instead of
    O(data).  A production mediator would run this way; the estimation
    ablation benchmark quantifies what the cache loses to the
    estimation error.
    """
    source = make_yield_source(
        "estimated", mediator=mediator, estimator=estimator
    )
    prepared = PreparedTrace(name=f"{trace.name}-estimated")
    for record in trace:
        prepared.queries.append(  # repro-lint: allow[RPR007] batch preparation API; scale path uses GeneratedStream
            prepare_query(record, mediator, source)
        )
    prepared.compute_fingerprint()
    return prepared
