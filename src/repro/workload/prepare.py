"""Trace preparation: execute every query once and record its yields.

The paper measures yields "by re-executing the traces with the server";
we do the same against the synthetic federation, then persist the
measurements so that the many simulator runs of the cache-size sweeps
never touch SQL again.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.core.yield_model import (
    attribute_yield_columns,
    attribute_yield_tables,
)
from repro.federation.mediator import Mediator
from repro.sqlengine.statistics import YieldEstimator
from repro.workload.trace import PreparedQuery, PreparedTrace, Trace


def prepare_trace(
    trace: Trace,
    mediator: Mediator,
    progress: Optional[Callable[[int, int], None]] = None,
) -> PreparedTrace:
    """Execute and measure every query of ``trace``.

    Args:
        trace: Raw trace.
        mediator: Federation front-end used for evaluation.  No WAN
            traffic is charged during preparation.
        progress: Optional callback ``(done, total)``.

    Returns:
        A :class:`~repro.workload.trace.PreparedTrace` carrying per-query
        yields and per-object attributions at both granularities.
    """
    prepared = PreparedTrace(name=trace.name)
    total = len(trace)
    for done, record in enumerate(trace, start=1):
        plan = mediator.plan(record.sql)
        result = mediator.evaluate(record.sql, plan)
        yield_bytes = result.byte_size
        servers = tuple(mediator.servers_for_plan(plan))
        if len(servers) <= 1:
            bypass_bytes = yield_bytes
        else:
            bypass_bytes = _multi_server_bypass_bytes(
                mediator, record.sql, plan, result
            )
        prepared.queries.append(
            PreparedQuery(
                index=record.index,
                sql=record.sql,
                template=record.template,
                yield_bytes=yield_bytes,
                bypass_bytes=bypass_bytes,
                table_yields=attribute_yield_tables(plan, yield_bytes),
                column_yields=attribute_yield_columns(plan, yield_bytes),
                servers=servers,
            )
        )
        if progress is not None:
            progress(done, total)
    return prepared


def _multi_server_bypass_bytes(
    mediator: Mediator, sql: str, plan, result
) -> int:
    """Measure the decomposed shipping cost without polluting the ledger."""
    snapshot = mediator.ledger.snapshot()
    federated = mediator.bypass(sql, plan, result)
    # Roll the ledger back: preparation must be accounting-neutral.
    mediator.ledger.restore(snapshot)
    return federated.wan_bytes


def estimate_trace(
    trace: Trace,
    mediator: Mediator,
    estimator: YieldEstimator,
) -> PreparedTrace:
    """Statistics-only trace preparation: no query is executed.

    Yields come from :class:`~repro.sqlengine.statistics.YieldEstimator`
    instead of measurement, making preparation O(plans) instead of
    O(data).  A production mediator would run this way; the estimation
    ablation benchmark quantifies what the cache loses to the
    estimation error.
    """
    prepared = PreparedTrace(name=f"{trace.name}-estimated")
    for record in trace:
        plan = mediator.plan(record.sql)
        estimated = int(round(estimator.estimate_yield(plan)))
        prepared.queries.append(
            PreparedQuery(
                index=record.index,
                sql=record.sql,
                template=record.template,
                yield_bytes=estimated,
                bypass_bytes=estimated,
                table_yields=attribute_yield_tables(plan, estimated),
                column_yields=attribute_yield_columns(plan, estimated),
                servers=tuple(mediator.servers_for_plan(plan)),
            )
        )
    return prepared
