"""Re-iterable prepared-query streams for constant-memory replay.

A :class:`QueryStream` is the streaming counterpart of
:class:`~repro.workload.trace.PreparedTrace`: a *named, re-iterable*
source of prepared queries that never requires the whole trace in
memory.  Three concrete shapes cover the scale story:

* :class:`MaterializedStream` — adapts an in-memory prepared trace, so
  every classic sweep works unchanged through the streaming APIs;
* :class:`GeneratedStream` — regenerates the seeded workload and
  prepares each query on the fly (exact or estimated yields), holding
  one query at a time; two iterations of the same stream replay
  byte-identical queries because everything downstream of the seed is
  deterministic;
* ``ChunkedTrace`` (in :mod:`repro.workload.chunks`) — reads the
  on-disk chunked format one chunk at a time.

:class:`TenantFanoutStream` is a decorator over any of them: it
re-tags each query with a simulated tenant drawn from a keyed hash,
turning a single-client trace into a deterministic multi-tenant
arrival sequence for the mediator service's load generator.

Streams deliberately do *not* memoize compiled events — the streaming
replay path trades recompilation for flat memory.  Metadata that a
replay needs up front (length, sequence bytes, per-object yield totals
for the static policy) is optional per stream: generated streams know
their length but not their totals; chunked traces know everything from
their manifest.
"""

from __future__ import annotations

import abc
import hashlib
import json
from typing import TYPE_CHECKING, Dict, Iterator, Optional

from repro.workload.generator import (
    TraceConfig,
    iter_trace_records,
    trace_name,
)
from repro.workload.prepare import iter_prepared
from repro.workload.sdss_schema import SMALL, ScaleProfile
from repro.workload.trace import PreparedQuery, PreparedTrace

if TYPE_CHECKING:  # typing-only: avoid import cycles at runtime
    from repro.core.yield_model import YieldSource
    from repro.federation.mediator import Mediator


class QueryStream(abc.ABC):
    """A named, re-iterable source of prepared queries.

    Iterating must be repeatable: two passes over the same stream yield
    the same queries in the same order (the serial == parallel and
    run-twice determinism guarantees depend on it).
    """

    name: str = ""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[PreparedQuery]:
        """Yield prepared queries in trace order, one at a time."""

    @property
    def num_queries(self) -> Optional[int]:
        """Trace length when known without a pass, else ``None``."""
        return None

    @property
    def sequence_bytes(self) -> Optional[int]:
        """No-cache bypass total when known without a pass, else ``None``."""
        return None

    @property
    def fingerprint(self) -> Optional[str]:
        """Content identity when known without a pass, else ``None``."""
        return None

    def object_totals(self, granularity: str) -> Optional[Dict[str, float]]:
        """Per-object attributed-yield sums when known, else ``None``.

        The static policy needs these before replay starts; streams that
        cannot provide them force the caller to either take a counting
        pass or pick a different policy.
        """
        return None


class MaterializedStream(QueryStream):
    """An in-memory prepared trace viewed as a stream."""

    def __init__(self, trace: PreparedTrace) -> None:
        self._trace = trace
        self.name = trace.name

    def __iter__(self) -> Iterator[PreparedQuery]:
        return iter(self._trace)

    @property
    def num_queries(self) -> Optional[int]:
        return len(self._trace)

    @property
    def sequence_bytes(self) -> Optional[int]:
        return self._trace.sequence_bytes

    @property
    def fingerprint(self) -> Optional[str]:
        if self._trace.fingerprint is None:
            self._trace.compute_fingerprint()
        return self._trace.fingerprint

    def object_totals(self, granularity: str) -> Optional[Dict[str, float]]:
        from repro.core.policies.static_select import (
            accumulate_object_yields,
        )

        return accumulate_object_yields(self._trace, granularity)


class GeneratedStream(QueryStream):
    """Generate-and-prepare on the fly: one query in memory at a time.

    Every iteration restarts the seeded generator, so the stream is
    re-iterable and deterministic.  Preparation cost is paid per pass —
    with estimated yields that is O(plans), which is what makes
    million-query passes affordable.
    """

    def __init__(
        self,
        config: TraceConfig,
        mediator: "Mediator",
        source: "YieldSource",
        profile: ScaleProfile = SMALL,
    ) -> None:
        self.config = config
        self.mediator = mediator
        self.source = source
        self.profile = profile
        suffix = "" if source.mode == "exact" else f"-{source.mode}"
        self.name = f"{trace_name(config)}{suffix}"

    def __iter__(self) -> Iterator[PreparedQuery]:
        records = iter_trace_records(self.config, self.profile)
        return iter_prepared(records, self.mediator, self.source)

    @property
    def num_queries(self) -> Optional[int]:
        return self.config.num_queries

    @property
    def fingerprint(self) -> Optional[str]:
        """A *configuration* fingerprint, stable without a data pass.

        Two generated streams with equal configs, profiles, and yield
        modes produce byte-identical queries, so hashing the
        configuration is a sound content identity — without executing
        or estimating a single query.
        """
        basis = {
            "kind": "generated-stream/1",
            "flavor": self.config.flavor,
            "num_queries": self.config.num_queries,
            "seed": self.config.resolved_seed(),
            "mean_dwell": self.config.mean_dwell,
            "cold_prob": self.config.cold_prob,
            "include_crossmatch": self.config.include_crossmatch,
            "theme_weights": self.config.resolved_weights(),
            "profile": self.profile.name,
            "yield_mode": self.source.mode,
        }
        payload = json.dumps(basis, sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


class TenantFanoutStream(QueryStream):
    """Fan one stream's queries out across simulated tenants.

    Each query is re-tagged ``tenant-<k>`` where ``k`` comes from
    :func:`repro.faults.engine.uniform_draw` keyed by (seed, query
    position) — the same keyed-hash construction as the fault engine,
    so the assignment depends only on the seed and the position, never
    on iteration count or process state.  Re-iterating replays the
    identical interleave; different seeds give different interleaves
    over the same queries (the conservation suite sweeps several).

    With ``tenants == 1`` the base stream passes through *untouched*
    (original tags kept): that is the single-tenant serial mode whose
    service replay must stay byte-identical to ``run_stream``.
    """

    def __init__(
        self, base: QueryStream, tenants: int, seed: int = 0
    ) -> None:
        if tenants < 1:
            raise ValueError(
                f"tenant fan-out needs >= 1 tenants, got {tenants}"
            )
        self.base = base
        self.tenants = tenants
        self.seed = seed
        self.name = base.name

    def tenant_for(self, position: int) -> str:
        """The tenant tag assigned to the query at ``position``."""
        from repro.faults.engine import uniform_draw

        draw = uniform_draw(self.seed, "service.fanout", position)
        return f"tenant-{int(draw * self.tenants)}"

    def __iter__(self) -> Iterator[PreparedQuery]:
        from dataclasses import replace

        if self.tenants == 1:
            yield from self.base
            return
        for position, prepared in enumerate(self.base):
            yield replace(
                prepared, tenant=self.tenant_for(position)
            )

    @property
    def num_queries(self) -> Optional[int]:
        return self.base.num_queries

    @property
    def sequence_bytes(self) -> Optional[int]:
        return self.base.sequence_bytes

    @property
    def fingerprint(self) -> Optional[str]:
        """Content identity: the base fingerprint keyed by the fan-out.

        Identity (``tenants == 1``) passes the base fingerprint
        through unchanged — the stream *is* the base stream.
        """
        base = self.base.fingerprint
        if base is None:
            return None
        if self.tenants == 1:
            return base
        basis = json.dumps(
            {
                "kind": "tenant-fanout/1",
                "base": base,
                "tenants": self.tenants,
                "seed": self.seed,
            },
            sort_keys=True,
        ).encode("utf-8")
        return hashlib.sha256(basis).hexdigest()

    def object_totals(self, granularity: str) -> Optional[Dict[str, float]]:
        return self.base.object_totals(granularity)
