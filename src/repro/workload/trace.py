"""Trace records and (de)serialization.

A raw trace is just an ordered list of SQL texts with provenance tags.  A
*prepared* trace additionally carries, per query, everything the
simulator needs without re-executing SQL: the yield in bytes and the
per-object yield attribution at both caching granularities.  Preparing
once and simulating many times is what makes the cache-size sweeps of
Figures 9-10 tractable.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

from repro.errors import WorkloadError


@dataclass(frozen=True)
class TraceRecord:
    """One query of a raw trace."""

    index: int
    sql: str
    template: str = ""
    theme: str = ""

    def to_json(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "sql": self.sql,
            "template": self.template,
            "theme": self.theme,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "TraceRecord":
        try:
            return cls(
                index=int(data["index"]),
                sql=str(data["sql"]),
                template=str(data.get("template", "")),
                theme=str(data.get("theme", "")),
            )
        except KeyError as exc:
            raise WorkloadError(f"trace record missing field: {exc}") from exc


@dataclass
class Trace:
    """An ordered query workload."""

    name: str
    records: List[TraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def append(self, record: TraceRecord) -> None:
        self.records.append(record)

    def save(self, path: Union[str, Path]) -> None:
        """Write as JSONL with a header line."""
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps({"trace": self.name}) + "\n")
            for record in self.records:
                handle.write(json.dumps(record.to_json()) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Trace":
        path = Path(path)
        records: List[TraceRecord] = []
        name = path.stem
        with path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise WorkloadError(
                        f"{path}:{line_no + 1}: invalid JSON"
                    ) from exc
                if line_no == 0 and "trace" in data:
                    name = str(data["trace"])
                    continue
                records.append(TraceRecord.from_json(data))
        return cls(name=name, records=records)


@dataclass(frozen=True)
class PreparedQuery:
    """One query with its measured yield and attribution.

    Attributes:
        index: Position in the trace.
        sql: Query text.
        template: Template provenance tag.
        yield_bytes: Exact result size (the query's yield).
        bypass_bytes: WAN bytes if bypassed (equals ``yield_bytes`` for
            single-server queries; the sum of shipped partials otherwise).
        table_yields: object_id -> attributed yield bytes (table
            granularity; object ids are table names).
        column_yields: Same at column granularity (``table.column`` ids).
        servers: Names of servers the query touches.
        tenant: Client that issued the query ("" for untagged traces).
            Serialized only when set, so every pre-existing trace keeps
            its fingerprint.
    """

    index: int
    sql: str
    template: str
    yield_bytes: int
    bypass_bytes: int
    table_yields: Dict[str, float]
    column_yields: Dict[str, float]
    servers: tuple
    tenant: str = ""

    def object_yields(self, granularity: str) -> Dict[str, float]:
        if granularity == "table":
            return self.table_yields
        if granularity == "column":
            return self.column_yields
        raise WorkloadError(
            f"unknown granularity {granularity!r}; use 'table' or 'column'"
        )

    def to_json(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "index": self.index,
            "sql": self.sql,
            "template": self.template,
            "yield_bytes": self.yield_bytes,
            "bypass_bytes": self.bypass_bytes,
            "table_yields": self.table_yields,
            "column_yields": self.column_yields,
            "servers": list(self.servers),
        }
        # Conditional on purpose: untagged queries must serialize to
        # the exact bytes they did before the field existed, because
        # canonical_query_line() feeds fingerprints and chunk manifests.
        if self.tenant:
            payload["tenant"] = self.tenant
        return payload

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "PreparedQuery":
        try:
            return cls(
                index=int(data["index"]),
                sql=str(data["sql"]),
                template=str(data.get("template", "")),
                yield_bytes=int(data["yield_bytes"]),
                bypass_bytes=int(data["bypass_bytes"]),
                table_yields={
                    str(k): float(v)
                    for k, v in dict(data["table_yields"]).items()
                },
                column_yields={
                    str(k): float(v)
                    for k, v in dict(data["column_yields"]).items()
                },
                servers=tuple(data.get("servers", ())),
                tenant=str(data.get("tenant", "")),
            )
        except KeyError as exc:
            raise WorkloadError(
                f"prepared query missing field: {exc}"
            ) from exc


@dataclass
class PreparedTrace:
    """A trace whose every query has been executed and measured.

    ``fingerprint`` is an optional *content* identity: two
    :class:`PreparedTrace` objects carrying the same fingerprint hold the
    same queries byte for byte, however they were (re)built — loaded
    twice from the same file, regenerated from the same seeded config,
    or streamed out of the same chunked directory.  Consumers that
    memoize per trace (the compiled-trace cache) key on the fingerprint
    when present instead of object identity, which is wrong for
    regenerated traces.
    """

    name: str
    queries: List[PreparedQuery] = field(default_factory=list)
    fingerprint: Optional[str] = None

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self) -> Iterator[PreparedQuery]:
        return iter(self.queries)

    @property
    def sequence_bytes(self) -> int:
        """The 'sequence cost': total bypass bytes with no cache at all."""
        return sum(query.bypass_bytes for query in self.queries)

    def compute_fingerprint(self) -> str:
        """Compute (and remember) the content fingerprint of this trace."""
        self.fingerprint = fingerprint_queries(self.queries)
        return self.fingerprint

    def save(self, path: Union[str, Path]) -> None:
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            handle.write(json.dumps({"prepared_trace": self.name}) + "\n")
            for query in self.queries:
                handle.write(json.dumps(query.to_json()) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "PreparedTrace":
        path = Path(path)
        queries: List[PreparedQuery] = []
        name = path.stem
        with path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle):
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise WorkloadError(
                        f"{path}:{line_no + 1}: invalid JSON"
                    ) from exc
                if line_no == 0 and "prepared_trace" in data:
                    name = str(data["prepared_trace"])
                    continue
                queries.append(PreparedQuery.from_json(data))
        trace = cls(name=name, queries=queries)
        trace.compute_fingerprint()
        return trace


def canonical_query_line(query: PreparedQuery) -> bytes:
    """The canonical byte serialization of one prepared query.

    Both the whole-trace fingerprint and the chunked-format manifest
    hash feed these lines into SHA-256, so a trace loaded from JSONL, a
    regenerated seeded stream, and a chunked directory all agree on
    identity when their queries agree.
    """
    return json.dumps(query.to_json(), sort_keys=True).encode("utf-8")


def fingerprint_queries(queries: Iterable[PreparedQuery]) -> str:
    """Content hash of a prepared-query sequence (order-sensitive)."""
    hasher = hashlib.sha256()
    for query in queries:
        hasher.update(canonical_query_line(query))
        hasher.update(b"\n")
    return hasher.hexdigest()
