"""Schema-locality analysis (Figures 5 and 6).

Figures 5 and 6 plot, for every query in the trace, which columns
(respectively tables) it references; horizontal streaks mean the same
schema element serves many consecutive queries.  We regenerate that
scatter and distill it into summary statistics: working-set
concentration (what fraction of schema elements receives 90% of the
references) and mean run length (how long a streak lasts) — the two
properties that make schema elements, unlike query results, worth
caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Set, Tuple

from repro.sqlengine.ast_nodes import column_refs
from repro.sqlengine.parser import parse
from repro.sqlengine.planner import SchemaLookup, plan_select
from repro.workload.trace import Trace


@dataclass
class LocalityReport:
    """Scatter data plus locality statistics for one granularity.

    Attributes:
        granularity: ``"table"`` or ``"column"``.
        elements: Ordered distinct schema-element ids (y-axis labels).
        points: (query_index, element_index) scatter — the figure's data.
        reference_counts: element id -> number of referencing queries.
        total_elements_in_schema: Universe size (all tables or columns).
    """

    granularity: str
    elements: List[str] = field(default_factory=list)
    points: List[Tuple[int, int]] = field(default_factory=list)
    reference_counts: Dict[str, int] = field(default_factory=dict)
    total_elements_in_schema: int = 0

    @property
    def distinct_used(self) -> int:
        return len(self.elements)

    def concentration(self, mass: float = 0.9) -> float:
        """Smallest fraction of used elements covering ``mass`` of all
        references.  Low values = heavy concentration (good for caching).
        """
        if not self.reference_counts:
            return 0.0
        counts = sorted(self.reference_counts.values(), reverse=True)
        total = sum(counts)
        target = total * mass
        acc = 0
        for i, count in enumerate(counts, start=1):
            acc += count
            if acc >= target:
                return i / len(counts)
        return 1.0

    def mean_run_length(self) -> float:
        """Average length of consecutive-query runs per element.

        Long runs are the "heavy and long lasting periods of reuse" of
        Figures 5-6.
        """
        by_element: Dict[int, List[int]] = {}
        for query_index, element_index in self.points:
            by_element.setdefault(element_index, []).append(query_index)
        run_lengths: List[int] = []
        for indices in by_element.values():
            indices.sort()
            run = 1
            for prev, cur in zip(indices, indices[1:]):
                if cur - prev <= 1:
                    run += 1
                else:
                    run_lengths.append(run)
                    run = 1
            run_lengths.append(run)
        if not run_lengths:
            return 0.0
        return sum(run_lengths) / len(run_lengths)


def referenced_objects(
    sql: str, lookup: SchemaLookup, granularity: str
) -> Set[str]:
    """Object ids a query references at the given granularity.

    Tables: every FROM/JOIN relation.  Columns: every column appearing
    anywhere in the statement (select list, predicates, grouping,
    ordering) resolved to its owning table — the same reference set the
    yield-attribution rules use.
    """
    plan = plan_select(parse(sql), lookup)
    if granularity == "table":
        return {entry.table_name for entry in plan.scope}
    refs: Set[str] = set()
    bindings = {entry.binding.lower(): entry for entry in plan.scope}

    def note(ref) -> None:
        if ref.table is not None:
            entry = bindings.get(ref.table.lower())
            if entry is not None and ref.column in entry.schema:
                col = entry.schema.column(ref.column)
                refs.add(f"{entry.table_name}.{col.name}")
            return
        owners = [
            entry for entry in plan.scope if ref.column in entry.schema
        ]
        if len(owners) == 1:
            col = owners[0].schema.column(ref.column)
            refs.add(f"{owners[0].table_name}.{col.name}")

    exprs = [out.expr for out in plan.outputs]
    for preds in plan.local_predicates.values():
        exprs.extend(preds)
    exprs.extend(plan.residual_predicates)
    exprs.extend(plan.group_by)
    if plan.statement.having is not None:
        exprs.append(plan.statement.having)
    for item in plan.statement.order_by:
        exprs.append(item.expr)
    for expr in exprs:
        for ref in column_refs(expr):
            note(ref)
    for edge in plan.join_edges:
        left = bindings[edge.left_binding.lower()]
        right = bindings[edge.right_binding.lower()]
        refs.add(
            f"{left.table_name}.{left.schema.column(edge.left_column).name}"
        )
        refs.add(
            f"{right.table_name}."
            f"{right.schema.column(edge.right_column).name}"
        )
    return refs


def analyze_locality(
    trace: Trace,
    lookup: SchemaLookup,
    granularity: str,
    universe_size: int = 0,
) -> LocalityReport:
    """Build the Figure 5/6 scatter and statistics for one granularity."""
    report = LocalityReport(
        granularity=granularity, total_elements_in_schema=universe_size
    )
    element_index: Dict[str, int] = {}
    for record in trace:
        objects = referenced_objects(record.sql, lookup, granularity)
        for object_id in sorted(objects):
            index = element_index.get(object_id)
            if index is None:
                index = len(report.elements)
                element_index[object_id] = index
                report.elements.append(object_id)  # repro-lint: allow[RPR007] locality analysis materializes the reference string by design
            report.points.append((record.index, index))  # repro-lint: allow[RPR007] locality analysis materializes the reference string by design
            report.reference_counts[object_id] = (
                report.reference_counts.get(object_id, 0) + 1
            )
    return report
