"""CLI: generate (and optionally prepare) a synthetic SDSS-like trace.

Usage::

    python -m repro.workload.make_trace --flavor edr -n 5000 -o edr.jsonl
    python -m repro.workload.make_trace --flavor dr1 -n 2000 \\
        --profile medium --prepare -o dr1.jsonl
    python -m repro.workload.make_trace --flavor edr -n 1000000 \\
        --yields estimated --chunked traces/edr-1m

``--prepare`` executes every query against a freshly built synthetic
federation and writes a second file (``<output>.prepared.jsonl``)
carrying measured yields and per-object attributions, ready for the
simulator.  ``--yields estimated`` swaps execution for catalog
statistics (O(plans) preparation).  ``--chunked DIR`` streams the
generate→prepare pipeline straight into the chunked on-disk format with
one query in memory at a time — the only mode that scales to 10^6
queries.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.yield_model import YIELD_MODES, make_yield_source
from repro.federation.federation import Federation
from repro.federation.mediator import Mediator
from repro.federation.server import DatabaseServer
from repro.workload.chunks import DEFAULT_CHUNK_SIZE, write_chunked
from repro.workload.generator import (
    FLAVOR_THEME_WEIGHTS,
    TraceConfig,
    generate_trace,
)
from repro.workload.prepare import prepare_trace
from repro.workload.sdss_schema import (
    PROFILES,
    ScaleProfile,
    build_first_catalog,
    build_sdss_catalog,
)
from repro.workload.stats import format_stats, trace_stats, yield_stats
from repro.workload.stream import GeneratedStream


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload.make_trace",
        description="Generate a synthetic SDSS-like query trace.",
    )
    parser.add_argument(
        "--flavor",
        default="edr",
        choices=sorted(FLAVOR_THEME_WEIGHTS),
        help="trace flavor (theme mixture preset)",
    )
    parser.add_argument(
        "-n", "--num-queries", type=int, default=5000,
        help="number of queries to generate (up to 10^6 with --chunked)",
    )
    parser.add_argument(
        "--profile",
        default="small",
        choices=sorted(PROFILES),
        help="database scale profile",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed (defaults to the flavor's canonical seed)",
    )
    parser.add_argument(
        "--mean-dwell", type=int, default=250,
        help="mean queries per user theme before switching",
    )
    parser.add_argument(
        "--cold-prob", type=float, default=0.05,
        help="probability of a one-off bulk-table query",
    )
    parser.add_argument(
        "--prepare", action="store_true",
        help="also measure every query's yield and write it alongside",
    )
    parser.add_argument(
        "--yields",
        default="exact",
        choices=list(YIELD_MODES),
        help="yield source for --prepare/--chunked: execute each query "
        "(exact) or estimate from catalog statistics (estimated)",
    )
    parser.add_argument(
        "--chunked",
        metavar="DIR",
        default=None,
        help="stream generate+prepare into a chunked trace directory "
        "(constant memory; implies preparation)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=DEFAULT_CHUNK_SIZE,
        help="queries per chunk file in --chunked mode",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="output trace path (JSONL); required unless --chunked",
    )
    return parser


def _build_mediator(profile: ScaleProfile) -> Mediator:
    federation = Federation.single_site(build_sdss_catalog(profile), "sdss")
    federation.add_server(
        DatabaseServer("first", build_first_catalog(profile))
    )
    return Mediator(federation)


def run_chunked(
    args: argparse.Namespace, config: TraceConfig, profile: ScaleProfile
) -> int:
    """The constant-memory path: generate→prepare→chunk, one query at a time."""
    mediator = _build_mediator(profile)
    source = make_yield_source(args.yields, mediator=mediator)
    stream = GeneratedStream(config, mediator, source, profile)
    manifest = write_chunked(
        Path(args.chunked), stream.name, iter(stream), args.chunk_size
    )
    print(
        f"wrote {manifest.num_queries} queries "
        f"({len(manifest.chunks)} chunks, yields={args.yields}) "
        f"to {args.chunked}"
    )
    print(
        f"sequence cost {manifest.sequence_bytes / 1e6:.2f} MB, "
        f"fingerprint {manifest.fingerprint[:16]}…"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profile = PROFILES[args.profile]
    config = TraceConfig(
        num_queries=args.num_queries,
        flavor=args.flavor,
        seed=args.seed,
        mean_dwell=args.mean_dwell,
        cold_prob=args.cold_prob,
    )
    if args.chunked is not None:
        return run_chunked(args, config, profile)
    if args.output is None:
        print("error: -o/--output is required unless --chunked", file=sys.stderr)
        return 2

    trace = generate_trace(config, profile)
    output = Path(args.output)
    trace.save(output)
    print(f"wrote {len(trace)} queries to {output}")
    print(format_stats(trace_stats(trace)))

    if args.prepare:
        mediator = _build_mediator(profile)
        source = make_yield_source(args.yields, mediator=mediator)
        prepared = prepare_trace(trace, mediator, source=source)
        prepared_path = output.with_suffix(output.suffix + ".prepared.jsonl")
        prepared.save(prepared_path)
        print(
            f"wrote {args.yields} yields to {prepared_path} "
            f"(sequence cost {prepared.sequence_bytes / 1e6:.2f} MB)"
        )
        print(format_stats(trace_stats(trace), yield_stats(prepared)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
