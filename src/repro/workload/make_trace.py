"""CLI: generate (and optionally prepare) a synthetic SDSS-like trace.

Usage::

    python -m repro.workload.make_trace --flavor edr -n 5000 -o edr.jsonl
    python -m repro.workload.make_trace --flavor dr1 -n 2000 \\
        --profile medium --prepare -o dr1.jsonl

``--prepare`` executes every query against a freshly built synthetic
federation and writes a second file (``<output>.prepared.jsonl``)
carrying measured yields and per-object attributions, ready for the
simulator.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.federation.federation import Federation
from repro.federation.mediator import Mediator
from repro.federation.server import DatabaseServer
from repro.workload.generator import (
    FLAVOR_THEME_WEIGHTS,
    TraceConfig,
    generate_trace,
)
from repro.workload.prepare import prepare_trace
from repro.workload.stats import format_stats, trace_stats, yield_stats
from repro.workload.sdss_schema import (
    PROFILES,
    build_first_catalog,
    build_sdss_catalog,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload.make_trace",
        description="Generate a synthetic SDSS-like query trace.",
    )
    parser.add_argument(
        "--flavor",
        default="edr",
        choices=sorted(FLAVOR_THEME_WEIGHTS),
        help="trace flavor (theme mixture preset)",
    )
    parser.add_argument(
        "-n", "--num-queries", type=int, default=5000,
        help="number of queries to generate",
    )
    parser.add_argument(
        "--profile",
        default="small",
        choices=sorted(PROFILES),
        help="database scale profile",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed (defaults to the flavor's canonical seed)",
    )
    parser.add_argument(
        "--mean-dwell", type=int, default=250,
        help="mean queries per user theme before switching",
    )
    parser.add_argument(
        "--cold-prob", type=float, default=0.05,
        help="probability of a one-off bulk-table query",
    )
    parser.add_argument(
        "--prepare", action="store_true",
        help="also execute every query and write measured yields",
    )
    parser.add_argument(
        "-o", "--output", required=True, help="output trace path (JSONL)"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    profile = PROFILES[args.profile]
    config = TraceConfig(
        num_queries=args.num_queries,
        flavor=args.flavor,
        seed=args.seed,
        mean_dwell=args.mean_dwell,
        cold_prob=args.cold_prob,
    )
    trace = generate_trace(config, profile)
    output = Path(args.output)
    trace.save(output)
    print(f"wrote {len(trace)} queries to {output}")
    print(format_stats(trace_stats(trace)))

    if args.prepare:
        federation = Federation.single_site(
            build_sdss_catalog(profile), "sdss"
        )
        federation.add_server(
            DatabaseServer("first", build_first_catalog(profile))
        )
        mediator = Mediator(federation)
        prepared = prepare_trace(trace, mediator)
        prepared_path = output.with_suffix(output.suffix + ".prepared.jsonl")
        prepared.save(prepared_path)
        print(
            f"wrote measured yields to {prepared_path} "
            f"(sequence cost {prepared.sequence_bytes / 1e6:.2f} MB)"
        )
        print(format_stats(trace_stats(trace), yield_stats(prepared)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
