"""Workload statistics: summarize traces for operators and reports.

Answers the questions an operator asks before sizing a cache: what does
the workload look like (template/theme mix), how heavy is it (yield
distribution), and how concentrated is it (share of traffic from the
top templates)?
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.workload.trace import PreparedTrace, Trace


@dataclass
class TraceStats:
    """Composition summary of a raw trace."""

    num_queries: int
    template_counts: Dict[str, int] = field(default_factory=dict)
    theme_counts: Dict[str, int] = field(default_factory=dict)

    def top_templates(self, count: int = 5) -> List[Tuple[str, int]]:
        return Counter(self.template_counts).most_common(count)


def trace_stats(trace: Trace) -> TraceStats:
    """Template/theme composition of a raw trace."""
    templates = Counter(record.template for record in trace)
    themes = Counter(record.theme for record in trace)
    return TraceStats(
        num_queries=len(trace),
        template_counts=dict(templates),
        theme_counts=dict(themes),
    )


@dataclass
class YieldStats:
    """Yield distribution summary of a prepared trace."""

    num_queries: int
    total_bytes: int
    min_bytes: int
    median_bytes: float
    mean_bytes: float
    p90_bytes: float
    max_bytes: int
    zero_yield_queries: int
    template_yield: Dict[str, int] = field(default_factory=dict)

    def top_yielding_templates(
        self, count: int = 5
    ) -> List[Tuple[str, int]]:
        return Counter(self.template_yield).most_common(count)

    def concentration(self, top: int = 3) -> float:
        """Share of total yield produced by the ``top`` templates."""
        if self.total_bytes == 0:
            return 0.0
        heaviest = sum(
            amount for _, amount in self.top_yielding_templates(top)
        )
        return heaviest / self.total_bytes


def yield_stats(prepared: PreparedTrace) -> YieldStats:
    """Yield distribution of a prepared (measured) trace."""
    yields = sorted(query.yield_bytes for query in prepared)
    per_template: Counter = Counter()
    for query in prepared:
        per_template[query.template] += query.yield_bytes
    if not yields:
        return YieldStats(
            num_queries=0,
            total_bytes=0,
            min_bytes=0,
            median_bytes=0.0,
            mean_bytes=0.0,
            p90_bytes=0.0,
            max_bytes=0,
            zero_yield_queries=0,
        )
    total = sum(yields)
    return YieldStats(
        num_queries=len(yields),
        total_bytes=total,
        min_bytes=yields[0],
        median_bytes=_quantile(yields, 0.5),
        mean_bytes=total / len(yields),
        p90_bytes=_quantile(yields, 0.9),
        max_bytes=yields[-1],
        zero_yield_queries=sum(1 for y in yields if y == 0),
        template_yield=dict(per_template),
    )


def _quantile(sorted_values: List[int], q: float) -> float:
    """Linear-interpolated quantile over pre-sorted values."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    low = int(position)
    high = min(low + 1, len(sorted_values) - 1)
    fraction = position - low
    return (
        sorted_values[low] * (1 - fraction)
        + sorted_values[high] * fraction
    )


def format_stats(
    composition: TraceStats, yields: Optional[YieldStats] = None
) -> str:
    """Human-readable summary block for CLI output."""
    lines = [
        f"queries: {composition.num_queries}",
        "themes: "
        + ", ".join(
            f"{name}={count}"
            for name, count in sorted(composition.theme_counts.items())
        ),
        "top templates: "
        + ", ".join(
            f"{name} x{count}"
            for name, count in composition.top_templates()
        ),
    ]
    if yields is not None and yields.num_queries:
        lines.append(
            f"yields: total {yields.total_bytes / 1e6:.2f} MB, "
            f"median {yields.median_bytes:.0f} B, "
            f"p90 {yields.p90_bytes:.0f} B, max {yields.max_bytes} B"
        )
        lines.append(
            "heaviest templates: "
            + ", ".join(
                f"{name} ({amount / 1e6:.2f} MB)"
                for name, amount in yields.top_yielding_templates(3)
            )
        )
    return "\n".join(lines)
