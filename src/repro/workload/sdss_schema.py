"""SDSS-like astronomy schema and synthetic sky data.

The Sloan Digital Sky Survey traces the paper uses are not distributable,
so we synthesize a database with the same *structure*: a wide imaging
table (PhotoObj), a thin tag table (PhotoTag), a spectroscopic table
(SpecObj) whose objects are a subset of PhotoObj, a pairwise Neighbors
table, an imaging-run Field table, and a FIRST radio-survey table (the
classic SkyQuery cross-match partner, useful for multi-server
federations).

Row counts come from a :class:`ScaleProfile`; all generation is
deterministic given a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sqlengine.catalog import Catalog
from repro.sqlengine.schema import Column, TableSchema
from repro.sqlengine.types import ColumnType

BIGINT = ColumnType.BIGINT
INT = ColumnType.INT
FLOAT = ColumnType.FLOAT


def photoobj_schema() -> TableSchema:
    """The wide imaging table: one row per detected celestial object."""
    bands = ["u", "g", "r", "i", "z"]
    columns = [
        Column("objID", BIGINT),
        Column("run", INT),
        Column("rerun", INT),
        Column("camcol", INT),
        Column("field", INT),
        Column("type", INT),
        Column("flags", BIGINT),
        Column("ra", FLOAT),
        Column("dec", FLOAT),
    ]
    columns.extend(Column(f"psfMag_{b}", FLOAT) for b in bands)
    columns.extend(Column(f"modelMag_{b}", FLOAT) for b in bands)
    columns.extend(
        [
            Column("petroRad_r", FLOAT),
            Column("extinction_r", FLOAT),
            Column("status", INT),
            Column("htmID", BIGINT),
        ]
    )
    return TableSchema("PhotoObj", columns)


def phototag_schema() -> TableSchema:
    """Thin 'tag' projection of PhotoObj kept for fast scans."""
    return TableSchema(
        "PhotoTag",
        [
            Column("objID", BIGINT),
            Column("ra", FLOAT),
            Column("dec", FLOAT),
            Column("type", INT),
            Column("modelMag_g", FLOAT),
            Column("modelMag_r", FLOAT),
            Column("modelMag_i", FLOAT),
        ],
    )


def specobj_schema() -> TableSchema:
    """Spectroscopic objects: a subset of PhotoObj with redshifts."""
    return TableSchema(
        "SpecObj",
        [
            Column("specObjID", BIGINT),
            Column("objID", BIGINT),
            Column("z", FLOAT),
            Column("zErr", FLOAT),
            Column("zConf", FLOAT),
            Column("specClass", INT),
            Column("plate", INT),
            Column("mjd", INT),
            Column("fiberID", INT),
            Column("ra", FLOAT),
            Column("dec", FLOAT),
            Column("velDisp", FLOAT),
        ],
    )


def neighbors_schema() -> TableSchema:
    """Pairwise proximity table used by spatial-neighborhood queries."""
    return TableSchema(
        "Neighbors",
        [
            Column("objID", BIGINT),
            Column("neighborObjID", BIGINT),
            Column("distance", FLOAT),
            Column("neighborType", INT),
            Column("mode", INT),
        ],
    )


def field_schema() -> TableSchema:
    """Imaging-run field metadata."""
    return TableSchema(
        "Field",
        [
            Column("fieldID", BIGINT),
            Column("run", INT),
            Column("camcol", INT),
            Column("field", INT),
            Column("ra", FLOAT),
            Column("dec", FLOAT),
            Column("nObjects", INT),
            Column("quality", INT),
        ],
    )


def frame_schema() -> TableSchema:
    """Imaging frame metadata: bulk archive data, rarely queried."""
    return TableSchema(
        "Frame",
        [
            Column("frameID", BIGINT),
            Column("run", INT),
            Column("camcol", INT),
            Column("field", INT),
            Column("stripe", INT),
            Column("mu", FLOAT),
            Column("nu", FLOAT),
            Column("raMin", FLOAT),
            Column("raMax", FLOAT),
            Column("decMin", FLOAT),
            Column("decMax", FLOAT),
            Column("sky", FLOAT),
            Column("skyErr", FLOAT),
            Column("airmass", FLOAT),
            Column("quality", INT),
        ],
    )


def mask_schema() -> TableSchema:
    """Image defect masks: bulk archive data, rarely queried."""
    return TableSchema(
        "Mask",
        [
            Column("maskID", BIGINT),
            Column("frameID", BIGINT),
            Column("ra", FLOAT),
            Column("dec", FLOAT),
            Column("radius", FLOAT),
            Column("type", INT),
            Column("area", FLOAT),
        ],
    )


def objprofile_schema() -> TableSchema:
    """Radial light profiles: bulk per-object science data, rarely
    queried."""
    return TableSchema(
        "ObjProfile",
        [
            Column("objID", BIGINT),
            Column("bin", INT),
            Column("band", INT),
            Column("profMean", FLOAT),
            Column("profErr", FLOAT),
        ],
    )


def first_schema() -> TableSchema:
    """FIRST radio-survey sources (the SkyQuery cross-match partner)."""
    return TableSchema(
        "First",
        [
            Column("firstID", BIGINT),
            Column("objID", BIGINT),
            Column("ra", FLOAT),
            Column("dec", FLOAT),
            Column("peak", FLOAT),
            Column("integr", FLOAT),
        ],
    )


@dataclass(frozen=True)
class ScaleProfile:
    """Row counts for synthetic database generation.

    The paper's SDSS snapshot was ~700 MB; these profiles are scaled-down
    versions that preserve the *relative* table sizes (PhotoObj dominates;
    SpecObj is roughly a tenth of it; PhotoTag is a thin copy).
    """

    name: str
    photoobj_rows: int
    specobj_rows: int
    phototag_rows: int
    neighbors_rows: int
    field_rows: int
    first_rows: int
    frame_rows: int = 0
    mask_rows: int = 0
    objprofile_rows: int = 0

    def __post_init__(self) -> None:
        counts = [
            self.photoobj_rows,
            self.specobj_rows,
            self.phototag_rows,
            self.neighbors_rows,
            self.field_rows,
            self.first_rows,
        ]
        if any(count <= 0 for count in counts):
            raise ValueError("all row counts must be positive")
        if self.specobj_rows > self.photoobj_rows:
            raise ValueError("SpecObj must be a subset of PhotoObj")
        if self.phototag_rows > self.photoobj_rows:
            raise ValueError("PhotoTag must be a subset of PhotoObj")


TINY = ScaleProfile(
    name="tiny",
    photoobj_rows=400,
    specobj_rows=80,
    phototag_rows=400,
    neighbors_rows=300,
    field_rows=40,
    first_rows=60,
    frame_rows=1000,
    mask_rows=1600,
    objprofile_rows=2400,
)

SMALL = ScaleProfile(
    name="small",
    photoobj_rows=2000,
    specobj_rows=400,
    phototag_rows=2000,
    neighbors_rows=1500,
    field_rows=120,
    first_rows=300,
    frame_rows=5000,
    mask_rows=8000,
    objprofile_rows=12000,
)

MEDIUM = ScaleProfile(
    name="medium",
    photoobj_rows=6000,
    specobj_rows=1200,
    phototag_rows=6000,
    neighbors_rows=4000,
    field_rows=300,
    first_rows=900,
    frame_rows=15000,
    mask_rows=24000,
    objprofile_rows=36000,
)

PROFILES: Dict[str, ScaleProfile] = {
    p.name: p for p in (TINY, SMALL, MEDIUM)
}

# Galaxy / star / quasar style type codes used by templates.
OBJECT_TYPES = (0, 3, 6)
SPEC_CLASSES = (0, 1, 2, 3, 4)
NUM_RUNS = 8
NUM_CAMCOLS = 6


def build_sdss_catalog(
    profile: ScaleProfile = SMALL,
    seed: int = 42,
    name: str = "sdss",
    include_first: bool = False,
) -> Catalog:
    """Generate a fully-populated SDSS-like catalog.

    Args:
        profile: Row counts.
        seed: RNG seed; generation is fully deterministic.
        name: Catalog name.
        include_first: Also populate the FIRST radio table (normally
            hosted on a *separate* server; see :func:`build_first_catalog`).
    """
    rng = random.Random(seed)
    catalog = Catalog(name)

    photo = catalog.create_table(photoobj_schema())
    positions: List[tuple] = []
    for obj_id in range(1, profile.photoobj_rows + 1):
        # Cluster objects into sky stripes so range predicates have
        # non-trivial, controllable selectivity.
        stripe = rng.randrange(NUM_RUNS)
        ra = stripe * (360.0 / NUM_RUNS) + rng.random() * (360.0 / NUM_RUNS)
        dec = rng.uniform(-60.0, 60.0)
        positions.append((obj_id, ra, dec))
        mags = [rng.gauss(19.0, 1.8) for _ in range(5)]
        row = [
            obj_id,
            stripe + 1,
            rng.randrange(1, 4),
            rng.randrange(1, NUM_CAMCOLS + 1),
            rng.randrange(1, 1 + max(1, profile.field_rows)),
            rng.choice(OBJECT_TYPES),
            rng.getrandbits(30),
            ra,
            dec,
        ]
        row.extend(m + rng.gauss(0.0, 0.2) for m in mags)  # psfMag_*
        row.extend(mags)  # modelMag_*
        row.extend(
            [
                abs(rng.gauss(3.0, 1.5)),
                abs(rng.gauss(0.1, 0.05)),
                rng.randrange(4),
                rng.getrandbits(40),
            ]
        )
        photo.insert(row)

    tag = catalog.create_table(phototag_schema())
    model_g = photo.column_values("modelMag_g")
    model_r = photo.column_values("modelMag_r")
    model_i = photo.column_values("modelMag_i")
    types = photo.column_values("type")
    for i in range(profile.phototag_rows):
        obj_id, ra, dec = positions[i]
        tag.insert(
            [obj_id, ra, dec, types[i], model_g[i], model_r[i], model_i[i]]
        )

    spec = catalog.create_table(specobj_schema())
    spec_ids = rng.sample(
        range(1, profile.photoobj_rows + 1), profile.specobj_rows
    )
    for n, obj_id in enumerate(sorted(spec_ids), start=1):
        _, ra, dec = positions[obj_id - 1]
        spec.insert(
            [
                10_000_000 + n,
                obj_id,
                abs(rng.gauss(0.08, 0.07)),
                abs(rng.gauss(0.0005, 0.0003)),
                min(1.0, max(0.0, rng.gauss(0.93, 0.08))),
                rng.choice(SPEC_CLASSES),
                rng.randrange(266, 900),
                rng.randrange(51600, 54000),
                rng.randrange(1, 641),
                ra,
                dec,
                abs(rng.gauss(150.0, 60.0)),
            ]
        )

    neighbors = catalog.create_table(neighbors_schema())
    for _ in range(profile.neighbors_rows):
        a = rng.randrange(1, profile.photoobj_rows + 1)
        b = rng.randrange(1, profile.photoobj_rows + 1)
        neighbors.insert(
            [
                a,
                b,
                abs(rng.gauss(0.02, 0.015)),
                rng.choice(OBJECT_TYPES),
                rng.randrange(2),
            ]
        )

    field = catalog.create_table(field_schema())
    for field_id in range(1, profile.field_rows + 1):
        field.insert(
            [
                field_id,
                rng.randrange(1, NUM_RUNS + 1),
                rng.randrange(1, NUM_CAMCOLS + 1),
                field_id,
                rng.uniform(0.0, 360.0),
                rng.uniform(-60.0, 60.0),
                rng.randrange(50, 900),
                rng.randrange(3),
            ]
        )

    if profile.frame_rows:
        frame = catalog.create_table(frame_schema())
        for frame_id in range(1, profile.frame_rows + 1):
            ra_min = rng.uniform(0.0, 355.0)
            dec_min = rng.uniform(-60.0, 55.0)
            frame.insert(
                [
                    frame_id,
                    rng.randrange(1, NUM_RUNS + 1),
                    rng.randrange(1, NUM_CAMCOLS + 1),
                    frame_id % max(1, profile.field_rows) + 1,
                    rng.randrange(1, 90),
                    rng.uniform(0.0, 360.0),
                    rng.uniform(-60.0, 60.0),
                    ra_min,
                    ra_min + rng.uniform(0.05, 0.3),
                    dec_min,
                    dec_min + rng.uniform(0.05, 0.3),
                    abs(rng.gauss(21.0, 0.6)),
                    abs(rng.gauss(0.02, 0.01)),
                    abs(rng.gauss(1.2, 0.15)),
                    rng.randrange(4),
                ]
            )

    if profile.mask_rows:
        mask = catalog.create_table(mask_schema())
        for mask_id in range(1, profile.mask_rows + 1):
            mask.insert(
                [
                    mask_id,
                    rng.randrange(1, max(2, profile.frame_rows + 1)),
                    rng.uniform(0.0, 360.0),
                    rng.uniform(-60.0, 60.0),
                    abs(rng.gauss(0.01, 0.005)),
                    rng.randrange(5),
                    abs(rng.gauss(0.0003, 0.0002)),
                ]
            )

    if profile.objprofile_rows:
        prof_table = catalog.create_table(objprofile_schema())
        for _ in range(profile.objprofile_rows):
            prof_table.insert(
                [
                    rng.randrange(1, profile.photoobj_rows + 1),
                    rng.randrange(15),
                    rng.randrange(5),
                    abs(rng.gauss(24.0, 2.0)),
                    abs(rng.gauss(0.3, 0.1)),
                ]
            )

    if include_first:
        _populate_first(catalog, profile, rng, positions)

    # Identity and neighborhood lookups dominate point queries; hash
    # indexes on the identifier columns mirror SDSS's primary keys.
    photo.create_index("objID")
    tag.create_index("objID")
    spec.create_index("objID")
    neighbors.create_index("objID")
    if profile.objprofile_rows:
        prof_table.create_index("objID")
    return catalog


def build_first_catalog(
    profile: ScaleProfile = SMALL, seed: int = 43, name: str = "first"
) -> Catalog:
    """The FIRST radio survey as its own catalog (for a second server).

    objID values overlap PhotoObj's id range so cross-match joins produce
    non-empty results.
    """
    rng = random.Random(seed)
    catalog = Catalog(name)
    positions = [
        (obj_id, rng.uniform(0, 360.0), rng.uniform(-60.0, 60.0))
        for obj_id in range(1, profile.photoobj_rows + 1)
    ]
    _populate_first(catalog, profile, rng, positions)
    return catalog


def _populate_first(
    catalog: Catalog,
    profile: ScaleProfile,
    rng: random.Random,
    positions: List[tuple],
) -> None:
    table = catalog.create_table(first_schema())
    sample = rng.sample(
        range(len(positions)), min(profile.first_rows, len(positions))
    )
    for n, idx in enumerate(sorted(sample), start=1):
        obj_id, ra, dec = positions[idx]
        table.insert(
            [
                20_000_000 + n,
                obj_id,
                ra,
                dec,
                abs(rng.gauss(2.5, 1.2)),
                abs(rng.gauss(3.5, 1.5)),
            ]
        )
    table.create_index("objID")
