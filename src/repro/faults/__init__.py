"""Deterministic fault injection for the federation layer.

The subsystem splits into four small pieces:

* :mod:`repro.faults.schedule` — :class:`FaultSchedule` /
  :class:`FaultWindow`: pure-data descriptions of outages, brownouts,
  and flapping links, with exact JSON round-trip;
* :mod:`repro.faults.clock` — :class:`FaultClock`: logical time (one
  tick per replayed query), never the wall clock;
* :mod:`repro.faults.engine` — :class:`FaultEngine`: evaluates a
  schedule at a tick, with all pseudo-randomness derived from SHA-256
  draws over ``(seed, key)`` so replay is byte-identical;
* :mod:`repro.faults.transport` — :class:`ResilientTransport`:
  retries with capped backoff and deterministic jitter, per-server
  circuit breakers, and retry-traffic totals that callers route
  through the sanctioned ledger mutators.

An empty schedule is the identity: the transport's first attempt
always succeeds, nothing is wasted, and every decision and WAN total
matches the fault-free pipeline byte for byte.
"""

from repro.faults.clock import FaultClock
from repro.faults.engine import FaultEngine, uniform_draw
from repro.faults.schedule import (
    FAULT_KINDS,
    FaultSchedule,
    FaultWindow,
    combined_failure_rate,
    outage_windows,
    parse_fault_seed,
)
from repro.faults.transport import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BreakerPolicy,
    CircuitBreaker,
    ResilientTransport,
    RetryPolicy,
    TransportOutcome,
)

__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BreakerPolicy",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultClock",
    "FaultEngine",
    "FaultSchedule",
    "FaultWindow",
    "ResilientTransport",
    "RetryPolicy",
    "TransportOutcome",
    "combined_failure_rate",
    "outage_windows",
    "parse_fault_seed",
    "uniform_draw",
]
