"""Resilient transport: retries, backoff, and per-server circuit breakers.

:class:`ResilientTransport` sits between the mediator/proxy and the
fault engine.  Every WAN transfer goes through :meth:`send`, which:

1. consults the per-server :class:`CircuitBreaker` — an OPEN breaker
   refuses outright (no bytes move, no retries burn);
2. probes the :class:`~repro.faults.engine.FaultEngine` per attempt —
   outages ship nothing, transient failures on an *up* server waste the
   full payload (the bytes crossed the WAN before the transfer died);
3. backs off between attempts with capped exponential delay plus
   deterministic jitter, modelled as fractional ticks so a retry
   sequence can outlive a short fault window without any wall clock;
4. reports an aggregate :class:`TransportOutcome` with the retry count
   and wasted bytes/cost, which callers route through the sanctioned
   ledger mutators so retransmissions show up in WAN totals.

Timeouts are modelled through brownout inflation: an attempt whose
cost multiplier exceeds ``RetryPolicy.timeout_multiplier`` is treated
as timed out (the transfer would not finish inside the per-backend
deadline) and wastes the payload like any other transient failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import FaultError
from repro.faults.engine import FaultEngine, uniform_draw
from repro.obs.spans import STAGE_ATTEMPT, Tracer, live_tracer

#: Breaker states, in transition order.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


@dataclass(frozen=True)
class RetryPolicy:
    """How hard the transport tries before giving up on a transfer.

    Attributes:
        max_attempts: Total attempts per request (first try included).
        base_backoff: Backoff after the first failure, in ticks.
        backoff_cap: Ceiling on any single backoff delay, in ticks.
        jitter: Fraction of each delay drawn as deterministic jitter
            (0 disables jitter entirely).
        timeout_multiplier: Cost-inflation level treated as a timeout:
            an attempt seeing ``cost_multiplier >= timeout_multiplier``
            fails as too slow to finish inside the backend deadline.
    """

    max_attempts: int = 3
    base_backoff: float = 0.25
    backoff_cap: float = 2.0
    jitter: float = 0.5
    timeout_multiplier: float = 8.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(
                f"retry policy needs max_attempts >= 1, got {self.max_attempts}"
            )
        if self.base_backoff < 0 or self.backoff_cap < self.base_backoff:
            raise FaultError(
                f"retry policy needs 0 <= base_backoff <= backoff_cap, got "
                f"{self.base_backoff}/{self.backoff_cap}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise FaultError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.timeout_multiplier <= 1.0:
            raise FaultError(
                f"timeout_multiplier must exceed 1, got "
                f"{self.timeout_multiplier}"
            )

    def backoff(self, seed: int, server: str, request_id: int, attempt: int) -> float:
        """Delay in ticks before retry ``attempt`` (attempt 1 = first retry).

        Capped exponential growth with deterministic jitter keyed by
        ``(seed, server, request_id, attempt)``: the same request under
        the same schedule always waits the same fractional-tick delay.
        """
        if attempt < 1:
            return 0.0
        delay = min(self.backoff_cap, self.base_backoff * (2 ** (attempt - 1)))
        if self.jitter > 0.0 and delay > 0.0:
            draw = uniform_draw(seed, "backoff", server, request_id, attempt)
            delay *= 1.0 - self.jitter / 2.0 + self.jitter * draw
        return delay


@dataclass(frozen=True)
class BreakerPolicy:
    """Per-server circuit-breaker tuning.

    Attributes:
        failure_threshold: Consecutive exhausted requests that trip the
            breaker from CLOSED to OPEN.
        cooldown_ticks: Ticks an OPEN breaker refuses traffic before
            allowing one HALF_OPEN probe.
    """

    failure_threshold: int = 3
    cooldown_ticks: int = 5

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise FaultError(
                f"breaker needs failure_threshold >= 1, got "
                f"{self.failure_threshold}"
            )
        if self.cooldown_ticks < 1:
            raise FaultError(
                f"breaker needs cooldown_ticks >= 1, got {self.cooldown_ticks}"
            )


class CircuitBreaker:
    """CLOSED → OPEN → HALF_OPEN state machine for one server.

    CLOSED counts consecutive exhausted requests; at the threshold it
    opens.  OPEN refuses everything until ``cooldown_ticks`` logical
    ticks elapse, then admits exactly one HALF_OPEN probe: success
    closes the breaker, failure re-opens it for another cooldown.
    """

    __slots__ = (
        "_policy",
        "_state",
        "_consecutive_failures",
        "_opened_at",
        "_transitions",
        "_rejections",
    )

    def __init__(self, policy: Optional[BreakerPolicy] = None) -> None:
        self._policy = policy or BreakerPolicy()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0
        self._transitions = 0
        self._rejections = 0

    @property
    def state(self) -> str:
        return self._state

    @property
    def transitions(self) -> int:
        """State changes so far (for the breaker-churn counters)."""
        return self._transitions

    @property
    def rejections(self) -> int:
        """Requests refused while OPEN."""
        return self._rejections

    def _move(self, state: str) -> None:
        if state != self._state:
            self._state = state
            self._transitions += 1

    def allows(self, tick: int) -> bool:
        """Whether a request may proceed at ``tick``.

        An OPEN breaker whose cooldown has elapsed moves to HALF_OPEN
        and admits the caller as the probe.
        """
        if self._state == BREAKER_CLOSED:
            return True
        if self._state == BREAKER_OPEN:
            if tick - self._opened_at >= self._policy.cooldown_ticks:
                self._move(BREAKER_HALF_OPEN)
                return True
            self._rejections += 1
            return False
        # HALF_OPEN: one probe is already in flight per tick; additional
        # requests in the same tick ride along as probes too (the replay
        # loop is single-threaded, so this stays deterministic).
        return True

    def record_success(self) -> None:
        """A request completed; close the breaker."""
        self._consecutive_failures = 0
        self._move(BREAKER_CLOSED)

    def record_failure(self, tick: int) -> None:
        """A request exhausted its retries; maybe trip the breaker."""
        if self._state == BREAKER_HALF_OPEN:
            self._opened_at = tick
            self._move(BREAKER_OPEN)
            return
        self._consecutive_failures += 1
        if (
            self._state == BREAKER_CLOSED
            and self._consecutive_failures >= self._policy.failure_threshold
        ):
            self._opened_at = tick
            self._move(BREAKER_OPEN)


@dataclass(frozen=True)
class TransportOutcome:
    """What one :meth:`ResilientTransport.send` call did on the wire.

    Attributes:
        ok: Whether the payload ultimately got through.
        server: The server addressed.
        attempts: Transfer attempts made (0 when the breaker refused).
        retries: Attempts beyond the first (``max(0, attempts - 1)``).
        wasted_bytes: Raw bytes shipped by failed attempts — bytes that
            crossed the WAN and bought nothing.
        wasted_cost: Link-weighted cost of those wasted bytes, brownout
            inflation included.
        cost_multiplier: Inflation applied to the *successful* attempt
            (1.0 when the transfer failed or no brownout was active).
        rejected: True when an OPEN breaker refused the request.
    """

    ok: bool
    server: str
    attempts: int
    retries: int
    wasted_bytes: int
    wasted_cost: float
    cost_multiplier: float
    rejected: bool = False


#: Signature of the counter hook: ``(name, value)``.
CounterHook = Callable[[str, int], None]


class ResilientTransport:
    """Retrying, breaker-guarded WAN transfers over a fault engine.

    One instance per run: breakers accumulate state across requests,
    and ``request_id`` (a per-transport monotonic counter) feeds the
    deterministic draws, so a fresh transport per run is what makes
    serial and parallel sweeps agree.
    """

    def __init__(
        self,
        engine: FaultEngine,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[BreakerPolicy] = None,
        on_counter: Optional[CounterHook] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        self._engine = engine
        self._retry = retry or RetryPolicy()
        self._breaker_policy = breaker or BreakerPolicy()
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._on_counter = on_counter
        self._tracer = live_tracer(tracer)
        self._request_id = 0
        self._requests = 0
        self._retries = 0
        self._wasted_bytes = 0
        self._failures = 0

    @property
    def engine(self) -> FaultEngine:
        return self._engine

    @property
    def retry_policy(self) -> RetryPolicy:
        return self._retry

    def breaker_for(self, server: str) -> CircuitBreaker:
        breaker = self._breakers.get(server)
        if breaker is None:
            breaker = CircuitBreaker(self._breaker_policy)
            self._breakers[server] = breaker
        return breaker

    def set_counter_hook(self, hook: Optional[CounterHook]) -> None:
        """Route ``transport.*``/``breaker.*`` counters into a sink.

        Late wiring for drivers (the proxy) whose instrumentation is
        created after the transport; counters emitted before the hook
        is set are only visible through :meth:`stats`.
        """
        self._on_counter = hook

    def attach_tracer(self, tracer: Optional[Tracer]) -> None:
        """Late tracer wiring, mirroring :meth:`set_counter_hook`."""
        self._tracer = live_tracer(tracer)

    def _count(self, name: str, value: int = 1) -> None:
        if self._on_counter is not None and value:
            self._on_counter(name, value)

    def is_up(self, server: str, tick: int) -> bool:
        """Availability probe (no breaker interaction, no accounting)."""
        return self._engine.is_up(server, tick)

    def send(
        self,
        server: str,
        payload_bytes: int,
        tick: int,
        weight: float = 1.0,
    ) -> TransportOutcome:
        """Attempt to move ``payload_bytes`` to/from ``server`` at ``tick``.

        ``weight`` is the per-byte link weight so wasted cost lands in
        the same currency as the sanctioned ledgers.  The caller charges
        the *successful* transfer itself (through its normal accounting
        path, scaled by ``cost_multiplier``); the transport only totals
        what the failed attempts burned.
        """
        self._request_id += 1
        request_id = self._request_id
        self._requests += 1
        self._count("transport.requests")

        tracer = self._tracer
        breaker = self.breaker_for(server)
        before = breaker.transitions
        if not breaker.allows(tick):
            self._count("transport.rejections")
            self._count("breaker.transitions", breaker.transitions - before)
            if tracer is not None:
                rejected_span = tracer.start(
                    STAGE_ATTEMPT,
                    server=server,
                    attempt=0,
                    breaker=breaker.state,
                    status="rejected",
                )
                tracer.finish(rejected_span)
            return TransportOutcome(
                ok=False,
                server=server,
                attempts=0,
                retries=0,
                wasted_bytes=0,
                wasted_cost=0.0,
                cost_multiplier=1.0,
                rejected=True,
            )

        wasted_bytes = 0
        wasted_cost = 0.0
        attempts = 0
        elapsed = 0.0
        ok = False
        success_multiplier = 1.0
        for attempt in range(self._retry.max_attempts):
            attempts += 1
            # Backoff pushes later attempts into later (fractional)
            # ticks, so a retry can observe a fault window ending.
            probe_tick = tick + int(elapsed)
            attempt_span = None
            if tracer is not None:
                attempt_span = tracer.start(
                    STAGE_ATTEMPT,
                    server=server,
                    attempt=attempt,
                    breaker=breaker.state,
                    tick=probe_tick,
                )
            shipped = 0
            status = "dark"
            if not self._engine.is_up(server, probe_tick):
                # Dark server: connection refused, nothing shipped.
                pass
            else:
                multiplier = self._engine.cost_multiplier(server, probe_tick)
                timed_out = multiplier >= self._retry.timeout_multiplier
                failed = timed_out or self._engine.attempt_fails(
                    server, probe_tick, request_id, attempt
                )
                if not failed:
                    ok = True
                    success_multiplier = multiplier
                    status = "ok"
                    shipped = payload_bytes
                else:
                    # The transfer died mid-flight: the payload crossed
                    # the WAN (inflated) and bought nothing.
                    wasted_bytes += payload_bytes
                    wasted_cost += payload_bytes * weight * multiplier
                    status = "timeout" if timed_out else "failed"
                    shipped = payload_bytes
            if tracer is not None and attempt_span is not None:
                tracer.finish(
                    attempt_span, bytes_moved=shipped, status=status
                )
            if ok:
                break
            elapsed += self._retry.backoff(
                self._engine.seed, server, request_id, attempt + 1
            )

        retries = attempts - 1
        self._retries += retries
        self._wasted_bytes += wasted_bytes
        self._count("transport.retries", retries)
        self._count("transport.retry_bytes", wasted_bytes)
        if ok:
            breaker.record_success()
        else:
            self._failures += 1
            self._count("transport.failures")
            breaker.record_failure(tick)
        self._count("breaker.transitions", breaker.transitions - before)
        return TransportOutcome(
            ok=ok,
            server=server,
            attempts=attempts,
            retries=retries,
            wasted_bytes=wasted_bytes,
            wasted_cost=wasted_cost,
            cost_multiplier=success_multiplier,
        )

    # -- telemetry -------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Aggregate counters for reports and tests."""
        return {
            "requests": self._requests,
            "retries": self._retries,
            "retry_bytes": self._wasted_bytes,
            "failures": self._failures,
            "breaker_transitions": sum(
                breaker.transitions for breaker in self._breakers.values()
            ),
            "breaker_rejections": sum(
                breaker.rejections for breaker in self._breakers.values()
            ),
        }

    def breaker_states(self) -> Dict[str, str]:
        """Current breaker state per server (servers seen so far)."""
        return {
            server: breaker.state
            for server, breaker in sorted(self._breakers.items())
        }
