"""Logical time for the fault layer.

The reproduction has no wall clock anywhere on the decision path (the
determinism contract, RPR002): the only notion of time is the *query
index* of the trace being replayed.  :class:`FaultClock` wraps that
index so fault windows, breaker cooldowns, and retry backoff all talk
about the same monotonically advancing integer — a "tick".

The simulator advances the clock once per query; the proxy advances it
once per request.  Backoff delays are modelled as fractional elapsed
time *within* a tick (see :mod:`repro.faults.transport`), so a retry
sequence can observe a fault window ending mid-request without ever
consulting the host clock.
"""

from __future__ import annotations

from repro.errors import FaultError


class FaultClock:
    """A monotonically advancing logical clock measured in ticks.

    One tick corresponds to one replayed query.  The clock never reads
    host time; callers drive it explicitly via :meth:`advance` or
    :meth:`advance_to`.
    """

    __slots__ = ("_tick",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise FaultError(f"clock cannot start before tick 0, got {start}")
        self._tick = start

    @property
    def tick(self) -> int:
        """The current logical tick."""
        return self._tick

    def advance(self, ticks: int = 1) -> int:
        """Move the clock forward by ``ticks`` and return the new tick."""
        if ticks < 0:
            raise FaultError(f"clock cannot move backwards (advance {ticks})")
        self._tick += ticks
        return self._tick

    def advance_to(self, tick: int) -> int:
        """Jump directly to ``tick`` (must not be in the past)."""
        if tick < self._tick:
            raise FaultError(
                f"clock cannot move backwards (at {self._tick}, "
                f"asked for {tick})"
            )
        self._tick = tick
        return self._tick

    def reset(self, start: int = 0) -> None:
        """Rewind to ``start`` for a fresh replay of the same schedule."""
        if start < 0:
            raise FaultError(f"clock cannot reset before tick 0, got {start}")
        self._tick = start

    def __repr__(self) -> str:
        return f"FaultClock(tick={self._tick})"
