"""Declarative fault schedules: what breaks, where, and when.

A :class:`FaultSchedule` is a seed plus a list of :class:`FaultWindow`
records, each naming a server, a half-open ``[start, end)`` interval in
*logical ticks* (the query index — the paper's notion of time), and a
fault kind:

* ``outage`` — the server is dark for the whole window;
* ``brownout`` — the server stays up but degraded: every byte shipped
  costs ``cost_multiplier`` times more (congested/failing-over links)
  and each transfer attempt fails independently with ``failure_rate``;
* ``flap`` — the link cycles up/down with ``period`` ticks per cycle
  and ``duty`` fraction of each cycle up (route flapping, DHCP storms).

Schedules are pure data: JSON round-trip (:meth:`FaultSchedule.dump` /
:meth:`FaultSchedule.load`) is exact, and everything downstream —
transient-failure draws, backoff jitter — derives deterministically
from ``(seed, schedule)`` via :class:`~repro.faults.engine.FaultEngine`.
No wall clock, no module-global randomness, byte-identical replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Tuple, Union

from repro.errors import FaultError

#: Recognized fault kinds.
FAULT_KINDS = ("outage", "brownout", "flap")

#: Schema tag written into serialized schedules.
SCHEDULE_SCHEMA = 1


@dataclass(frozen=True)
class FaultWindow:
    """One fault affecting one server over one tick interval.

    Attributes:
        kind: ``"outage"``, ``"brownout"``, or ``"flap"``.
        server: Name of the affected server.
        start: First affected tick (inclusive).
        end: First unaffected tick (exclusive).
        cost_multiplier: Brownout byte-cost/latency inflation (>= 1).
        failure_rate: Brownout per-attempt transient failure
            probability in ``[0, 1]``.
        period: Flap cycle length in ticks (>= 2).
        duty: Flap fraction of each cycle the link is *up*, in
            ``[0, 1]``.
    """

    kind: str
    server: str
    start: int
    end: int
    cost_multiplier: float = 1.0
    failure_rate: float = 0.0
    period: int = 0
    duty: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if not self.server:
            raise FaultError("fault window needs a server name")
        if self.start < 0 or self.end <= self.start:
            raise FaultError(
                f"fault window needs 0 <= start < end, got "
                f"[{self.start}, {self.end})"
            )
        if self.cost_multiplier < 1.0:
            raise FaultError(
                f"cost_multiplier must be >= 1, got {self.cost_multiplier}"
            )
        if not 0.0 <= self.failure_rate <= 1.0:
            raise FaultError(
                f"failure_rate must be in [0, 1], got {self.failure_rate}"
            )
        if self.kind == "flap":
            if self.period < 2:
                raise FaultError(
                    f"flap window needs period >= 2 ticks, "
                    f"got {self.period}"
                )
            if not 0.0 <= self.duty <= 1.0:
                raise FaultError(
                    f"flap duty must be in [0, 1], got {self.duty}"
                )

    def covers(self, tick: int) -> bool:
        """True when ``tick`` falls inside this window."""
        return self.start <= tick < self.end

    def to_json(self) -> Dict[str, object]:
        """JSON-safe dict that :meth:`from_json` restores exactly."""
        data: Dict[str, object] = {
            "kind": self.kind,
            "server": self.server,
            "start": self.start,
            "end": self.end,
        }
        if self.cost_multiplier != 1.0:
            data["cost_multiplier"] = self.cost_multiplier
        if self.failure_rate != 0.0:
            data["failure_rate"] = self.failure_rate
        if self.kind == "flap":
            data["period"] = self.period
            data["duty"] = self.duty
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FaultWindow":
        """Rebuild a window from :meth:`to_json` output (validated)."""
        if not isinstance(data, Mapping):
            raise FaultError(
                f"fault window must be an object, got {type(data).__name__}"
            )
        try:
            return cls(
                kind=str(data["kind"]),
                server=str(data["server"]),
                start=int(data["start"]),  # type: ignore[call-overload]
                end=int(data["end"]),  # type: ignore[call-overload]
                cost_multiplier=float(data.get("cost_multiplier", 1.0)),  # type: ignore[arg-type]
                failure_rate=float(data.get("failure_rate", 0.0)),  # type: ignore[arg-type]
                period=int(data.get("period", 0)),  # type: ignore[call-overload]
                duty=float(data.get("duty", 0.5)),  # type: ignore[arg-type]
            )
        except KeyError as exc:
            raise FaultError(
                f"fault window missing required field {exc.args[0]!r}"
            ) from None
        except (TypeError, ValueError) as exc:
            raise FaultError(f"malformed fault window: {exc}") from None


@dataclass(frozen=True)
class FaultSchedule:
    """A seed plus the fault windows it drives.

    The schedule is the *entire* source of nondeterminism in the fault
    layer: two runs over the same ``(seed, windows)`` see identical
    outages, identical transient-failure draws, and identical backoff
    jitter, in any process, in any order.
    """

    seed: int = 0
    windows: Tuple[FaultWindow, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise FaultError(f"schedule seed must be an int, got {self.seed!r}")
        object.__setattr__(self, "windows", tuple(self.windows))

    @classmethod
    def empty(cls, seed: int = 0) -> "FaultSchedule":
        """A schedule that injects nothing (the identity schedule)."""
        return cls(seed=seed, windows=())

    @property
    def is_empty(self) -> bool:
        return not self.windows

    @property
    def servers(self) -> Tuple[str, ...]:
        """Sorted distinct server names the schedule touches."""
        return tuple(sorted({window.server for window in self.windows}))

    def windows_for(self, server: str) -> Tuple[FaultWindow, ...]:
        """Windows affecting ``server``, in schedule order."""
        return tuple(
            window for window in self.windows if window.server == server
        )

    def with_seed(self, seed: int) -> "FaultSchedule":
        """The same windows under a different seed."""
        return FaultSchedule(seed=seed, windows=self.windows)

    # -- serialization ---------------------------------------------------

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": SCHEDULE_SCHEMA,
            "seed": self.seed,
            "faults": [window.to_json() for window in self.windows],
        }

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "FaultSchedule":
        if not isinstance(data, Mapping):
            raise FaultError(
                f"fault schedule must be an object, got "
                f"{type(data).__name__}"
            )
        schema = data.get("schema", SCHEDULE_SCHEMA)
        if not isinstance(schema, int) or schema > SCHEDULE_SCHEMA:
            raise FaultError(
                f"cannot read fault schedule schema {schema!r}; "
                f"this build understands <= {SCHEDULE_SCHEMA}"
            )
        raw_seed = data.get("seed", 0)
        if isinstance(raw_seed, bool) or not isinstance(raw_seed, int):
            raise FaultError(
                f"schedule seed must be an integer, got {raw_seed!r}"
            )
        raw_windows = data.get("faults", [])
        if not isinstance(raw_windows, list):
            raise FaultError("schedule 'faults' must be a list of windows")
        windows = tuple(
            FaultWindow.from_json(entry) for entry in raw_windows
        )
        return cls(seed=raw_seed, windows=windows)

    def dumps(self) -> str:
        """Serialize to a JSON string (stable key order)."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def loads(cls, text: str) -> "FaultSchedule":
        """Parse a schedule from JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault schedule is not valid JSON: {exc}") from None
        return cls.from_json(data)

    def dump(self, path: Union[str, Path]) -> None:
        """Write the schedule to ``path`` as JSON."""
        Path(path).write_text(self.dumps(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "FaultSchedule":
        """Read a schedule written by :meth:`dump`."""
        try:
            text = Path(path).read_text(encoding="utf-8")
        except FileNotFoundError:
            raise FaultError(f"no such fault schedule file: {path}") from None
        return cls.loads(text)


def combined_failure_rate(rates: Iterable[float]) -> float:
    """Failure probability of independent overlapping failure sources."""
    survive = 1.0
    for rate in rates:
        survive *= 1.0 - rate
    return 1.0 - survive


def outage_windows(
    server: str, spans: Iterable[Tuple[int, int]]
) -> List[FaultWindow]:
    """Convenience: outage windows for one server from (start, end) pairs."""
    return [
        FaultWindow(kind="outage", server=server, start=start, end=end)
        for start, end in spans
    ]


def parse_fault_seed(raw: str, source: str = "--fault-seed") -> int:
    """Parse a fault-seed setting into a non-negative integer.

    The CLI-facing validator (same contract as
    :func:`repro.experiments.common.parse_worker_count`): anything that
    is not a plain non-negative decimal integer raises
    :class:`~repro.errors.FaultError` naming ``source`` instead of
    being silently coerced.
    """
    text = raw.strip()
    try:
        value = int(text, 10)
    except ValueError:
        raise FaultError(
            f"{source} must be a non-negative integer seed, got {raw!r}"
        ) from None
    if value < 0:
        raise FaultError(
            f"{source} must be a non-negative integer seed, got {raw!r}"
        )
    return value
