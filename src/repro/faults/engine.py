"""The fault engine: deterministic answers to "is this server up?".

:class:`FaultEngine` evaluates a :class:`~repro.faults.schedule.FaultSchedule`
at a logical tick and answers three questions per server:

* :meth:`is_up` — is the server reachable at all (outages, flap-down
  phases)?
* :meth:`cost_multiplier` — how inflated is each shipped byte
  (overlapping brownouts multiply)?
* :meth:`attempt_fails` — does *this particular transfer attempt*
  transiently fail (brownout ``failure_rate``, drawn deterministically)?

All pseudo-randomness comes from SHA-256 draws keyed by
``(seed, label, *parts)`` — no ``random`` module, no process state, so
the same ``(seed, schedule)`` replays byte-identically in any process
and in any evaluation order (the property the parallel sweep runner
relies on).

The engine also keeps per-server downtime counters that the transport
layer surfaces through instrumentation.
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Tuple

from repro.faults.schedule import (
    FaultSchedule,
    FaultWindow,
    combined_failure_rate,
)

_TWO_64 = float(2**64)


def uniform_draw(seed: int, *parts: object) -> float:
    """A deterministic uniform draw in ``[0, 1)`` keyed by its arguments.

    Hash-based rather than generator-based so a draw depends only on
    its key, never on how many draws happened before it — evaluation
    order and process boundaries cannot change the outcome.
    """
    key = ":".join(str(part) for part in (seed,) + parts)
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / _TWO_64


def _flap_is_up(window: FaultWindow, tick: int) -> bool:
    """Whether a flap window has its link up at ``tick``.

    Each cycle of ``period`` ticks starts up for ``ceil(duty * period)``
    ticks and is down for the remainder; a duty of 1 never drops.
    """
    phase = (tick - window.start) % window.period
    up_ticks = min(window.period, math.ceil(window.duty * window.period))
    return phase < up_ticks


class FaultEngine:
    """Evaluates a fault schedule at logical ticks, deterministically."""

    def __init__(self, schedule: FaultSchedule) -> None:
        self._schedule = schedule
        self._by_server: Dict[str, Tuple[FaultWindow, ...]] = {
            server: schedule.windows_for(server)
            for server in schedule.servers
        }
        # Per-server count of ticks observed down, for telemetry.  Only
        # ticks actually probed are counted — the engine is lazy.
        self._downtime: Dict[str, int] = {}
        self._last_down_tick: Dict[str, int] = {}

    @property
    def schedule(self) -> FaultSchedule:
        return self._schedule

    @property
    def seed(self) -> int:
        return self._schedule.seed

    @property
    def is_identity(self) -> bool:
        """True when the schedule injects nothing at any tick."""
        return self._schedule.is_empty

    # -- state queries ---------------------------------------------------

    def is_up(self, server: str, tick: int) -> bool:
        """Whether ``server`` is reachable at ``tick``."""
        up = True
        for window in self._by_server.get(server, ()):
            if not window.covers(tick):
                continue
            if window.kind == "outage":
                up = False
                break
            if window.kind == "flap" and not _flap_is_up(window, tick):
                up = False
                break
        if not up and self._last_down_tick.get(server) != tick:
            self._downtime[server] = self._downtime.get(server, 0) + 1
            self._last_down_tick[server] = tick
        return up

    def cost_multiplier(self, server: str, tick: int) -> float:
        """Byte-cost inflation at ``tick`` (overlapping brownouts multiply)."""
        multiplier = 1.0
        for window in self._by_server.get(server, ()):
            if window.covers(tick) and window.cost_multiplier > 1.0:
                multiplier *= window.cost_multiplier
        return multiplier

    def failure_rate(self, server: str, tick: int) -> float:
        """Per-attempt transient failure probability at ``tick``."""
        rates = [
            window.failure_rate
            for window in self._by_server.get(server, ())
            if window.covers(tick) and window.failure_rate > 0.0
        ]
        if not rates:
            return 0.0
        return combined_failure_rate(rates)

    def attempt_fails(
        self, server: str, tick: int, request_id: int, attempt: int
    ) -> bool:
        """Whether transfer ``attempt`` of ``request_id`` transiently fails.

        The draw is keyed by ``(seed, server, tick, request_id,
        attempt)`` so repeated evaluation — including re-evaluation in a
        worker process — always lands on the same side of the rate.
        """
        rate = self.failure_rate(server, tick)
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        draw = uniform_draw(
            self.seed, "attempt", server, tick, request_id, attempt
        )
        return draw < rate

    # -- telemetry -------------------------------------------------------

    def downtime(self, server: str) -> int:
        """Ticks this engine has observed ``server`` down so far."""
        return self._downtime.get(server, 0)

    def downtime_by_server(self) -> Dict[str, int]:
        """Copy of the per-server observed-downtime counters."""
        return dict(self._downtime)

    def __repr__(self) -> str:
        return (
            f"FaultEngine(seed={self.seed}, "
            f"windows={len(self._schedule.windows)})"
        )
