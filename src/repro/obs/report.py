"""``repro-report``: render one trace, or diff two runs as a CI gate.

Single-trace mode loads a JSONL decision trace (manifest + events) and
renders the run through the existing :mod:`repro.sim.reporting`
dashboards: manifest, WAN accounting summary, per-query WAN byte
distribution, decision tail, cumulative-cost chart.

Diff mode (``--diff BASE CANDIDATE``) replays the paper's accounting
argument across two runs: total WAN bytes, link-weighted cost, hit
rate, and the realized byte-yield hit rate.  Any metric that worsens
beyond ``--threshold`` percent is flagged, and the process exits
non-zero — usable directly as a CI regression gate::

    repro-report --diff baseline.jsonl candidate.jsonl --threshold 1.0

Flamegraph mode (``--flamegraph``) aggregates a *span* file (written
by :class:`repro.obs.spans.SpanWriter`) into the top-down stage tree
with inclusive/exclusive logical time and byte totals.

SLO mode (``--slo spec.json``) evaluates a declarative SLO spec
(:mod:`repro.obs.slo`) against the decision trace — and, with
``--spans``, against per-stage span latencies — and exits 1 when any
objective is violated or burning::

    repro-report run.jsonl --slo slo.json --spans run.spans.jsonl

Exit codes: 0 clean, 1 regressions/SLO failures found, 2 bad input.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.instrumentation import DecisionEvent
from repro.errors import ReproError
from repro.obs.manifest import RunManifest
from repro.obs.metrics import LogHistogram
from repro.obs.trace_io import read_trace
from repro.sim.reporting import (
    cost_series_chart,
    format_decision_trace,
    format_table,
)
from repro.sim.results import SimulationResult

#: Cap on reconstructed cumulative-series points (memory on long traces).
SERIES_POINTS = 512


@dataclass(frozen=True)
class RunMetrics:
    """The accounting quantities of one recorded run."""

    queries: int
    served: int
    loads: int
    evictions: int
    load_bytes: int
    bypass_bytes: int
    weighted_cost: float
    yield_bytes: int
    served_yield_bytes: int
    retries: int = 0
    retry_bytes: int = 0
    unavailable: int = 0

    @property
    def wan_bytes(self) -> int:
        return self.load_bytes + self.bypass_bytes + self.retry_bytes

    @property
    def hit_rate(self) -> float:
        return self.served / self.queries if self.queries else 0.0

    @property
    def availability(self) -> float:
        """Fraction of queries that got an answer (full or partial)."""
        if self.queries == 0:
            return 1.0
        return 1.0 - self.unavailable / self.queries

    @property
    def byte_yield_hit_rate(self) -> float:
        """Realized yield-weighted hit rate: what fraction of result
        bytes was produced without touching the WAN (the run-level
        analogue of the paper's BYHR objective)."""
        if self.yield_bytes == 0:
            return 0.0
        return self.served_yield_bytes / self.yield_bytes


def summarize_events(events: Sequence[DecisionEvent]) -> RunMetrics:
    """Fold a trace's events into the run's accounting quantities."""
    queries = len(events)
    served = sum(1 for e in events if e.served_from_cache)
    return RunMetrics(
        queries=queries,
        served=served,
        loads=sum(len(e.loads) for e in events),
        evictions=sum(len(e.evictions) for e in events),
        load_bytes=sum(e.load_bytes for e in events),
        bypass_bytes=sum(e.bypass_bytes for e in events),
        weighted_cost=sum(e.weighted_cost for e in events),
        yield_bytes=sum(e.yield_bytes for e in events),
        served_yield_bytes=sum(
            e.yield_bytes for e in events if e.served_from_cache
        ),
        retries=sum(e.retries for e in events),
        retry_bytes=sum(e.retry_bytes for e in events),
        unavailable=sum(
            1 for e in events if e.outcome == "unavailable"
        ),
    )


def result_from_trace(
    manifest: RunManifest, events: Sequence[DecisionEvent]
) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` view of a persisted trace,
    so the standard dashboards (charts, breakdown tables) apply."""
    result = SimulationResult(
        policy_name=manifest.policy,
        granularity=manifest.granularity,
        capacity_bytes=manifest.capacity_bytes,
    )
    stride = max(1, len(events) // SERIES_POINTS)
    result.series_stride = stride
    cumulative = 0.0
    for i, event in enumerate(events):
        result.charge_event(event)
        cumulative += event.wan_bytes
        if (i + 1) % stride == 0 or i == len(events) - 1:
            result.cumulative_bytes.append(cumulative)
    return result


def render_report(
    manifest: RunManifest,
    events: Sequence[DecisionEvent],
    limit: int = 15,
) -> str:
    """The single-trace dashboard."""
    metrics = summarize_events(events)
    sections: List[str] = [
        format_table(
            ["field", "value"],
            [[key, value] for key, value in manifest.describe().items()],
            title="run manifest",
        )
    ]
    sections.append(
        format_table(
            ["metric", "value"],
            [
                ["queries", metrics.queries],
                ["served from cache", metrics.served],
                ["hit rate", round(metrics.hit_rate, 4)],
                ["byte-yield hit rate",
                 round(metrics.byte_yield_hit_rate, 4)],
                ["object loads", metrics.loads],
                ["evictions", metrics.evictions],
                ["WAN load bytes", metrics.load_bytes],
                ["WAN bypass bytes", metrics.bypass_bytes],
                ["WAN retry bytes", metrics.retry_bytes],
                ["WAN total bytes", metrics.wan_bytes],
                ["weighted WAN cost", metrics.weighted_cost],
                ["result yield bytes", metrics.yield_bytes],
                ["retries", metrics.retries],
                ["availability", round(metrics.availability, 4)],
            ],
            title="run summary",
        )
    )
    if events:
        histogram = LogHistogram("query_wan_bytes")
        for event in events:
            histogram.observe(event.wan_bytes)
        sections.append(
            format_table(
                ["per-query WAN bytes", "queries"],
                [list(row) for row in histogram.rows()],
                title="WAN distribution (log2 buckets)",
            )
        )
        result = result_from_trace(manifest, events)
        sections.append(
            cost_series_chart(
                {manifest.policy: result},
                title="cumulative WAN bytes",
            )
        )
        sections.append(
            format_decision_trace(events, limit=limit)
        )
    else:
        sections.append("(trace holds no decision events)")
    return "\n\n".join(sections)


@dataclass(frozen=True)
class MetricDelta:
    """One compared metric between a baseline and a candidate run."""

    name: str
    baseline: float
    candidate: float
    higher_is_better: bool
    gated: bool

    @property
    def delta(self) -> float:
        return self.candidate - self.baseline

    def relative_regression(self) -> float:
        """How much worse the candidate is, as a fraction (>= 0)."""
        worsening = (
            self.baseline - self.candidate
            if self.higher_is_better
            else self.candidate - self.baseline
        )
        if worsening <= 0:
            return 0.0
        if self.baseline == 0:
            return float("inf")
        return worsening / abs(self.baseline)

    def is_regression(self, threshold_fraction: float) -> bool:
        return self.gated and (
            self.relative_regression() > threshold_fraction
        )


def diff_metrics(
    baseline: RunMetrics, candidate: RunMetrics
) -> List[MetricDelta]:
    """Per-metric comparison; gated rows drive the exit code."""
    return [
        MetricDelta(
            "wan_bytes", baseline.wan_bytes, candidate.wan_bytes,
            higher_is_better=False, gated=True,
        ),
        MetricDelta(
            "weighted_cost", baseline.weighted_cost,
            candidate.weighted_cost,
            higher_is_better=False, gated=True,
        ),
        MetricDelta(
            "hit_rate", baseline.hit_rate, candidate.hit_rate,
            higher_is_better=True, gated=True,
        ),
        MetricDelta(
            "byte_yield_hit_rate", baseline.byte_yield_hit_rate,
            candidate.byte_yield_hit_rate,
            higher_is_better=True, gated=True,
        ),
        MetricDelta(
            "load_bytes", baseline.load_bytes, candidate.load_bytes,
            higher_is_better=False, gated=False,
        ),
        MetricDelta(
            "bypass_bytes", baseline.bypass_bytes,
            candidate.bypass_bytes,
            higher_is_better=False, gated=False,
        ),
        MetricDelta(
            "availability", baseline.availability,
            candidate.availability,
            higher_is_better=True, gated=True,
        ),
        MetricDelta(
            "retry_bytes", float(baseline.retry_bytes),
            float(candidate.retry_bytes),
            higher_is_better=False, gated=False,
        ),
        MetricDelta(
            "retries", float(baseline.retries),
            float(candidate.retries),
            higher_is_better=False, gated=False,
        ),
        MetricDelta(
            "evictions", float(baseline.evictions),
            float(candidate.evictions),
            higher_is_better=False, gated=False,
        ),
        MetricDelta(
            "queries", float(baseline.queries),
            float(candidate.queries),
            higher_is_better=True, gated=False,
        ),
    ]


def render_diff(
    base_manifest: RunManifest,
    candidate_manifest: RunManifest,
    deltas: Sequence[MetricDelta],
    threshold_fraction: float,
) -> Tuple[str, bool]:
    """(report text, any_regression) for two compared runs."""
    sections: List[str] = []
    identity_rows = [
        [field, getattr(base_manifest, field),
         getattr(candidate_manifest, field)]
        for field in (
            "workload", "policy", "granularity", "capacity_bytes",
            "seed", "source", "package_version",
        )
    ]
    sections.append(
        format_table(
            ["field", "baseline", "candidate"],
            identity_rows,
            title="compared runs",
        )
    )
    mismatched = [
        row[0]
        for row in identity_rows
        if row[0] not in ("policy", "package_version") and row[1] != row[2]
    ]
    if mismatched:
        sections.append(
            "note: runs differ in "
            + ", ".join(str(name) for name in mismatched)
            + " — deltas compare different experiments"
        )

    any_regression = False
    rows: List[List[object]] = []
    for delta in deltas:
        regressed = delta.is_regression(threshold_fraction)
        any_regression = any_regression or regressed
        if regressed:
            status = "REGRESSION"
        elif delta.relative_regression() > 0:
            status = "worse (within threshold)"
        elif delta.delta == 0:
            status = "unchanged"
        else:
            status = "improved"
        rows.append(
            [
                delta.name,
                delta.baseline,
                delta.candidate,
                delta.delta,
                (
                    f"{delta.relative_regression() * 100:.2f}%"
                    if delta.relative_regression() != float("inf")
                    else "inf"
                ),
                status if delta.gated else f"({status})",
            ]
        )
    sections.append(
        format_table(
            ["metric", "baseline", "candidate", "delta",
             "worse by", "status"],
            rows,
            title=(
                f"regression gate (threshold "
                f"{threshold_fraction * 100:.2f}%; "
                f"ungated rows in parentheses)"
            ),
        )
    )
    verdict = (
        "REGRESSIONS FOUND" if any_regression else "no regressions"
    )
    sections.append(f"verdict: {verdict}")
    return "\n\n".join(sections), any_regression


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-report",
        description=(
            "Render a recorded decision trace, or diff two traces and "
            "gate on WAN/hit-rate regressions."
        ),
    )
    parser.add_argument(
        "traces", nargs="+",
        help="one trace to report on, or two with --diff",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="compare two traces: BASELINE CANDIDATE",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.0, metavar="PCT",
        help=(
            "allowed per-metric worsening in percent before a gated "
            "metric counts as a regression (default 0)"
        ),
    )
    parser.add_argument(
        "--limit", type=int, default=15,
        help="decision-trace tail length in single-trace mode",
    )
    parser.add_argument(
        "--flamegraph", action="store_true",
        help=(
            "render the top-down stage flamegraph of a span file "
            "(pass the .spans.jsonl written by the tracer)"
        ),
    )
    parser.add_argument(
        "--slo", metavar="SPEC",
        help=(
            "evaluate a JSON SLO spec against the trace and exit 1 on "
            "any violated or burning objective"
        ),
    )
    parser.add_argument(
        "--spans", metavar="FILE",
        help=(
            "span file feeding stage-latency objectives in --slo mode"
        ),
    )
    return parser


def run_flamegraph(span_path: str) -> int:
    """``--flamegraph``: aggregate a span file into the stage tree."""
    from repro.obs.spans import SpanReader, aggregate_flame, render_flamegraph

    reader = SpanReader(span_path)
    spans = reader.read_all()
    if reader.truncated:
        print(
            f"note: {span_path} ends in a torn line (crash mid-write); "
            f"reporting the complete prefix",
            file=sys.stderr,
        )
    if not spans:
        print(f"{span_path}: span file holds no spans", file=sys.stderr)
        return 2
    header = reader.header
    print(
        f"span trace {header.get('trace_id', '?')} "
        f"(seed {header.get('seed', '?')}, "
        f"run {header.get('run_label', '?')}): {len(spans)} spans"
    )
    print()
    print(render_flamegraph(aggregate_flame(spans)))
    return 0


def run_slo(
    trace_path: str, spec_path: str, span_path: Optional[str]
) -> int:
    """``--slo``: gate a recorded run on a declarative SLO spec."""
    from repro.obs.slo import SLOSpec, evaluate_sources, render_slo_report
    from repro.obs.spans import SpanReader

    spec = SLOSpec.load(spec_path)
    _, events = read_trace(trace_path)
    spans = SpanReader(span_path).read_all() if span_path else ()
    report = evaluate_sources(spec, events=events, spans=spans)
    print(render_slo_report(report))
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.threshold < 0:
        print("--threshold must be >= 0", file=sys.stderr)
        return 2
    modes = sum(
        1 for on in (args.diff, args.flamegraph, bool(args.slo)) if on
    )
    if modes > 1:
        print(
            "--diff, --flamegraph, and --slo are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.diff and len(args.traces) != 2:
        print(
            "--diff needs exactly two traces: BASELINE CANDIDATE",
            file=sys.stderr,
        )
        return 2
    if not args.diff and len(args.traces) != 1:
        print(
            "pass one trace, or two with --diff", file=sys.stderr
        )
        return 2

    try:
        if args.flamegraph:
            return run_flamegraph(args.traces[0])
        if args.slo:
            return run_slo(args.traces[0], args.slo, args.spans)
        if args.diff:
            base_manifest, base_events = read_trace(args.traces[0])
            cand_manifest, cand_events = read_trace(args.traces[1])
            text, any_regression = render_diff(
                base_manifest,
                cand_manifest,
                diff_metrics(
                    summarize_events(base_events),
                    summarize_events(cand_events),
                ),
                args.threshold / 100.0,
            )
            print(text)
            return 1 if any_regression else 0
        manifest, events = read_trace(args.traces[0])
        print(render_report(manifest, events, limit=args.limit))
        return 0
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error for a
        # terminal-rendering tool. Detach stdout so the interpreter's
        # shutdown flush does not raise a second time.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
