"""Metrics registry: counters, gauges, windowed gauges, log histograms.

The registry is the live-serving complement of the decision trace: where
:mod:`repro.obs.trace_io` persists every event for offline accounting,
the registry folds events into fixed-size aggregates that a scraper can
poll — Prometheus text exposition via :meth:`MetricsRegistry.render_prometheus`,
optionally over HTTP via :mod:`repro.obs.httpd`.

Everything here is deterministic given the observation sequence: windows
are sized in *observations* (the paper's notion of time is the query
index), histograms use fixed log2 bucketing, and exposition output is
sorted — so two identical runs render identical metrics pages.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Callable,
    Deque,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.core.instrumentation import DecisionEvent, Probe
from repro.errors import ConfigurationError

#: Default observation window for :class:`WindowedGauge`.
DEFAULT_WINDOW = 256

Number = Union[int, float]


def format_sample_value(value: float) -> str:
    """Render a sample at full precision for text exposition.

    ``%g`` keeps only six significant digits, which rounds any counter
    past ~1e6 on the scrape page — enough to break the exact
    tenant-sum == aggregate conservation contract that
    ``repro.service.loadgen --check-conservation`` verifies against
    ``/metrics``.  Exact integers render bare; everything else uses
    ``repr`` (shortest string that round-trips the float).
    """
    if value != value or value in (float("inf"), float("-inf")):
        return f"{value:g}"
    if value == int(value) and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


def sanitize_metric_name(name: str) -> str:
    """Map dotted/stage names onto the Prometheus name grammar."""
    cleaned = []
    for ch in name:
        if ch.isalnum() or ch == "_":
            cleaned.append(ch)
        else:
            cleaned.append("_")
    text = "".join(cleaned)
    if not text or text[0].isdigit():
        text = "_" + text
    return text


class Metric:
    """Base: a named, typed, documented time series."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str = "") -> None:
        self.name = name
        self.help_text = help_text

    def expose(self) -> List[Tuple[str, float]]:
        """(exposed name, value) samples for text exposition."""
        raise NotImplementedError

    def snapshot_value(self) -> object:
        """JSON-safe state for :meth:`MetricsRegistry.snapshot`."""
        raise NotImplementedError

    def merge_value(self, value: object) -> None:
        """Fold a :meth:`snapshot_value` payload into this metric."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self.value = 0.0

    def inc(self, amount: Number = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc {amount})"
            )
        self.value += float(amount)

    def expose(self) -> List[Tuple[str, float]]:
        return [(self.name, self.value)]

    def snapshot_value(self) -> object:
        return self.value

    def merge_value(self, value: object) -> None:
        self.value += float(value)  # type: ignore[arg-type]


class Gauge(Metric):
    """A value that goes up and down; merge keeps the maximum."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        self.value = 0.0

    def set(self, value: Number) -> None:
        self.value = float(value)

    def expose(self) -> List[Tuple[str, float]]:
        return [(self.name, self.value)]

    def snapshot_value(self) -> object:
        return self.value

    def merge_value(self, value: object) -> None:
        # Order-independent (deterministic across merge orders): peak.
        self.value = max(self.value, float(value))  # type: ignore[arg-type]


class WindowedGauge(Metric):
    """A gauge retaining its last ``window`` observations.

    Exposes the latest value plus min/mean/max over the window — a
    fixed-memory timeline (e.g. cache occupancy over the last N
    decisions).  Windows count observations, not seconds, so replays
    stay deterministic.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        window: int = DEFAULT_WINDOW,
    ) -> None:
        super().__init__(name, help_text)
        if window < 1:
            raise ConfigurationError(
                f"windowed gauge {name} needs window >= 1, got {window}"
            )
        self.window = window
        self.values: Deque[float] = deque(maxlen=window)

    def set(self, value: Number) -> None:
        self.values.append(float(value))

    @property
    def last(self) -> float:
        return self.values[-1] if self.values else 0.0

    def expose(self) -> List[Tuple[str, float]]:
        if not self.values:
            return [(self.name, 0.0)]
        window = list(self.values)
        return [
            (self.name, window[-1]),
            (f"{self.name}_window_min", min(window)),
            (f"{self.name}_window_mean", sum(window) / len(window)),
            (f"{self.name}_window_max", max(window)),
        ]

    def snapshot_value(self) -> object:
        return list(self.values)

    def merge_value(self, value: object) -> None:
        if isinstance(value, Iterable):
            for item in value:
                self.values.append(float(item))  # type: ignore[arg-type]


class LogHistogram(Metric):
    """Histogram over power-of-two buckets.

    Byte and cost distributions in this system span many orders of
    magnitude (a point query yields hundreds of bytes; a table load
    moves gigabytes), so linear buckets are useless: log2 bucketing
    gives constant relative resolution with ~40 buckets covering
    1 byte .. 1 TB.  Values ``<= 1`` land in the first bucket.
    """

    kind = "histogram"

    def __init__(self, name: str, help_text: str = "") -> None:
        super().__init__(name, help_text)
        #: exponent -> count; bucket upper bound is ``2 ** exponent``.
        self.buckets: Dict[int, int] = {}
        self.total = 0.0
        self.count = 0

    @staticmethod
    def bucket_for(value: float) -> int:
        exponent = 0
        bound = 1.0
        while bound < value:
            bound *= 2.0
            exponent += 1
        return exponent

    def observe(self, value: Number) -> None:
        value = float(value)
        exponent = self.bucket_for(max(value, 0.0))
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1
        self.total += value
        self.count += 1

    def expose(self) -> List[Tuple[str, float]]:
        samples: List[Tuple[str, float]] = []
        cumulative = 0
        for exponent in sorted(self.buckets):
            cumulative += self.buckets[exponent]
            samples.append(
                (
                    f'{self.name}_bucket{{le="{float(2 ** exponent):g}"}}',
                    float(cumulative),
                )
            )
        samples.append(
            (f'{self.name}_bucket{{le="+Inf"}}', float(self.count))
        )
        samples.append((f"{self.name}_sum", self.total))
        samples.append((f"{self.name}_count", float(self.count)))
        return samples

    def rows(self) -> List[Tuple[str, int]]:
        """(bucket label, count) pairs for plain-text reporting."""
        return [
            (f"<= {float(2 ** exponent):g}", self.buckets[exponent])
            for exponent in sorted(self.buckets)
        ]

    def snapshot_value(self) -> object:
        return {
            "buckets": {
                str(exponent): count
                for exponent, count in sorted(self.buckets.items())
            },
            "sum": self.total,
            "count": self.count,
        }

    def merge_value(self, value: object) -> None:
        if not isinstance(value, Mapping):
            return
        buckets = value.get("buckets", {})
        if isinstance(buckets, Mapping):
            for exponent, count in buckets.items():
                key = int(exponent)  # type: ignore[call-overload]
                self.buckets[key] = (
                    self.buckets.get(key, 0) + int(count)  # type: ignore[call-overload]
                )
        self.total += float(value.get("sum", 0.0))  # type: ignore[arg-type]
        self.count += int(value.get("count", 0))  # type: ignore[call-overload]


class MetricsRegistry:
    """Create-or-get metrics by name; render, snapshot, and merge them.

    All accessors are get-or-create and type-checked: asking for an
    existing name with a different metric kind raises, so two layers
    wiring the same registry cannot silently split a series.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(
        self, name: str, factory: Callable[[], Metric]
    ) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            wanted = factory()
            if type(existing) is not type(wanted):
                raise ConfigurationError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not "
                    f"{type(wanted).__name__}"
                )
            return existing
        created = factory()
        self._metrics[name] = created
        return created

    def counter(self, name: str, help_text: str = "") -> Counter:
        metric = self._get_or_create(
            name, lambda: Counter(name, help_text)
        )
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        metric = self._get_or_create(name, lambda: Gauge(name, help_text))
        assert isinstance(metric, Gauge)
        return metric

    def windowed_gauge(
        self,
        name: str,
        help_text: str = "",
        window: int = DEFAULT_WINDOW,
    ) -> WindowedGauge:
        metric = self._get_or_create(
            name, lambda: WindowedGauge(name, help_text, window)
        )
        assert isinstance(metric, WindowedGauge)
        return metric

    def histogram(self, name: str, help_text: str = "") -> LogHistogram:
        metric = self._get_or_create(
            name, lambda: LogHistogram(name, help_text)
        )
        assert isinstance(metric, LogHistogram)
        return metric

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def __len__(self) -> int:
        return len(self._metrics)

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4 (sorted, stable).

        Registry keys may carry a label suffix (``name{tenant="a"}``) —
        that is how per-tenant series share one metric family.  HELP and
        TYPE are emitted once per *base* name, so a labeled family
        renders as one header followed by its labeled samples.
        """
        lines: List[str] = []
        seen_headers = set()
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            base_name, _, _ = name.partition("{")
            exposed = sanitize_metric_name(base_name)
            if exposed not in seen_headers:
                seen_headers.add(exposed)
                if metric.help_text:
                    lines.append(f"# HELP {exposed} {metric.help_text}")
                lines.append(f"# TYPE {exposed} {metric.kind}")
            for sample_name, value in metric.expose():
                base, brace, labels = sample_name.partition("{")
                rendered = sanitize_metric_name(base) + brace + labels
                lines.append(
                    f"{rendered} {format_sample_value(value)}"
                )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe state of every metric, for merge/persistence."""
        return {
            name: {
                "kind": metric.kind,
                "type": type(metric).__name__,
                "help": metric.help_text,
                "value": metric.snapshot_value(),
            }
            for name, metric in sorted(self._metrics.items())
        }

    def merge_snapshot(self, snapshot: Mapping[str, object]) -> None:
        """Fold a :meth:`snapshot` payload in (counters/histograms add,
        plain gauges keep their peak, windows extend)."""
        factories: Dict[str, Callable[[str, str], Metric]] = {
            "Counter": Counter,
            "Gauge": Gauge,
            "WindowedGauge": WindowedGauge,
            "LogHistogram": LogHistogram,
        }
        for name in sorted(snapshot):
            entry = snapshot[name]
            if not isinstance(entry, Mapping):
                continue
            type_name = str(entry.get("type", ""))
            factory = factories.get(type_name)
            if factory is None:
                continue
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory(name, str(entry.get("help", "")))
                self._metrics[name] = metric
            metric.merge_value(entry.get("value"))


class MetricsProbe(Probe):
    """Feed a :class:`MetricsRegistry` from the instrumentation seam.

    Attach to an :class:`~repro.core.instrumentation.Instrumentation`
    and every decision updates the paper's accounting quantities:
    hit/bypass counters, WAN byte/cost totals, the per-query WAN and
    yield distributions (log2 histograms), eviction churn, and — when
    an ``occupancy`` callable is supplied (the proxy passes its cache
    store) — a windowed cache-occupancy timeline.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        occupancy: Optional[Callable[[], Number]] = None,
        prefix: str = "repro",
        window: int = DEFAULT_WINDOW,
    ) -> None:
        self.registry = registry
        self.occupancy = occupancy
        p = prefix
        self._decisions = registry.counter(
            f"{p}_decisions_total", "Queries decided"
        )
        self._served = registry.counter(
            f"{p}_decisions_served_total", "Queries served from cache"
        )
        self._bypassed = registry.counter(
            f"{p}_decisions_bypassed_total", "Queries bypassed"
        )
        self._loads = registry.counter(
            f"{p}_loads_total", "Objects loaded into the cache"
        )
        self._evictions = registry.counter(
            f"{p}_evictions_total", "Objects evicted (churn)"
        )
        self._load_bytes = registry.counter(
            f"{p}_wan_load_bytes_total", "WAN bytes spent on loads"
        )
        self._bypass_bytes = registry.counter(
            f"{p}_wan_bypass_bytes_total", "WAN bytes spent bypassing"
        )
        self._weighted_cost = registry.counter(
            f"{p}_wan_weighted_cost_total", "Link-weighted WAN cost"
        )
        self._hit_rate = registry.gauge(
            f"{p}_hit_rate", "Served fraction of decided queries"
        )
        self._wan_histogram = registry.histogram(
            f"{p}_query_wan_bytes", "Per-query WAN bytes (log2 buckets)"
        )
        self._yield_histogram = registry.histogram(
            f"{p}_query_yield_bytes",
            "Per-query result yield (log2 buckets)",
        )
        self._occupancy_gauge = registry.windowed_gauge(
            f"{p}_cache_occupancy_bytes",
            "Cache bytes in use (windowed timeline)",
            window=window,
        )
        self._retries = registry.counter(
            f"{p}_retries_total",
            "Transfer attempts beyond the first (fault retries)",
        )
        self._retry_bytes = registry.counter(
            f"{p}_wan_retry_bytes_total",
            "WAN bytes wasted by failed attempts and discarded partials",
        )
        self._stage_prefix = f"{p}_stage"
        self._prefix = p

    def on_decision(self, event: DecisionEvent) -> None:
        self._decisions.inc()
        if event.served_from_cache:
            self._served.inc()
        else:
            self._bypassed.inc()
        if event.loads:
            self._loads.inc(len(event.loads))
        if event.evictions:
            self._evictions.inc(len(event.evictions))
        self._load_bytes.inc(event.load_bytes)
        self._bypass_bytes.inc(event.bypass_bytes)
        self._weighted_cost.inc(event.weighted_cost)
        self._wan_histogram.observe(event.wan_bytes)
        if event.yield_bytes:
            self._yield_histogram.observe(event.yield_bytes)
        if event.retries:
            self._retries.inc(event.retries)
        if event.retry_bytes:
            self._retry_bytes.inc(event.retry_bytes)
        if event.outcome:
            self.registry.counter(
                f"{self._prefix}_outcome_"
                f"{sanitize_metric_name(event.outcome)}_total",
                f"Queries resolved as {event.outcome}",
            ).inc()
        self._attribute_tenant(event)
        if event.shard:
            self._attribute_shard(event)
        decided = self._decisions.value
        if decided:
            self._hit_rate.set(self._served.value / decided)
        if self.occupancy is not None:
            self._occupancy_gauge.set(float(self.occupancy()))

    def _attribute_tenant(self, event: DecisionEvent) -> None:
        """Charge the decision to its tenant via labeled counters.

        Untagged traffic gets its own ``tenant="untagged"`` series, so
        summing any tenant family over its labels reproduces the
        aggregate counter exactly — the attribution is a partition, not
        a sample.  Only :meth:`on_decision` writes these; the
        ``tenant.*`` instrumentation counters are deliberately *not*
        forwarded by :meth:`on_counter`, which would double-count.
        """
        tenant = event.tenant or "untagged"
        label = f'{{tenant="{tenant}"}}'
        p = self._prefix
        self.registry.counter(
            f"{p}_tenant_decisions_total{label}",
            "Queries decided, partitioned by tenant",
        ).inc()
        if event.served_from_cache:
            self.registry.counter(
                f"{p}_tenant_served_total{label}",
                "Queries served from cache, partitioned by tenant",
            ).inc()
        self.registry.counter(
            f"{p}_tenant_wan_bytes_total{label}",
            "WAN bytes (loads + bypass + retry waste) per tenant",
        ).inc(event.wan_bytes)
        self.registry.counter(
            f"{p}_tenant_weighted_cost_total{label}",
            "Link-weighted WAN cost per tenant",
        ).inc(event.weighted_cost)

    def _attribute_shard(self, event: DecisionEvent) -> None:
        """Charge the decision to its fleet shard via labeled series.

        Mirrors :meth:`_attribute_tenant`: only tagged (cooperative
        fleet) decisions carry a shard, so independent runs add no
        series, and summing a shard family over its labels reproduces
        the aggregate exactly.  Peer bytes get their own family — they
        ride the regional interconnect and must stay distinguishable
        from WAN traffic on the scrape page.
        """
        label = f'{{shard="{event.shard}"}}'
        p = self._prefix
        self.registry.counter(
            f"{p}_shard_decisions_total{label}",
            "Queries decided, partitioned by fleet shard",
        ).inc()
        if event.served_from_cache:
            self.registry.counter(
                f"{p}_shard_served_total{label}",
                "Queries served from cache, partitioned by fleet shard",
            ).inc()
        self.registry.counter(
            f"{p}_shard_wan_bytes_total{label}",
            "WAN bytes (loads + bypass + retry waste) per fleet shard",
        ).inc(event.wan_bytes)
        if event.peer_bytes:
            self.registry.counter(
                f"{p}_shard_peer_bytes_total{label}",
                "Bytes received from sibling shards over peer links",
            ).inc(event.peer_bytes)

    def on_counter(self, name: str, value: float) -> None:
        """Mirror fault-layer counters into the registry.

        The transport/breaker/fault counters flow through the
        instrumentation seam (``transport.*``, ``breaker.*``,
        ``faults.*``, ``mediator.retries``/``retry_bytes``); everything
        else already arrives aggregated via :meth:`on_decision`, so
        only the resilience namespaces are forwarded — the scrape page
        shows retransmissions and breaker churn without double-counting
        decision traffic.
        """
        if not name.startswith(("transport.", "breaker.", "faults.")):
            return
        if value < 0:
            return
        self.registry.counter(
            f"{self._prefix}_{sanitize_metric_name(name)}_total",
            f"Fault-layer counter {name}",
        ).inc(value)

    def on_stage(self, name: str, seconds: float) -> None:
        stage = sanitize_metric_name(name)
        self.registry.counter(
            f"{self._stage_prefix}_{stage}_seconds_total",
            f"Cumulative seconds in stage {name}",
        ).inc(seconds)
        self.registry.counter(
            f"{self._stage_prefix}_{stage}_calls_total",
            f"Invocations of stage {name}",
        ).inc()
