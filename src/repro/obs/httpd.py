"""Stdlib-only HTTP exposition of a :class:`MetricsRegistry`.

A tiny threaded server with three routes:

* ``/metrics`` — Prometheus text exposition of the registry;
* ``/healthz`` — liveness probe (``ok``);
* ``/slo`` — current :class:`~repro.obs.slo.SLOEngine` evaluation as
  JSON (404 unless the server was built with an engine).

No third-party dependencies: ``http.server`` from the standard library,
one daemon thread, ephemeral port by default (``port=0``) so tests and
collocated proxies never collide.  Attach to a live proxy with
:meth:`repro.core.proxy.BypassYieldProxy.serve_metrics`.

Every response declares an explicit charset and ``Connection: close``
(each scrape is one short-lived exchange — keep-alive would pin handler
threads on clients that forget to hang up), and unknown paths get 404.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING, Optional, Type

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.obs.slo import SLOEngine

#: Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Plain-text content type with explicit charset (``/healthz``).
TEXT_CONTENT_TYPE = "text/plain; charset=utf-8"

#: JSON content type with explicit charset (``/slo``).
JSON_CONTENT_TYPE = "application/json; charset=utf-8"


def _make_handler(
    registry: MetricsRegistry,
    slo_engine: "Optional[SLOEngine]" = None,
) -> Type[BaseHTTPRequestHandler]:
    class MetricsHandler(BaseHTTPRequestHandler):
        def _respond(
            self, status: int, content_type: str, body: bytes
        ) -> None:
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("Connection", "close")
            self.end_headers()
            self.wfile.write(body)

        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            route = self.path.split("?", 1)[0]
            if route == "/metrics":
                body = registry.render_prometheus().encode("utf-8")
                self._respond(200, CONTENT_TYPE, body)
            elif route == "/healthz":
                self._respond(200, TEXT_CONTENT_TYPE, b"ok\n")
            elif route == "/slo" and slo_engine is not None:
                report = slo_engine.evaluate()
                body = (
                    json.dumps(report.to_json(), sort_keys=True) + "\n"
                ).encode("utf-8")
                self._respond(200, JSON_CONTENT_TYPE, body)
            else:
                self.send_error(404, "unknown path (try /metrics)")

        def log_message(self, format: str, *args: object) -> None:
            """Silence per-request stderr logging."""

    return MetricsHandler


class MetricsServer:
    """Serve one registry over HTTP until closed.

    Args:
        registry: The metrics to expose.
        host: Bind address (loopback by default — expose deliberately).
        port: TCP port; 0 picks a free ephemeral port (see ``.port``).
        slo_engine: Optional :class:`~repro.obs.slo.SLOEngine`; when
            given, ``/slo`` serves its current evaluation as JSON.

    Usable as a context manager; the background thread is a daemon so a
    forgotten server never blocks interpreter exit.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        slo_engine: "Optional[SLOEngine]" = None,
    ) -> None:
        self.registry = registry
        self.slo_engine = slo_engine
        self._server = ThreadingHTTPServer(
            (host, port), _make_handler(registry, slo_engine)
        )
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._closed = False

    @property
    def host(self) -> str:
        return str(self._server.server_address[0])

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        """Base URL (no path) — append ``/metrics`` or ``/healthz``."""
        return f"http://{self.host}:{self.port}"

    @property
    def metrics_url(self) -> str:
        """The scrape endpoint."""
        return f"{self.url}/metrics"

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (terminal — cannot restart)."""
        return self._closed

    def start(self) -> "MetricsServer":
        """Begin serving in a background daemon thread (idempotent).

        Starting an already-closed server is a no-op returning ``self``
        — the socket is gone, so there is nothing safe to resume; check
        :attr:`closed` if liveness matters.
        """
        with self._lock:
            if self._closed:
                return self
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._server.serve_forever,
                    name="repro-metrics",
                    daemon=True,
                )
                self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket.

        Idempotent and thread-safe: the first caller through the lock
        performs the shutdown, every later (or concurrent) call — and a
        close before :meth:`start` ever ran — is a no-op.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._thread = None
        if thread is not None:
            self._server.shutdown()
            thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
