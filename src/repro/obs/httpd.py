"""Stdlib-only HTTP exposition of a :class:`MetricsRegistry`.

A tiny threaded server with two routes:

* ``/metrics`` — Prometheus text exposition of the registry;
* ``/healthz`` — liveness probe (``ok``).

No third-party dependencies: ``http.server`` from the standard library,
one daemon thread, ephemeral port by default (``port=0``) so tests and
collocated proxies never collide.  Attach to a live proxy with
:meth:`repro.core.proxy.BypassYieldProxy.serve_metrics`.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Type

from repro.obs.metrics import MetricsRegistry

#: Prometheus text exposition content type.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _make_handler(
    registry: MetricsRegistry,
) -> Type[BaseHTTPRequestHandler]:
    class MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            if self.path.split("?", 1)[0] == "/metrics":
                body = registry.render_prometheus().encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            elif self.path.split("?", 1)[0] == "/healthz":
                body = b"ok\n"
                self.send_response(200)
                self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
            else:
                self.send_error(404, "unknown path (try /metrics)")

        def log_message(self, format: str, *args: object) -> None:
            """Silence per-request stderr logging."""

    return MetricsHandler


class MetricsServer:
    """Serve one registry over HTTP until closed.

    Args:
        registry: The metrics to expose.
        host: Bind address (loopback by default — expose deliberately).
        port: TCP port; 0 picks a free ephemeral port (see ``.port``).

    Usable as a context manager; the background thread is a daemon so a
    forgotten server never blocks interpreter exit.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry
        self._server = ThreadingHTTPServer(
            (host, port), _make_handler(registry)
        )
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._closed = False

    @property
    def host(self) -> str:
        return str(self._server.server_address[0])

    @property
    def port(self) -> int:
        return int(self._server.server_address[1])

    @property
    def url(self) -> str:
        """Base URL (no path) — append ``/metrics`` or ``/healthz``."""
        return f"http://{self.host}:{self.port}"

    @property
    def metrics_url(self) -> str:
        """The scrape endpoint."""
        return f"{self.url}/metrics"

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (terminal — cannot restart)."""
        return self._closed

    def start(self) -> "MetricsServer":
        """Begin serving in a background daemon thread (idempotent).

        Starting an already-closed server is a no-op returning ``self``
        — the socket is gone, so there is nothing safe to resume; check
        :attr:`closed` if liveness matters.
        """
        with self._lock:
            if self._closed:
                return self
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._server.serve_forever,
                    name="repro-metrics",
                    daemon=True,
                )
                self._thread.start()
        return self

    def close(self) -> None:
        """Stop serving and release the socket.

        Idempotent and thread-safe: the first caller through the lock
        performs the shutdown, every later (or concurrent) call — and a
        close before :meth:`start` ever ran — is a no-op.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._thread = None
        if thread is not None:
            self._server.shutdown()
            thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()
