"""Hierarchical span tracing for the decision path.

Where :mod:`repro.obs.trace_io` records *what* was decided (one
:class:`~repro.core.instrumentation.DecisionEvent` per query) and
:mod:`repro.obs.metrics` folds decisions into scrapeable aggregates,
this module records *how* each decision happened: a tree of spans per
query — decide, account, per-load transport attempts, bypass shipping,
plan-cache lookups, SQL execution — each carrying its stage name, its
parent, the bytes it moved, and the tenant that caused it.

Determinism contract
--------------------

Span *files* are byte-identical across same-seed runs.  Three rules
make that true:

* **IDs are keyed hashes**, not random: :func:`span_id_for` derives a
  span id from ``(seed, query index, stage, start tick)`` through
  SHA-256, the same construction as
  :func:`repro.faults.engine.uniform_draw` — no ``uuid``, no module
  RNG, no process state.
* **File time is logical.**  Every span start/finish advances a logical
  tick counter, so recorded ``start``/``end`` ticks depend only on the
  sequence of traced operations, never on the wall clock.  One tick is
  rendered as one microsecond in the Chrome/Perfetto export.
* **Wall-clock durations never reach the file.**  The tracer *also*
  measures real elapsed seconds per span (for the latency histograms in
  the metrics registry), but that measurement rides on the in-memory
  span only; :meth:`Span.to_json` deliberately omits it.

The disabled path costs nothing: drivers hold ``tracer=None`` (or an
:class:`NullTracer`, which pipelines normalize to ``None``) and pay one
``is None`` test per traced site — the hotpath benchmark gates this at
<= 2% overhead, and the golden-equivalence suite pins decisions and WAN
totals byte-identical with tracing on or off.
"""

# repro-lint: allow-file[RPR002] wall-clock reads here are observability
# measurements that never feed replay state or the span file.

from __future__ import annotations

import hashlib
import json
import threading
import time
from pathlib import Path
from types import TracebackType
from typing import (
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Type,
    Union,
)

from repro.errors import ConfigurationError

#: Version tag carried by span-file headers.
SPAN_SCHEMA = 1

#: Stage names used by the built-in instrumentation points.  Callers may
#: emit any stage name; these are the ones the decision path produces.
STAGE_QUERY = "query"
STAGE_DECIDE = "decide"
STAGE_ACCOUNT = "account"
STAGE_LOAD = "load"
STAGE_BYPASS = "bypass"
STAGE_ATTEMPT = "transport.attempt"
STAGE_PLAN = "plan"
STAGE_EXECUTE = "execute"


def span_id_for(seed: int, *parts: object) -> str:
    """A deterministic 16-hex-digit span id keyed by its arguments.

    Hash-based rather than generator-based (the ``uniform_draw``
    construction): the id depends only on its key, never on process
    state or allocation order, so same-seed runs mint identical ids.
    """
    key = ":".join(str(part) for part in (seed,) + parts)
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]


class Span:
    """One finished span: a named interval in the decision path.

    Attributes:
        trace_id: Run-level correlation id (same for every span of one
            traced run).
        span_id: This span's deterministic id.
        parent_id: Enclosing span's id ("" for roots).
        name: Stage name (``"query"``, ``"decide"``, ``"load"``, ...).
        index: Query index the span belongs to (-1 when outside any
            query, e.g. preparation-time planning).
        tenant: Tenant that caused the work ("" when untagged).
        start: Logical start tick.
        end: Logical end tick.
        bytes_moved: WAN bytes this span moved (0 for pure-CPU stages).
        attrs: Sorted (key, value) attribute pairs.
        wall_seconds: Measured wall-clock duration — in-memory only,
            never serialized (same-seed span files must be
            byte-identical).
    """

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "index",
        "tenant",
        "start",
        "end",
        "bytes_moved",
        "attrs",
        "wall_seconds",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: str,
        name: str,
        index: int,
        tenant: str,
        start: int,
        end: int,
        bytes_moved: int = 0,
        attrs: Tuple[Tuple[str, object], ...] = (),
        wall_seconds: Optional[float] = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.index = index
        self.tenant = tenant
        self.start = start
        self.end = end
        self.bytes_moved = bytes_moved
        self.attrs = attrs
        self.wall_seconds = wall_seconds

    @property
    def duration(self) -> int:
        """Logical duration in ticks."""
        return self.end - self.start

    def to_json(self) -> Dict[str, object]:
        """JSON-safe dict that :meth:`from_json` restores exactly.

        ``wall_seconds`` is deliberately omitted: the file format is
        part of the byte-identical determinism contract.
        """
        payload: Dict[str, object] = {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "index": self.index,
            "tenant": self.tenant,
            "start": self.start,
            "end": self.end,
            "bytes": self.bytes_moved,
        }
        if self.attrs:
            payload["attrs"] = {key: value for key, value in self.attrs}
        return payload

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "Span":
        attrs = data.get("attrs", {})
        if not isinstance(attrs, Mapping):
            raise ValueError("span attrs must be an object")
        return cls(
            trace_id=str(data["trace_id"]),
            span_id=str(data["span_id"]),
            parent_id=str(data.get("parent_id", "")),
            name=str(data["name"]),
            index=int(data.get("index", -1)),  # type: ignore[call-overload]
            tenant=str(data.get("tenant", "")),
            start=int(data["start"]),  # type: ignore[call-overload]
            end=int(data["end"]),  # type: ignore[call-overload]
            bytes_moved=int(data.get("bytes", 0)),  # type: ignore[call-overload]
            attrs=tuple(sorted(attrs.items())),
        )

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, q{self.index}, "
            f"[{self.start},{self.end}], bytes={self.bytes_moved})"
        )


class ActiveSpan:
    """A started-but-unfinished span handle returned by
    :meth:`SpanTracer.start`.

    Mutable on purpose: the traced code attaches bytes and attributes
    as it learns them, then :meth:`SpanTracer.finish` freezes the
    handle into a :class:`Span` and dispatches it to the sinks.
    """

    __slots__ = (
        "name", "index", "tenant", "parent_id", "span_id",
        "start", "bytes_moved", "attrs", "_wall_start",
    )

    def __init__(
        self,
        name: str,
        index: int,
        tenant: str,
        parent_id: str,
        span_id: str,
        start: int,
        wall_start: Optional[float],
    ) -> None:
        self.name = name
        self.index = index
        self.tenant = tenant
        self.parent_id = parent_id
        self.span_id = span_id
        self.start = start
        self.bytes_moved = 0
        self.attrs: Dict[str, object] = {}
        self._wall_start = wall_start

    def add_bytes(self, count: int) -> None:
        self.bytes_moved += int(count)

    def set(self, key: str, value: object) -> None:
        self.attrs[key] = value


class SpanSink:
    """Receives finished spans; subclass and override :meth:`on_span`."""

    def on_span(self, span: Span) -> None:
        """Called once per finished span, in finish order."""


class SpanTracer:
    """Deterministic hierarchical tracer for one run.

    Args:
        seed: Run seed keying the deterministic span ids.
        run_label: Free-form run identity folded into the trace id
            (workload/policy names, typically).
        wall_clock: Measure real elapsed seconds per span for the
            metrics sinks.  File output is unaffected either way.
        keep_spans: Retain finished spans on ``tracer.spans`` (handy in
            tests and for one-shot exports; long replays should stream
            through a :class:`SpanWriter` sink instead).

    The tracer is a single-threaded replay companion: one span stack,
    no locks.  Parenting is implicit — a started span becomes the
    parent of spans started before it finishes.  All mutation of tracer
    state goes through the sanctioned mutators ``start``, ``finish``,
    ``record``, ``add_sink``, and ``reset`` (enforced project-wide by
    repro-lint RPR010).
    """

    #: Tracers advertise liveness so pipelines can normalize a disabled
    #: tracer to ``None`` and keep the hot path branch-free.
    enabled = True

    def __init__(
        self,
        seed: int = 0,
        run_label: str = "run",
        wall_clock: bool = True,
        keep_spans: bool = False,
    ) -> None:
        self.seed = seed
        self.run_label = run_label
        self.trace_id = span_id_for(seed, "trace", run_label)
        self.wall_clock = wall_clock
        self.keep_spans = keep_spans
        self.spans: List[Span] = []
        self.spans_seen = 0
        self._sinks: List[SpanSink] = []
        self._clock = 0
        self._stack: List[ActiveSpan] = []

    # -- sinks -----------------------------------------------------------

    def add_sink(self, sink: SpanSink) -> SpanSink:
        """Attach a sink; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    # -- span lifecycle --------------------------------------------------

    def start(
        self,
        name: str,
        index: int = -1,
        tenant: str = "",
        **attrs: object,
    ) -> ActiveSpan:
        """Open a span; it parents every span started before its finish."""
        self._clock += 1
        start = self._clock
        parent_id = self._stack[-1].span_id if self._stack else ""
        if index < 0 and self._stack:
            # Inherit the enclosing span's query index: layers below
            # the replay loop (transport attempts, SQL execution) don't
            # know which query they serve, but their parent does.
            index = self._stack[-1].index
        span_id = span_id_for(self.seed, index, name, start)
        wall_start = time.perf_counter() if self.wall_clock else None
        active = ActiveSpan(
            name=name,
            index=index,
            tenant=tenant or (self._stack[-1].tenant if self._stack else ""),
            parent_id=parent_id,
            span_id=span_id,
            start=start,
            wall_start=wall_start,
        )
        if attrs:
            active.attrs.update(attrs)
        self._stack.append(active)
        return active

    def finish(
        self,
        active: ActiveSpan,
        bytes_moved: int = 0,
        **attrs: object,
    ) -> Span:
        """Close ``active`` (and any unclosed children) into a Span."""
        # Pop through any children the traced code failed to close —
        # an exception unwound past them; close them at this tick so
        # the file stays well-formed.
        while self._stack and self._stack[-1] is not active:
            dangling = self._stack[-1]
            self.record(self._seal(dangling, 0))
        if self._stack and self._stack[-1] is active:
            self._stack.pop()
        if bytes_moved:
            active.bytes_moved += int(bytes_moved)
        if attrs:
            active.attrs.update(attrs)
        span = self._seal(active, active.bytes_moved)
        self.record(span)
        return span

    def _seal(self, active: ActiveSpan, bytes_moved: int) -> Span:
        self._clock += 1
        if self._stack and self._stack and active in self._stack:
            self._stack.remove(active)
        wall = None
        if active._wall_start is not None:
            wall = time.perf_counter() - active._wall_start
        return Span(
            trace_id=self.trace_id,
            span_id=active.span_id,
            parent_id=active.parent_id,
            name=active.name,
            index=active.index,
            tenant=active.tenant,
            start=active.start,
            end=self._clock,
            bytes_moved=bytes_moved,
            attrs=tuple(sorted(active.attrs.items())),
            wall_seconds=wall,
        )

    def span(
        self,
        name: str,
        index: int = -1,
        tenant: str = "",
        **attrs: object,
    ) -> "_SpanContext":
        """Context-manager form of :meth:`start`/:meth:`finish`."""
        return _SpanContext(self, name, index, tenant, attrs)

    # -- dispatch --------------------------------------------------------

    def record(self, span: Span) -> None:
        """Sanctioned dispatch: retain (when configured) and fan out."""
        self.spans_seen += 1
        if self.keep_spans:
            self.spans.append(span)
        for sink in self._sinks:
            sink.on_span(span)

    def reset(self) -> None:
        """Drop retained spans and rewind the logical clock (sinks stay)."""
        self.spans.clear()
        self.spans_seen = 0
        self._clock = 0
        self._stack.clear()

    def __repr__(self) -> str:
        return (
            f"SpanTracer(seed={self.seed}, spans_seen={self.spans_seen}, "
            f"clock={self._clock})"
        )


class _SpanContext:
    """``with tracer.span(...)`` support."""

    __slots__ = ("_tracer", "_name", "_index", "_tenant", "_attrs", "active")

    def __init__(
        self,
        tracer: SpanTracer,
        name: str,
        index: int,
        tenant: str,
        attrs: Dict[str, object],
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._index = index
        self._tenant = tenant
        self._attrs = attrs
        self.active: Optional[ActiveSpan] = None

    def __enter__(self) -> ActiveSpan:
        self.active = self._tracer.start(
            self._name, self._index, self._tenant, **self._attrs
        )
        return self.active

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        assert self.active is not None
        if exc_type is not None:
            self.active.set("error", exc_type.__name__)
        self._tracer.finish(self.active)


class NullTracer:
    """The do-nothing tracer: every operation is a no-op.

    Pipelines normalize a tracer whose ``enabled`` is False to ``None``
    at construction time, so with a NullTracer attached the replay loop
    executes the *identical* instruction stream as with no tracer at
    all — the <= 2% disabled-overhead gate in the hotpath benchmark
    holds by construction.
    """

    enabled = False

    def add_sink(self, sink: SpanSink) -> SpanSink:
        return sink

    def start(self, name: str, index: int = -1, tenant: str = "",
              **attrs: object) -> None:
        return None

    def finish(self, active: object, bytes_moved: int = 0,
               **attrs: object) -> None:
        return None

    def span(self, name: str, index: int = -1, tenant: str = "",
             **attrs: object) -> "_NullContext":
        return _NULL_CONTEXT

    def record(self, span: Span) -> None:
        return None

    def reset(self) -> None:
        return None


class _NullContext:
    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_CONTEXT = _NullContext()

Tracer = Union[SpanTracer, NullTracer]


def live_tracer(tracer: Optional[Tracer]) -> Optional[SpanTracer]:
    """Normalize a tracer argument: disabled/Null tracers become None.

    Every pipeline entry point funnels its ``tracer`` argument through
    this, so the hot path only ever tests ``tracer is not None``.
    """
    if tracer is None or not tracer.enabled:
        return None
    assert isinstance(tracer, SpanTracer)
    return tracer


# ---------------------------------------------------------------------------
# File sink / reader
# ---------------------------------------------------------------------------


class SpanWriter(SpanSink):
    """Stream spans to a JSONL file next to the decision trace.

    Format (one JSON object per line)::

        {"span_trace": {"schema": 1, "seed": ..., "run_label": ...,
                        "trace_id": ...}}
        {...Span...}
        {...Span...}

    Same-seed runs produce byte-identical files: ids, ticks, and byte
    counts are all deterministic, keys are sorted, and wall-clock
    measurements never serialize.

    Writes are serialized by a single internal lock (same discipline
    as :class:`~repro.obs.trace_io.TraceWriter`): one writer may be
    shared by several threads and every span line lands whole.  The
    lock is in-process only — it does not arbitrate between processes.
    ``append=True`` opens an existing file for appending and skips the
    header when the file already has one.
    """

    def __init__(
        self,
        path: Union[str, Path],
        tracer: SpanTracer,
        extra: Optional[Mapping[str, object]] = None,
        append: bool = False,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.spans_written = 0
        self._lock = threading.Lock()
        header: Dict[str, object] = {
            "schema": SPAN_SCHEMA,
            "seed": tracer.seed,
            "run_label": tracer.run_label,
            "trace_id": tracer.trace_id,
        }
        if extra:
            header.update(extra)
        has_header = (
            append
            and self.path.exists()
            and self.path.stat().st_size > 0
        )
        self._handle: Optional[IO[str]] = self.path.open(
            "a" if append else "w", encoding="utf-8"
        )
        if not has_header:
            self._handle.write(
                json.dumps({"span_trace": header}, sort_keys=True)
                + "\n"
            )

    def on_span(self, span: Span) -> None:
        self.write(span)

    def write(self, span: Span) -> None:
        with self._lock:
            if self._handle is None:
                raise ConfigurationError(
                    f"span writer for {self.path} is closed"
                )
            self._handle.write(
                json.dumps(span.to_json(), sort_keys=True) + "\n"
            )
            self.spans_written += 1

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "SpanWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class SpanReader:
    """Read a span file written by :class:`SpanWriter`.

    The header is parsed eagerly (``reader.header``); spans stream
    lazily.  A truncated trailing line (crash mid-write) does not
    raise: iteration yields the complete prefix and sets
    ``reader.truncated``.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise ConfigurationError(f"no such span file: {self.path}")
        self.truncated = False
        self.header = self._read_header()

    def _read_header(self) -> Dict[str, object]:
        with self.path.open("r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        if not first:
            raise ConfigurationError(
                f"{self.path}: empty file is not a span trace"
            )
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{self.path}:1: invalid JSON in span-trace header"
            ) from exc
        if not isinstance(header, dict) or "span_trace" not in header:
            raise ConfigurationError(
                f"{self.path}:1: span-trace header must be a "
                f'{{"span_trace": ...}} object'
            )
        meta = header["span_trace"]
        return dict(meta) if isinstance(meta, dict) else {}

    def __iter__(self) -> Iterator[Span]:
        with self.path.open("r", encoding="utf-8") as handle:
            pending: Optional[Tuple[int, str]] = None
            for line_no, line in enumerate(handle):
                if line_no == 0:
                    continue
                stripped = line.strip()
                if not stripped:
                    continue
                if pending is not None:
                    yield self._parse(*pending)
                pending = (line_no, stripped)
            if pending is not None:
                try:
                    yield self._parse(*pending)
                except ConfigurationError:
                    # A malformed *final* line is a crash mid-write:
                    # surface the complete prefix, flag the loss.
                    self.truncated = True

    def _parse(self, line_no: int, line: str) -> Span:
        try:
            data = json.loads(line)
            return Span.from_json(data)
        except (
            json.JSONDecodeError, KeyError, TypeError, ValueError
        ) as exc:
            raise ConfigurationError(
                f"{self.path}:{line_no + 1}: malformed span: {exc}"
            ) from exc

    def read_all(self) -> List[Span]:
        return list(self)


def read_spans(path: Union[str, Path]) -> Tuple[Dict[str, object], List[Span]]:
    """One-shot load: (header, every span)."""
    reader = SpanReader(path)
    return reader.header, reader.read_all()


# ---------------------------------------------------------------------------
# Chrome trace-event / Perfetto export
# ---------------------------------------------------------------------------


def to_chrome_trace(
    spans: Iterable[Span],
    label: str = "repro",
) -> Dict[str, object]:
    """Render spans as a Chrome trace-event JSON object.

    Loadable directly in Perfetto (https://ui.perfetto.dev) and
    ``chrome://tracing``.  One logical tick maps to one microsecond;
    tenants map to threads so multi-tenant runs get one swimlane per
    tenant.
    """
    events: List[Dict[str, object]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": label},
        }
    ]
    tenant_tids: Dict[str, int] = {}
    for span in spans:
        tid = tenant_tids.setdefault(span.tenant, len(tenant_tids) + 1)
        args: Dict[str, object] = {key: value for key, value in span.attrs}
        args["index"] = span.index
        if span.bytes_moved:
            args["bytes"] = span.bytes_moved
        if span.tenant:
            args["tenant"] = span.tenant
        events.append(
            {
                "name": span.name,
                "cat": "repro",
                "ph": "X",
                "ts": span.start,
                "dur": max(span.duration, 1),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    for tenant, tid in sorted(tenant_tids.items(), key=lambda kv: kv[1]):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": tenant or "untagged"},
            }
        )
    return {"displayTimeUnit": "ms", "traceEvents": events}


def write_chrome_trace(
    spans: Iterable[Span],
    path: Union[str, Path],
    label: str = "repro",
) -> Path:
    """Write the Perfetto-loadable export; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = to_chrome_trace(spans, label=label)
    path.write_text(
        json.dumps(payload, sort_keys=True, indent=None) + "\n",
        encoding="utf-8",
    )
    return path


# ---------------------------------------------------------------------------
# Flamegraph aggregation
# ---------------------------------------------------------------------------


class FlameNode:
    """One stage in the aggregated top-down stage tree."""

    __slots__ = ("name", "count", "inclusive", "bytes_moved", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.inclusive = 0
        self.bytes_moved = 0
        self.children: Dict[str, "FlameNode"] = {}

    @property
    def exclusive(self) -> int:
        """Logical ticks spent in this stage itself (children removed)."""
        return self.inclusive - sum(
            child.inclusive for child in self.children.values()
        )


def aggregate_flame(spans: Iterable[Span]) -> FlameNode:
    """Fold spans into a top-down stage tree keyed by name paths.

    Each span contributes its logical duration and bytes to the node at
    its root-to-self name path; sibling occurrences of the same stage
    aggregate.  The returned synthetic root's ``inclusive`` is the sum
    over the real roots.
    """
    by_id: Dict[str, Span] = {}
    ordered: List[Span] = []
    for span in spans:
        by_id[span.span_id] = span
        ordered.append(span)

    def path_of(span: Span) -> Tuple[str, ...]:
        names: List[str] = []
        current: Optional[Span] = span
        hops = 0
        while current is not None and hops < 64:
            names.append(current.name)
            current = by_id.get(current.parent_id)
            hops += 1
        return tuple(reversed(names))

    root = FlameNode("")
    for span in ordered:
        node = root
        for name in path_of(span):
            node = node.children.setdefault(name, FlameNode(name))
        node.count += 1
        node.inclusive += span.duration
        node.bytes_moved += span.bytes_moved
    root.inclusive = sum(
        child.inclusive for child in root.children.values()
    )
    return root


def render_flamegraph(root: FlameNode) -> str:
    """Text rendering of the aggregated stage tree.

    Top-down, children sorted by inclusive ticks descending, with
    inclusive/exclusive logical time, byte totals, and call counts —
    the ``repro-report --flamegraph`` output.
    """
    total = root.inclusive or 1
    lines = [
        f"{'stage':<40} {'calls':>8} {'incl':>10} {'excl':>10} "
        f"{'incl%':>7} {'bytes':>14}"
    ]

    def walk(node: FlameNode, depth: int) -> None:
        for child in sorted(
            node.children.values(),
            key=lambda item: (-item.inclusive, item.name),
        ):
            label = ("  " * depth + child.name)[:40]
            lines.append(
                f"{label:<40} {child.count:>8} {child.inclusive:>10} "
                f"{child.exclusive:>10} "
                f"{100.0 * child.inclusive / total:>6.1f}% "
                f"{child.bytes_moved:>14}"
            )
            walk(child, depth + 1)

    walk(root, 0)
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Metrics sink
# ---------------------------------------------------------------------------


class MetricsSpanSink(SpanSink):
    """Fold spans into a :class:`~repro.obs.metrics.MetricsRegistry`.

    Per stage: a call counter, a logical-duration histogram, a bytes
    histogram (bytes-moving spans only), and — when the tracer measures
    wall time — a microseconds histogram.  Per tenant: span counts and
    bytes, labeled the Prometheus way.
    """

    def __init__(self, registry, prefix: str = "repro") -> None:
        from repro.obs.metrics import sanitize_metric_name

        self.registry = registry
        self._prefix = prefix
        self._sanitize = sanitize_metric_name

    def on_span(self, span: Span) -> None:
        registry = self.registry
        stage = self._sanitize(span.name)
        p = f"{self._prefix}_span_{stage}"
        registry.counter(
            f"{p}_total", f"Spans finished in stage {span.name}"
        ).inc()
        registry.histogram(
            f"{p}_ticks", f"Logical duration of stage {span.name}"
        ).observe(span.duration)
        if span.bytes_moved:
            registry.histogram(
                f"{p}_bytes", f"Bytes moved by stage {span.name}"
            ).observe(span.bytes_moved)
        if span.wall_seconds is not None:
            registry.histogram(
                f"{p}_micros",
                f"Wall-clock microseconds in stage {span.name}",
            ).observe(span.wall_seconds * 1e6)
        tenant = span.tenant or "untagged"
        registry.counter(
            f'{self._prefix}_tenant_spans_total{{tenant="{tenant}"}}',
            "Spans finished per tenant",
        ).inc()
        if span.bytes_moved:
            registry.counter(
                f'{self._prefix}_tenant_span_bytes_total'
                f'{{tenant="{tenant}"}}',
                "Bytes moved per tenant (span-attributed)",
            ).inc(span.bytes_moved)
