"""Durable decision traces: JSONL streaming with a manifest header.

Format (one JSON object per line)::

    {"manifest": {...RunManifest...}}
    {...DecisionEvent...}
    {...DecisionEvent...}

:class:`TraceWriter` is also an :class:`~repro.core.instrumentation.Probe`,
so attaching it to an :class:`~repro.core.instrumentation.Instrumentation`
streams every decision straight to disk — the run itself needs no event
retention (``max_events=0``) and memory stays flat on arbitrarily long
traces.  :class:`TraceReader` restores the manifest and every event
exactly (tested round-trip), which is what makes cross-run diffing
(:mod:`repro.obs.report`) trustworthy.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from types import TracebackType
from typing import IO, Iterator, List, Optional, Tuple, Type, Union

from repro.core.instrumentation import DecisionEvent, Probe
from repro.errors import ConfigurationError
from repro.obs.manifest import RunManifest


class TraceWriter(Probe):
    """Stream :class:`DecisionEvent` records to a JSONL trace file.

    Args:
        path: Destination file (parent directories are created).
        manifest: The run's attribution header, written first.
        rotate_events: When set, start a new segment file every this
            many events.  Segments are named ``<stem>.00000<suffix>``,
            ``<stem>.00001<suffix>``, … next to ``path``, and each
            carries its own manifest header so any segment is readable
            on its own (and a partial set survives a crash).  Million-
            query replays otherwise produce one unwieldy multi-gigabyte
            file.  ``None`` (default) writes a single file at ``path``.
        append: Open an existing trace for appending instead of
            truncating; the manifest header is only written when the
            file is new (or empty).  Incompatible with
            ``rotate_events``.

    Use as a context manager, or call :meth:`close` explicitly.  The
    writer flushes on close; ``events_written`` counts emitted records
    across all segments, and ``segments`` lists the files written.

    Writes are serialized by a single internal lock, so one writer may
    be shared by several threads (the mediator service's probes fire
    from worker tasks); each event line lands whole and the reader
    never sees interleaved records.  The lock is *in-process* only —
    two processes appending to one file still corrupt it.
    """

    def __init__(
        self,
        path: Union[str, Path],
        manifest: RunManifest,
        rotate_events: Optional[int] = None,
        append: bool = False,
    ) -> None:
        if rotate_events is not None and rotate_events <= 0:
            raise ConfigurationError(
                "rotate_events must be positive when given"
            )
        if append and rotate_events is not None:
            raise ConfigurationError(
                "append mode cannot rotate segments"
            )
        self.path = Path(path)
        self.manifest = manifest
        self.rotate_events = rotate_events
        self.append = append
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.events_written = 0
        self.segments: List[Path] = []
        self._events_in_segment = 0
        self._handle: Optional[IO[str]] = None
        self._lock = threading.Lock()
        self._open_segment()

    def _segment_path(self, index: int) -> Path:
        if self.rotate_events is None:
            return self.path
        return self.path.with_name(
            f"{self.path.stem}.{index:05d}{self.path.suffix}"
        )

    def _open_segment(self) -> None:
        segment = self._segment_path(len(self.segments))
        if self.append:
            has_header = (
                segment.exists() and segment.stat().st_size > 0
            )
            self._handle = segment.open("a", encoding="utf-8")
        else:
            has_header = False
            self._handle = segment.open("w", encoding="utf-8")
        if not has_header:
            self._handle.write(
                json.dumps(
                    {"manifest": self.manifest.to_json()},
                    sort_keys=True,
                )
                + "\n"
            )
        self.segments.append(segment)
        self._events_in_segment = 0

    # -- Probe interface -------------------------------------------------

    def on_decision(self, event: DecisionEvent) -> None:
        """Probe hook: stream each decision as it happens."""
        self.write(event)

    # -- explicit API ----------------------------------------------------

    def write(self, event: DecisionEvent) -> None:
        """Append one event line, rolling the segment when full."""
        with self._lock:
            if self._handle is None:
                raise ConfigurationError(
                    f"trace writer for {self.path} is closed"
                )
            if (
                self.rotate_events is not None
                and self._events_in_segment >= self.rotate_events
            ):
                self._handle.close()
                self._open_segment()
            self._handle.write(
                json.dumps(event.to_json(), sort_keys=True) + "\n"
            )
            self.events_written += 1
            self._events_in_segment += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class TraceReader:
    """Read a JSONL trace written by :class:`TraceWriter`.

    The manifest is parsed eagerly (``reader.manifest``); events stream
    lazily through iteration, so summarizing a multi-gigabyte trace
    never materializes it.

    A malformed *final* line is a crash mid-write, not corruption:
    iteration yields the complete prefix and sets ``truncated`` instead
    of raising.  Malformed lines anywhere else still raise — an event
    silently dropped from the middle of a trace would corrupt every
    diff downstream.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise ConfigurationError(f"no such trace file: {self.path}")
        #: True once iteration has discarded a truncated trailing line.
        self.truncated = False
        self.manifest = self._read_manifest()

    def _read_manifest(self) -> RunManifest:
        with self.path.open("r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        if not first:
            raise ConfigurationError(
                f"{self.path}: empty file is not a trace"
            )
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{self.path}:1: invalid JSON in trace header"
            ) from exc
        if not isinstance(header, dict) or "manifest" not in header:
            raise ConfigurationError(
                f"{self.path}:1: trace header must be a "
                f'{{"manifest": ...}} object'
            )
        return RunManifest.from_json(header["manifest"])

    def __iter__(self) -> Iterator[DecisionEvent]:
        with self.path.open("r", encoding="utf-8") as handle:
            # One line of lookahead: a parse failure is only tolerated
            # when no complete line follows it (crash mid-write).
            pending: Optional[Tuple[int, str]] = None
            for line_no, line in enumerate(handle):
                if line_no == 0:
                    continue
                stripped = line.strip()
                if not stripped:
                    continue
                if pending is not None:
                    yield self._parse(*pending)
                pending = (line_no, stripped)
            if pending is not None:
                try:
                    yield self._parse(*pending)
                except ConfigurationError:
                    self.truncated = True

    def _parse(self, line_no: int, line: str) -> DecisionEvent:
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{self.path}:{line_no + 1}: invalid JSON "
                f"event line"
            ) from exc
        try:
            return DecisionEvent.from_json(data)
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"{self.path}:{line_no + 1}: malformed "
                f"decision event: {exc}"
            ) from exc

    def read_all(self) -> Tuple[RunManifest, List[DecisionEvent]]:
        """(manifest, every event) — convenience for small traces."""
        return self.manifest, list(self)


def read_trace(
    path: Union[str, Path]
) -> Tuple[RunManifest, List[DecisionEvent]]:
    """One-shot load of a trace file."""
    return TraceReader(path).read_all()


def rotated_segments(path: Union[str, Path]) -> List[Path]:
    """The segment files a rotating :class:`TraceWriter` produced for
    ``path``, in write order.

    Raises:
        ConfigurationError: no segments exist (wrong path, or the trace
            was written without rotation — read ``path`` directly then).
    """
    base = Path(path)
    pattern = f"{base.stem}.*{base.suffix}" if base.suffix else f"{base.stem}.*"
    segments = sorted(
        candidate
        for candidate in base.parent.glob(pattern)
        if _segment_index(base, candidate) is not None
    )
    if not segments:
        raise ConfigurationError(
            f"no rotated trace segments for {base}"
        )
    return segments


def _segment_index(base: Path, candidate: Path) -> Optional[int]:
    prefix = base.stem + "."
    name = candidate.name
    if base.suffix:
        if not name.endswith(base.suffix):
            return None
        name = name[: -len(base.suffix)]
    if not name.startswith(prefix):
        return None
    digits = name[len(prefix):]
    return int(digits) if digits.isdigit() else None


class RotatedTraceReader:
    """Read a rotated trace as one logical stream.

    ``manifest`` comes from the first segment (all segments carry the
    same header); iteration chains the segments' events in write order.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.segments = rotated_segments(self.path)
        self.manifest = TraceReader(self.segments[0]).manifest

    def __iter__(self) -> Iterator[DecisionEvent]:
        for segment in self.segments:
            yield from TraceReader(segment)
