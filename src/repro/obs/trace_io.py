"""Durable decision traces: JSONL streaming with a manifest header.

Format (one JSON object per line)::

    {"manifest": {...RunManifest...}}
    {...DecisionEvent...}
    {...DecisionEvent...}

:class:`TraceWriter` is also an :class:`~repro.core.instrumentation.Probe`,
so attaching it to an :class:`~repro.core.instrumentation.Instrumentation`
streams every decision straight to disk — the run itself needs no event
retention (``max_events=0``) and memory stays flat on arbitrarily long
traces.  :class:`TraceReader` restores the manifest and every event
exactly (tested round-trip), which is what makes cross-run diffing
(:mod:`repro.obs.report`) trustworthy.
"""

from __future__ import annotations

import json
from pathlib import Path
from types import TracebackType
from typing import IO, Iterator, List, Optional, Tuple, Type, Union

from repro.core.instrumentation import DecisionEvent, Probe
from repro.errors import ConfigurationError
from repro.obs.manifest import RunManifest


class TraceWriter(Probe):
    """Stream :class:`DecisionEvent` records to a JSONL trace file.

    Args:
        path: Destination file (parent directories are created).
        manifest: The run's attribution header, written first.

    Use as a context manager, or call :meth:`close` explicitly.  The
    writer flushes on close; ``events_written`` counts emitted records.
    """

    def __init__(
        self, path: Union[str, Path], manifest: RunManifest
    ) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: Optional[IO[str]] = self.path.open(
            "w", encoding="utf-8"
        )
        self._handle.write(
            json.dumps({"manifest": manifest.to_json()}, sort_keys=True)
            + "\n"
        )
        self.events_written = 0

    # -- Probe interface -------------------------------------------------

    def on_decision(self, event: DecisionEvent) -> None:
        """Probe hook: stream each decision as it happens."""
        self.write(event)

    # -- explicit API ----------------------------------------------------

    def write(self, event: DecisionEvent) -> None:
        """Append one event line."""
        if self._handle is None:
            raise ConfigurationError(
                f"trace writer for {self.path} is closed"
            )
        self._handle.write(
            json.dumps(event.to_json(), sort_keys=True) + "\n"
        )
        self.events_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.close()


class TraceReader:
    """Read a JSONL trace written by :class:`TraceWriter`.

    The manifest is parsed eagerly (``reader.manifest``); events stream
    lazily through iteration, so summarizing a multi-gigabyte trace
    never materializes it.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise ConfigurationError(f"no such trace file: {self.path}")
        self.manifest = self._read_manifest()

    def _read_manifest(self) -> RunManifest:
        with self.path.open("r", encoding="utf-8") as handle:
            first = handle.readline().strip()
        if not first:
            raise ConfigurationError(
                f"{self.path}: empty file is not a trace"
            )
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{self.path}:1: invalid JSON in trace header"
            ) from exc
        if not isinstance(header, dict) or "manifest" not in header:
            raise ConfigurationError(
                f"{self.path}:1: trace header must be a "
                f'{{"manifest": ...}} object'
            )
        return RunManifest.from_json(header["manifest"])

    def __iter__(self) -> Iterator[DecisionEvent]:
        with self.path.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle):
                if line_no == 0:
                    continue
                line = line.strip()
                if not line:
                    continue
                try:
                    data = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"{self.path}:{line_no + 1}: invalid JSON "
                        f"event line"
                    ) from exc
                try:
                    yield DecisionEvent.from_json(data)
                except (KeyError, TypeError, ValueError) as exc:
                    raise ConfigurationError(
                        f"{self.path}:{line_no + 1}: malformed "
                        f"decision event: {exc}"
                    ) from exc

    def read_all(self) -> Tuple[RunManifest, List[DecisionEvent]]:
        """(manifest, every event) — convenience for small traces."""
        return self.manifest, list(self)


def read_trace(
    path: Union[str, Path]
) -> Tuple[RunManifest, List[DecisionEvent]]:
    """One-shot load of a trace file."""
    return TraceReader(path).read_all()
