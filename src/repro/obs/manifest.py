"""Run manifests: the attribution header of every persisted trace.

A :class:`RunManifest` records everything needed to *re-run and
re-attribute* a telemetry trace: the workload identity, the policy and
its parameters, the cache configuration, the seed, the package version,
and a caller-supplied timestamp.  It is the first line of every trace
file written by :class:`~repro.obs.trace_io.TraceWriter`, so any JSONL
trace found on disk is self-describing.

Timestamps are **caller-supplied** strings: the replay pipeline itself
is clock-free (repro-lint RPR002), so wall-clock reads happen only at
the CLI edge, via :func:`wall_clock_timestamp` below.
"""

# repro-lint: allow-file[RPR002] manifests stamp observability metadata,
# never replay state; wall_clock_timestamp is the sanctioned edge.

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from datetime import datetime, timezone
from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError

#: Version tag carried in every serialized manifest.
MANIFEST_SCHEMA = 1


def package_version() -> str:
    """The installed ``repro`` version, for attribution stamping."""
    try:
        from repro import __version__
    except Exception:  # pragma: no cover - import cycle fallback
        return "unknown"
    return __version__


def wall_clock_timestamp() -> str:
    """ISO-8601 UTC timestamp for manifest stamping at the CLI edge.

    The only sanctioned wall-clock read feeding run telemetry; library
    code takes ``created_at`` as an argument instead of calling this.
    """
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass(frozen=True)
class RunManifest:
    """Identity and configuration of one recorded run.

    Attributes:
        workload: Trace/workload identifier (e.g. the prepared trace
            name).
        policy: Name of the cache policy that made the decisions.
        granularity: ``"table"`` or ``"column"``.
        capacity_bytes: Cache size the policy ran with.
        seed: Workload generation seed, when known (None otherwise).
        policy_params: Extra policy constructor parameters.
        policy_sees_weights: The BYHR/BYU cost-view flag the run used.
        source: ``"simulator"`` or ``"proxy"``.
        package_version: ``repro.__version__`` at record time.
        created_at: Caller-supplied ISO-8601 timestamp ("" when the
            caller declined to stamp, keeping output byte-deterministic).
        extra: Free-form attribution (host, experiment label, ...).
    """

    workload: str
    policy: str
    granularity: str
    capacity_bytes: int
    seed: Optional[int] = None
    policy_params: Dict[str, object] = field(default_factory=dict)
    policy_sees_weights: bool = True
    source: str = "simulator"
    package_version: str = field(default_factory=package_version)
    created_at: str = ""
    extra: Dict[str, object] = field(default_factory=dict)

    def to_json(self) -> Dict[str, object]:
        """JSON-safe dict that :meth:`from_json` restores exactly."""
        payload: Dict[str, object] = {"schema": MANIFEST_SCHEMA}
        payload.update(asdict(self))
        return payload

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "RunManifest":
        """Rebuild a manifest from :meth:`to_json` output."""
        schema = data.get("schema", MANIFEST_SCHEMA)
        if not isinstance(schema, int) or schema > MANIFEST_SCHEMA:
            raise ConfigurationError(
                f"manifest schema {schema!r} is newer than this build "
                f"understands (<= {MANIFEST_SCHEMA})"
            )
        try:
            workload = str(data["workload"])
            policy = str(data["policy"])
            granularity = str(data["granularity"])
            capacity_bytes = int(data["capacity_bytes"])  # type: ignore[call-overload]
        except KeyError as exc:
            raise ConfigurationError(
                f"manifest missing required field: {exc}"
            ) from exc
        seed = data.get("seed")
        policy_params = data.get("policy_params", {})
        extra = data.get("extra", {})
        params = (
            dict(policy_params) if isinstance(policy_params, Mapping) else {}
        )
        return cls(
            workload=workload,
            policy=policy,
            granularity=granularity,
            capacity_bytes=capacity_bytes,
            seed=None if seed is None else int(seed),  # type: ignore[call-overload]
            policy_params=params,
            policy_sees_weights=bool(
                data.get("policy_sees_weights", True)
            ),
            source=str(data.get("source", "simulator")),
            package_version=str(data.get("package_version", "unknown")),
            created_at=str(data.get("created_at", "")),
            extra=dict(extra) if isinstance(extra, Mapping) else {},
        )

    def describe(self) -> Dict[str, object]:
        """Ordered field/value pairs for report rendering."""
        described: Dict[str, object] = {
            "workload": self.workload,
            "policy": self.policy,
            "granularity": self.granularity,
            "capacity_bytes": self.capacity_bytes,
            "seed": "-" if self.seed is None else self.seed,
            "policy_sees_weights": self.policy_sees_weights,
            "source": self.source,
            "package_version": self.package_version,
            "created_at": self.created_at or "-",
        }
        for key in sorted(self.policy_params):
            described[f"policy_params.{key}"] = self.policy_params[key]
        for key in sorted(self.extra):
            described[f"extra.{key}"] = self.extra[key]
        return described
