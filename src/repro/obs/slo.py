"""Declarative SLOs with multi-window burn-rate evaluation.

An SLO spec declares objectives over the quantities this system already
records — decision outcomes, per-query WAN bytes, per-stage span
latencies — and the engine folds a stream of
:class:`~repro.core.instrumentation.DecisionEvent` /
:class:`~repro.obs.spans.Span` observations into compliance and
burn-rate state.  Three objective kinds:

``availability``
    Fraction of queries not resolved as ``unavailable``.  The paper's
    caching policies should *raise* availability (a cached object keeps
    serving through a backend outage), so the checked-in CI spec pins
    that claim.

``wan_per_query_bytes``
    Fraction of queries whose total WAN bytes (loads + bypass + retry
    waste) stay under a per-query budget — the "good network citizen"
    contract expressed as an SLO.

``stage_latency_p99``
    Fraction of spans of one stage whose *logical* duration stays under
    a tick threshold.  Ticks, not wall seconds: evaluation must be
    deterministic and replayable.

Burn rate follows the multi-window construction from Google's SRE
workbook: with error budget ``1 - target``, the burn rate of a window
is ``observed error rate / (1 - target)`` — burn 1.0 spends exactly the
budget over the SLO period; burn 14 exhausts a 30-day budget in ~2
days.  An objective *alerts* when both a long and a short window burn
above threshold (the short window proves the problem is still
happening, the long one that it is material).  An objective is
*violated* when overall compliance over everything observed falls below
target.  ``repro-report --slo`` exits 1 on either.

Time is observation count throughout — windows are "the last N
queries", never "the last N seconds" — same determinism rule as
:class:`~repro.obs.metrics.WindowedGauge`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.instrumentation import DecisionEvent
from repro.errors import ConfigurationError
from repro.obs.spans import Span

#: Objective kinds understood by this engine.
KIND_AVAILABILITY = "availability"
KIND_WAN_PER_QUERY = "wan_per_query_bytes"
KIND_STAGE_LATENCY = "stage_latency_p99"

_KINDS = (KIND_AVAILABILITY, KIND_WAN_PER_QUERY, KIND_STAGE_LATENCY)


@dataclass(frozen=True)
class Objective:
    """One declarative objective inside an SLO spec.

    Attributes:
        name: Display name ("availability", "wan-budget", ...).
        kind: One of the three objective kinds above.
        target: Required good fraction in (0, 1) — 0.99 means "99% of
            observations must be good" (for ``stage_latency_p99`` this
            *is* the p99 claim).
        budget_bytes: Per-query WAN budget (``wan_per_query_bytes``).
        stage: Span stage name (``stage_latency_p99``).
        threshold_ticks: Logical-duration bound (``stage_latency_p99``).
        long_window: Observations in the long burn window.
        short_window: Observations in the short burn window.
        burn_threshold: Both windows must burn at or above this rate to
            alert; 1.0 = budget-neutral burn.
    """

    name: str
    kind: str
    target: float
    budget_bytes: int = 0
    stage: str = ""
    threshold_ticks: int = 0
    long_window: int = 1000
    short_window: int = 100
    burn_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"objective {self.name!r}: unknown kind {self.kind!r} "
                f"(expected one of {', '.join(_KINDS)})"
            )
        if not 0.0 < self.target < 1.0:
            raise ConfigurationError(
                f"objective {self.name!r}: target must be in (0, 1), "
                f"got {self.target}"
            )
        if self.kind == KIND_WAN_PER_QUERY and self.budget_bytes <= 0:
            raise ConfigurationError(
                f"objective {self.name!r}: wan_per_query_bytes needs a "
                f"positive budget_bytes"
            )
        if self.kind == KIND_STAGE_LATENCY:
            if not self.stage:
                raise ConfigurationError(
                    f"objective {self.name!r}: stage_latency_p99 needs "
                    f"a stage name"
                )
            if self.threshold_ticks <= 0:
                raise ConfigurationError(
                    f"objective {self.name!r}: stage_latency_p99 needs "
                    f"a positive threshold_ticks"
                )
        if self.short_window < 1 or self.long_window < self.short_window:
            raise ConfigurationError(
                f"objective {self.name!r}: windows must satisfy "
                f"1 <= short_window <= long_window"
            )

    @property
    def error_budget(self) -> float:
        return 1.0 - self.target

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "Objective":
        kind = str(data.get("kind", ""))
        return cls(
            name=str(data.get("name", kind or "objective")),
            kind=kind,
            target=float(data.get("target", 0.0)),  # type: ignore[arg-type]
            budget_bytes=int(data.get("budget_bytes", 0)),  # type: ignore[call-overload]
            stage=str(data.get("stage", "")),
            threshold_ticks=int(data.get("threshold_ticks", 0)),  # type: ignore[call-overload]
            long_window=int(data.get("long_window", 1000)),  # type: ignore[call-overload]
            short_window=int(data.get("short_window", 100)),  # type: ignore[call-overload]
            burn_threshold=float(data.get("burn_threshold", 1.0)),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class SLOSpec:
    """A named bundle of objectives, loadable from JSON."""

    name: str
    objectives: Tuple[Objective, ...]

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "SLOSpec":
        raw = data.get("objectives")
        if not isinstance(raw, list) or not raw:
            raise ConfigurationError(
                "SLO spec needs a non-empty 'objectives' list"
            )
        objectives = []
        for entry in raw:
            if not isinstance(entry, Mapping):
                raise ConfigurationError(
                    "each SLO objective must be a JSON object"
                )
            objectives.append(Objective.from_json(entry))
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"SLO objective names must be unique, got {names}"
            )
        return cls(
            name=str(data.get("name", "slo")),
            objectives=tuple(objectives),
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "SLOSpec":
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"no such SLO spec: {path}")
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}: invalid JSON in SLO spec: {exc}"
            ) from exc
        if not isinstance(data, dict):
            raise ConfigurationError(f"{path}: SLO spec must be an object")
        return cls.from_json(data)


class _ObjectiveState:
    """Streaming compliance state for one objective."""

    __slots__ = ("total", "bad", "long_window", "short_window")

    def __init__(self, objective: Objective) -> None:
        self.total = 0
        self.bad = 0
        self.long_window: Deque[int] = deque(maxlen=objective.long_window)
        self.short_window: Deque[int] = deque(
            maxlen=objective.short_window
        )

    def observe(self, bad: bool) -> None:
        flag = 1 if bad else 0
        self.total += 1
        self.bad += flag
        self.long_window.append(flag)
        self.short_window.append(flag)


@dataclass(frozen=True)
class ObjectiveResult:
    """Evaluation of one objective at a point in time."""

    objective: Objective
    total: int
    bad: int
    compliance: float
    burn_long: float
    burn_short: float
    alerting: bool
    violated: bool

    @property
    def failing(self) -> bool:
        return self.alerting or self.violated

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.objective.name,
            "kind": self.objective.kind,
            "target": self.objective.target,
            "total": self.total,
            "bad": self.bad,
            "compliance": self.compliance,
            "burn_long": self.burn_long,
            "burn_short": self.burn_short,
            "burn_threshold": self.objective.burn_threshold,
            "alerting": self.alerting,
            "violated": self.violated,
            "failing": self.failing,
        }


@dataclass(frozen=True)
class SLOReport:
    """Evaluation of a whole spec."""

    spec: SLOSpec
    results: Tuple[ObjectiveResult, ...]

    @property
    def ok(self) -> bool:
        return not any(result.failing for result in self.results)

    def to_json(self) -> Dict[str, object]:
        return {
            "slo": self.spec.name,
            "ok": self.ok,
            "objectives": [result.to_json() for result in self.results],
        }


class SLOEngine:
    """Fold observations into per-objective compliance + burn state.

    Feed it decision events (:meth:`observe_event`) and spans
    (:meth:`observe_span`); :meth:`evaluate` is cheap and callable at
    any time — the ``/slo`` endpoint calls it per scrape.
    """

    def __init__(self, spec: SLOSpec) -> None:
        self.spec = spec
        self._states = {
            objective.name: _ObjectiveState(objective)
            for objective in spec.objectives
        }

    # -- observation ----------------------------------------------------

    def observe_event(self, event: DecisionEvent) -> None:
        for objective in self.spec.objectives:
            if objective.kind == KIND_AVAILABILITY:
                self._states[objective.name].observe(
                    event.outcome == "unavailable"
                )
            elif objective.kind == KIND_WAN_PER_QUERY:
                self._states[objective.name].observe(
                    event.wan_bytes > objective.budget_bytes
                )

    def observe_span(self, span: Span) -> None:
        for objective in self.spec.objectives:
            if (
                objective.kind == KIND_STAGE_LATENCY
                and span.name == objective.stage
            ):
                self._states[objective.name].observe(
                    span.duration > objective.threshold_ticks
                )

    def observe_events(self, events: Iterable[DecisionEvent]) -> None:
        for event in events:
            self.observe_event(event)

    def observe_spans(self, spans: Iterable[Span]) -> None:
        for span in spans:
            self.observe_span(span)

    # -- evaluation -----------------------------------------------------

    @staticmethod
    def _burn(window: Deque[int], error_budget: float) -> float:
        if not window:
            return 0.0
        error_rate = sum(window) / len(window)
        return error_rate / error_budget

    def evaluate(self) -> SLOReport:
        results: List[ObjectiveResult] = []
        for objective in self.spec.objectives:
            state = self._states[objective.name]
            compliance = (
                1.0 - state.bad / state.total if state.total else 1.0
            )
            burn_long = self._burn(
                state.long_window, objective.error_budget
            )
            burn_short = self._burn(
                state.short_window, objective.error_budget
            )
            alerting = (
                state.total > 0
                and burn_long >= objective.burn_threshold
                and burn_short >= objective.burn_threshold
            )
            violated = state.total > 0 and compliance < objective.target
            results.append(
                ObjectiveResult(
                    objective=objective,
                    total=state.total,
                    bad=state.bad,
                    compliance=compliance,
                    burn_long=burn_long,
                    burn_short=burn_short,
                    alerting=alerting,
                    violated=violated,
                )
            )
        return SLOReport(spec=self.spec, results=tuple(results))


def evaluate_sources(
    spec: SLOSpec,
    events: Iterable[DecisionEvent] = (),
    spans: Iterable[Span] = (),
) -> SLOReport:
    """One-shot evaluation over already-collected observations."""
    engine = SLOEngine(spec)
    engine.observe_events(events)
    engine.observe_spans(spans)
    return engine.evaluate()


def render_slo_report(report: SLOReport) -> str:
    """Plain-text rendering for ``repro-report --slo``."""
    lines = [f"SLO report: {report.spec.name}"]
    lines.append(
        f"{'objective':<24} {'kind':<22} {'target':>8} {'comply':>8} "
        f"{'burn(L)':>8} {'burn(S)':>8} {'n':>8}  verdict"
    )
    for result in report.results:
        objective = result.objective
        if result.violated:
            verdict = "VIOLATED"
        elif result.alerting:
            verdict = "BURNING"
        else:
            verdict = "ok"
        lines.append(
            f"{objective.name:<24} {objective.kind:<22} "
            f"{objective.target:>8.4f} {result.compliance:>8.4f} "
            f"{result.burn_long:>8.2f} {result.burn_short:>8.2f} "
            f"{result.total:>8}  {verdict}"
        )
    lines.append(f"overall: {'OK' if report.ok else 'FAILING'}")
    return "\n".join(lines)


__all__ = [
    "KIND_AVAILABILITY",
    "KIND_WAN_PER_QUERY",
    "KIND_STAGE_LATENCY",
    "Objective",
    "SLOSpec",
    "SLOEngine",
    "ObjectiveResult",
    "SLOReport",
    "evaluate_sources",
    "render_slo_report",
]
