"""``repro.obs`` — end-to-end run telemetry.

The observability subsystem layered on the
:class:`~repro.core.instrumentation.Instrumentation` seam:

* :mod:`repro.obs.manifest` — :class:`RunManifest`, the attribution
  header (seed, policy, granularity, cache size, workload, version,
  caller timestamp) making every persisted run replayable;
* :mod:`repro.obs.trace_io` — :class:`TraceWriter` /
  :class:`TraceReader`, streaming decision events as JSONL under that
  header;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, windowed gauges and log2 histograms, Prometheus text
  exposition, and :class:`MetricsProbe` feeding it from decisions;
* :mod:`repro.obs.httpd` — a stdlib-only HTTP ``/metrics`` endpoint;
* :mod:`repro.obs.report` — the ``repro-report`` CLI: render one trace
  through the :mod:`repro.sim.reporting` dashboards, or diff two and
  gate CI on WAN-byte / hit-rate regressions.
"""

from repro.obs.httpd import MetricsServer
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    RunManifest,
    wall_clock_timestamp,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    LogHistogram,
    MetricsProbe,
    MetricsRegistry,
    WindowedGauge,
)
from repro.obs.trace_io import (
    RotatedTraceReader,
    TraceReader,
    TraceWriter,
    read_trace,
    rotated_segments,
)

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MANIFEST_SCHEMA",
    "MetricsProbe",
    "MetricsRegistry",
    "MetricsServer",
    "RunManifest",
    "RotatedTraceReader",
    "TraceReader",
    "TraceWriter",
    "WindowedGauge",
    "read_trace",
    "rotated_segments",
    "wall_clock_timestamp",
]
