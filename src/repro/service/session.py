"""The per-federation decision lock and its sanctioned holder seam.

Concurrency discipline (DESIGN.md §15): the PR-4 policy state — the
Landlord victim heaps, the global credit offset, the traffic ledger —
mutates **only** under the per-federation decision lock, and only
inside the ``locked_*`` methods of :class:`DecisionGate`.  Everything
else in :mod:`repro.service` (scheduler, server, loadgen) treats
policy, result, and pipeline as opaque: repro-lint RPR011 flags any
service code path that reaches a decision-lock-guarded mutator without
going through this seam.

Loads and bypasses *overlap* outside the lock: the gate returns as
soon as the decision is charged, and the caller ships the (simulated)
WAN transfer at its own pace while the next query decides.  Ordering
of decisions — which is all the policy state ever observes — is
therefore exactly the lock-acquisition order, which in a single-tenant
serial run is trace order: that is what makes the service
byte-identical to :meth:`~repro.sim.simulator.Simulator.run_stream`
in that mode (the golden-equivalence suite pins it).
"""

from __future__ import annotations

import asyncio
import weakref
from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.events import Decision
from repro.core.pipeline import DecisionPipeline, ResolvedQuery
from repro.obs.spans import (
    STAGE_ACCOUNT,
    STAGE_DECIDE,
    STAGE_QUERY,
)
from repro.sim.results import SimulationResult
from repro.sim.streaming import SampledSeries

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pipeline import QueryAccounting
    from repro.core.policies.base import CachePolicy
    from repro.workload.trace import PreparedQuery

#: federation -> its decision lock.  Weak keys: a lock lives exactly
#: as long as the federation whose shared cache it guards, and two
#: services over one federation contend on one lock.
_DECISION_LOCKS: "weakref.WeakKeyDictionary[object, asyncio.Lock]" = (
    weakref.WeakKeyDictionary()
)


def decision_lock_for(federation: object) -> asyncio.Lock:
    """The one decision lock guarding ``federation``'s shared cache."""
    lock = _DECISION_LOCKS.get(federation)
    if lock is None:
        lock = asyncio.Lock()
        _DECISION_LOCKS[federation] = lock
    return lock


class DecisionGate:
    """The sanctioned lock-holder seam around one shared cache.

    One gate wraps one (pipeline, policy, result) triple.  Its three
    ``locked_*`` methods are the *only* places in :mod:`repro.service`
    allowed to touch decision-lock-guarded state (RPR011); each takes
    the per-federation decision lock, replays the exact per-query
    sequence of :meth:`Simulator.run_stream` — process, account,
    charge, record, emit — and releases the lock before the caller
    ships any bytes.
    """

    def __init__(
        self,
        pipeline: DecisionPipeline,
        policy: "CachePolicy",
        record_series: bool = True,
        source: str = "service",
    ) -> None:
        self.pipeline = pipeline
        self.policy = policy
        self.source = source
        self.result = SimulationResult(
            policy_name=policy.name,
            granularity=pipeline.granularity,
            capacity_bytes=policy.capacity_bytes,
        )
        self._lock = decision_lock_for(pipeline.federation)
        self._series: Optional[SampledSeries] = (
            SampledSeries() if record_series else None
        )
        self._decided = 0
        self._sequence_bytes = 0
        self._shed = 0
        self._rejected = 0

    @property
    def decided(self) -> int:
        """Queries decided so far (full service + shed + rejected)."""
        return self._decided

    @property
    def shed_queries(self) -> int:
        return self._shed

    @property
    def rejected_queries(self) -> int:
        return self._rejected

    async def locked_resolve(
        self, prepared: "PreparedQuery"
    ) -> Tuple[int, Decision, "QueryAccounting"]:
        """Full service: decide one query under the decision lock.

        The lock covers policy mutation (victim heaps, Landlord
        offset), result charging, series recording, and event
        emission — the atomic unit whose ordering defines the run.
        The WAN transfer itself happens in the caller, outside.
        """
        pipeline = self.pipeline
        policy = self.policy
        async with self._lock:
            index = self._decided
            self._decided += 1
            self._sequence_bytes += prepared.bypass_bytes
            query = pipeline.query_from_prepared(prepared, index)
            tracer = pipeline.tracer
            if tracer is not None:
                root = tracer.start(
                    STAGE_QUERY, index=index, tenant=prepared.tenant
                )
                with tracer.span(STAGE_DECIDE, index=index):
                    decision = policy.process(query)
                with tracer.span(STAGE_ACCOUNT, index=index):
                    accounting = pipeline.account(
                        decision,
                        bypass_bytes=prepared.bypass_bytes,
                        servers=tuple(prepared.servers),
                    )
                tracer.finish(
                    root,
                    bytes_moved=int(accounting.wan_bytes),
                    served=decision.served_from_cache,
                )
            else:
                decision = policy.process(query)
                accounting = pipeline.account(
                    decision,
                    bypass_bytes=prepared.bypass_bytes,
                    servers=tuple(prepared.servers),
                )
            self.result.charge(accounting, decision)
            if self._series is not None:
                self._series.observe(self.result.breakdown.total_bytes)
            pipeline.emit_decision(
                index=index,
                source=self.source,
                policy_name=policy.name,
                decision=decision,
                accounting=accounting,
                sql=prepared.sql,
                yield_bytes=prepared.yield_bytes,
                tenant=prepared.tenant,
            )
        return index, decision, accounting

    async def locked_shed(
        self, prepared: "PreparedQuery"
    ) -> Tuple[int, Decision, "QueryAccounting"]:
        """Degraded service: bypass-only, policy state untouched.

        A shed query still gets its answer — the result ships past the
        cache exactly as a policy bypass would — but the shared cache
        is never consulted or mutated, so an overloaded (or
        rate-limited) tenant costs other tenants no heap churn.
        Charged and emitted under the lock so aggregate accounting
        stays a partition (outcome ``"shed"``).
        """
        pipeline = self.pipeline
        async with self._lock:
            index = self._decided
            self._decided += 1
            self._sequence_bytes += prepared.bypass_bytes
            self._shed += 1
            decision = Decision(served_from_cache=False)
            accounting = pipeline.account(
                decision,
                bypass_bytes=prepared.bypass_bytes,
                servers=tuple(prepared.servers),
            )
            self.result.charge(accounting, decision)
            if self._series is not None:
                self._series.observe(self.result.breakdown.total_bytes)
            pipeline.emit_decision(
                index=index,
                source=self.source,
                policy_name=self.policy.name,
                decision=decision,
                accounting=accounting,
                sql=prepared.sql,
                yield_bytes=prepared.yield_bytes,
                outcome="shed",
                tenant=prepared.tenant,
            )
        return index, decision, accounting

    async def locked_reject(
        self, prepared: "PreparedQuery"
    ) -> Tuple[int, Decision, "QueryAccounting"]:
        """Refusal: zero bytes move, the query surfaces unavailable.

        Only reached when the tenant is over its soft backlog bound
        *and* the service-wide backlog has hit the hard bound;
        recorded (outcome ``"unavailable"``) so the availability SLO
        sees every refusal.
        """
        pipeline = self.pipeline
        async with self._lock:
            index = self._decided
            self._decided += 1
            self._sequence_bytes += prepared.bypass_bytes
            self._rejected += 1
            resolved = ResolvedQuery(
                decision=Decision(served_from_cache=False),
                accounting=pipeline.account(
                    Decision(served_from_cache=False), bypass_bytes=0
                ),
                outcome="unavailable",
            )
            self.result.charge_resolved(resolved)
            if self._series is not None:
                self._series.observe(self.result.breakdown.total_bytes)
            pipeline.emit_decision(
                index=index,
                source=self.source,
                policy_name=self.policy.name,
                decision=resolved.decision,
                accounting=resolved.accounting,
                sql=prepared.sql,
                yield_bytes=prepared.yield_bytes,
                outcome="unavailable",
                tenant=prepared.tenant,
            )
        return index, resolved.decision, resolved.accounting

    def finalize(self) -> SimulationResult:
        """Seal and return the accumulated result (run_stream shape)."""
        result = self.result
        result.queries = self._decided
        result.sequence_bytes = float(self._sequence_bytes)
        if self._series is not None:
            result.cumulative_bytes = self._series.points()
            result.series_stride = self._series.stride
        return result


__all__ = ["DecisionGate", "decision_lock_for"]
