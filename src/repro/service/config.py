"""Service configuration: hardened knob parsing + ``ServiceConfig``.

Every externally-supplied knob goes through a
:func:`~repro.experiments.common.parse_worker_count`-style parser:
garbage raises :class:`~repro.errors.ConfigurationError` naming the
flag, and the CLIs translate that into exit code 2 — never a silent
fallback that would let a typo'd ``--tenant-rate`` run an unlimited
service.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.experiments.common import parse_bounded_int

#: Spellings that disable a rate limit (unlimited tokens).
_UNLIMITED_SPELLINGS = frozenset({"0", "off", "none", "unlimited"})


def parse_port(raw: str, source: str = "--port") -> int:
    """Parse a TCP port: an integer in [0, 65535] (0 = ephemeral).

    Raises:
        ConfigurationError: non-integers or out-of-range values,
            naming ``source``.
    """
    return parse_bounded_int(
        raw,
        source=source,
        minimum=0,
        maximum=65535,
        what="TCP port (0 picks an ephemeral port)",
    )


def parse_max_inflight(raw: str, source: str = "--max-inflight") -> int:
    """Parse the global in-service concurrency bound (>= 1)."""
    return parse_bounded_int(
        raw,
        source=source,
        minimum=1,
        maximum=None,
        what="in-flight query bound",
    )


def parse_tenant_rate(raw: str, source: str = "--tenant-rate") -> float:
    """Parse a per-tenant token-bucket rate in tokens per logical tick.

    Accepts ``0`` / ``off`` / ``none`` / ``unlimited`` to disable rate
    limiting (returned as ``0.0``) and any positive decimal number for
    a finite refill rate.  Anything else raises
    :class:`~repro.errors.ConfigurationError` naming ``source``.
    """
    text = raw.strip().lower()
    if text in _UNLIMITED_SPELLINGS:
        return 0.0
    try:
        value = float(text)
    except ValueError:
        raise ConfigurationError(
            f"{source} must be a positive tokens-per-tick rate or one "
            f"of 0/off/none/unlimited, got {raw!r}"
        ) from None
    if not value > 0.0 or value != value or value == float("inf"):
        raise ConfigurationError(
            f"{source} rate must be > 0 (use 0/off/none/unlimited to "
            f"disable rate limiting), got {raw!r}"
        )
    return value


def parse_queue_depth(raw: str, source: str = "--queue-depth") -> int:
    """Parse the per-tenant bounded-queue depth (>= 1)."""
    return parse_bounded_int(
        raw,
        source=source,
        minimum=1,
        maximum=None,
        what="per-tenant queue depth",
    )


@dataclass(frozen=True)
class ServiceConfig:
    """Admission-control and bind configuration for one service.

    Attributes:
        host: Bind address (loopback by default — expose deliberately).
        port: TCP port; 0 picks a free ephemeral port.
        max_inflight: Global bound on queries concurrently in full
            service (decided + shipping); admitted work beyond it
            waits in its tenant's bounded queue.
        tenant_rate: Token-bucket refill per tenant in tokens per
            logical arrival tick; ``0.0`` disables rate limiting.
        tenant_burst: Token-bucket capacity (burst allowance).
        queue_depth: Soft per-tenant backlog bound: arrivals beyond it
            are shed to bypass-only service.
        reject_depth: Hard *service-wide* backlog bound: an arrival
            whose tenant is already at its soft bound is refused
            outright once the combined backlog of every tenant has
            reached this depth.  Must exceed ``queue_depth``; the
            default (2x) gives shedding a full queue's worth of
            headroom before the service ever says no.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_inflight: int = 8
    tenant_rate: float = 0.0
    tenant_burst: float = 8.0
    queue_depth: int = 64
    reject_depth: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigurationError(
                f"port must be in [0, 65535], got {self.port}"
            )
        if self.max_inflight < 1:
            raise ConfigurationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.tenant_rate < 0.0:
            raise ConfigurationError(
                f"tenant_rate must be >= 0, got {self.tenant_rate}"
            )
        if self.tenant_burst < 1.0:
            raise ConfigurationError(
                f"tenant_burst must be >= 1, got {self.tenant_burst}"
            )
        if self.queue_depth < 1:
            raise ConfigurationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )
        if self.reject_depth == 0:
            object.__setattr__(
                self, "reject_depth", 2 * self.queue_depth
            )
        if self.reject_depth <= self.queue_depth:
            raise ConfigurationError(
                f"reject_depth ({self.reject_depth}) must exceed "
                f"queue_depth ({self.queue_depth}) — shedding must "
                f"get a chance before refusal"
            )
