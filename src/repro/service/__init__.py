"""``repro.service``: the async multi-tenant mediator service.

The paper's bypass-yield proxy finally serving *live* clients: an
asyncio mediator server (stdlib-only, like :mod:`repro.obs.httpd`)
accepts concurrent query streams from many named tenants over a
JSON-lines-over-HTTP protocol and drives the shared
:class:`~repro.core.pipeline.DecisionPipeline` /
:class:`~repro.core.policies.online.BypassObjectCache` pair under a
per-federation decision lock, with admission control in front
(bounded per-tenant queues, token-bucket rate limits, and
shed-to-bypass before reject).

Layering:

* :mod:`repro.service.config` — hardened knob parsing + ``ServiceConfig``;
* :mod:`repro.service.protocol` — the JSON-lines request/response wire format;
* :mod:`repro.service.session` — the decision lock and its sanctioned
  holder seam (:class:`DecisionGate`);
* :mod:`repro.service.scheduler` — token buckets, bounded tenant
  queues, round-robin draining;
* :mod:`repro.service.server` — the asyncio HTTP server
  (``/query``, ``/healthz``, ``/metrics``, ``/slo``);
* :mod:`repro.service.loadgen` — the trace replayer as load generator;
* :mod:`repro.service.cli` — the ``repro-serve`` entry point.

Determinism boundary: a single-tenant serial run through the service
is byte-identical (decisions and WAN totals) to
:meth:`repro.sim.simulator.Simulator.run_stream`; concurrent
interleaves conserve aggregate accounting (per-tenant counter sums
equal the untagged totals) but individual decisions depend on arrival
order — see DESIGN.md §15.
"""

from repro.service.config import (
    ServiceConfig,
    parse_max_inflight,
    parse_port,
    parse_tenant_rate,
)
from repro.service.scheduler import (
    AdmissionController,
    AdmissionStatus,
    TokenBucket,
)
from repro.service.server import MediatorService
from repro.service.session import DecisionGate, decision_lock_for

__all__ = [
    "AdmissionController",
    "AdmissionStatus",
    "DecisionGate",
    "MediatorService",
    "ServiceConfig",
    "TokenBucket",
    "decision_lock_for",
    "parse_max_inflight",
    "parse_port",
    "parse_tenant_rate",
]
