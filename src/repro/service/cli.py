"""CLI: ``repro-serve`` — run the multi-tenant mediator service.

Usage::

    python -m repro.workload.make_trace -n 2000 --prepare -o edr.jsonl
    repro-serve --profile small --policy rate-profile \\
        --capacity-frac 0.3 --port 8791 \\
        --trace-out runs/service.jsonl --slo examples/slo_service.json

The federation is rebuilt from the named scale profile exactly as
``repro.sim.simulate`` does, so a service run over a prepared trace is
directly comparable (``repro-report --diff``) to a simulator run over
the same trace.  All admission knobs go through the hardened parsers
in :mod:`repro.service.config`: garbage exits 2 before anything binds.

The process serves until ``POST /shutdown`` (or SIGINT), then closes
its trace/span sinks — which is what makes the CI smoke job's
artifacts deterministic and complete.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.core.instrumentation import Instrumentation
from repro.errors import ConfigurationError, ReproError
from repro.federation.federation import Federation
from repro.federation.server import DatabaseServer
from repro.service.config import (
    ServiceConfig,
    parse_max_inflight,
    parse_port,
    parse_queue_depth,
    parse_tenant_rate,
)
from repro.service.server import MediatorService
from repro.sim.runner import build_policy
from repro.sim.simulate import KNOWN_POLICIES
from repro.workload.sdss_schema import (
    PROFILES,
    build_first_catalog,
    build_sdss_catalog,
)
from repro.workload.trace import PreparedTrace


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve bypass-caching decisions to many tenants.",
    )
    parser.add_argument(
        "--profile", default="small", choices=sorted(PROFILES),
        help="scale profile to rebuild the federation from",
    )
    parser.add_argument(
        "--policy", default="rate-profile", choices=KNOWN_POLICIES,
        help="shared cache policy (static needs --trace for its "
        "offline selection)",
    )
    parser.add_argument(
        "--granularity", default="table", choices=("table", "column"),
    )
    parser.add_argument(
        "--capacity-frac", type=float, default=0.3,
        help="cache size as a fraction of the database",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PREPARED",
        help="prepared trace backing the static policy's selection",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", default="0",
        help="TCP port (0 picks a free one; printed on startup)",
    )
    parser.add_argument(
        "--max-inflight", default="8",
        help="concurrent decision workers",
    )
    parser.add_argument(
        "--tenant-rate", default="0",
        help=(
            "per-tenant admitted queries per arrival tick "
            "(0/off/none/unlimited disables rate limiting)"
        ),
    )
    parser.add_argument(
        "--queue-depth", default="64",
        help="per-tenant backlog before shedding to bypass-only",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="stream the decision trace (JSONL) for repro-report",
    )
    parser.add_argument(
        "--span-out", default=None, metavar="PATH",
        help="stream spans (JSONL) alongside the decision trace",
    )
    parser.add_argument(
        "--slo", default=None, metavar="SPEC",
        help="SLO spec (JSON) to evaluate live at GET /slo",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="tracer seed (span ids are derived from it)",
    )
    return parser


async def _serve(service: MediatorService, host: str, port: int) -> None:
    await service.start(host, port)
    print(f"serving on http://{host}:{service.port}", flush=True)
    await service.serve_until_shutdown()


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        config = ServiceConfig(
            host=args.host,
            port=parse_port(args.port),
            max_inflight=parse_max_inflight(args.max_inflight),
            tenant_rate=parse_tenant_rate(args.tenant_rate),
            queue_depth=parse_queue_depth(args.queue_depth),
        )
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not 0.0 < args.capacity_frac <= 1.0:
        print("capacity-frac must be in (0, 1]", file=sys.stderr)
        return 2

    prepared: Optional[PreparedTrace] = None
    if args.trace is not None:
        try:
            prepared = PreparedTrace.load(args.trace)
        except FileNotFoundError:
            print(f"no such trace file: {args.trace}", file=sys.stderr)
            return 2
    if args.policy == "static" and prepared is None:
        print(
            "--policy static needs --trace for its offline selection",
            file=sys.stderr,
        )
        return 2

    profile = PROFILES[args.profile]
    federation = Federation.single_site(build_sdss_catalog(profile), "sdss")
    federation.add_server(
        DatabaseServer("first", build_first_catalog(profile))
    )
    capacity = max(
        1, int(federation.total_database_bytes() * args.capacity_frac)
    )
    try:
        policy = build_policy(
            args.policy, capacity, prepared, federation,
            args.granularity,
        )
    except ReproError as exc:
        print(str(exc), file=sys.stderr)
        return 2

    slo_engine = None
    if args.slo is not None:
        from repro.obs.slo import SLOEngine, SLOSpec

        try:
            slo_engine = SLOEngine(SLOSpec.load(args.slo))
        except (OSError, ReproError, ValueError) as exc:
            print(f"bad SLO spec {args.slo}: {exc}", file=sys.stderr)
            return 2

    instrumentation = Instrumentation(max_events=0)
    trace_writer = None
    if args.trace_out is not None:
        from repro.obs.manifest import RunManifest, wall_clock_timestamp
        from repro.obs.trace_io import TraceWriter

        manifest = RunManifest(
            workload=prepared.name if prepared is not None else "service",
            policy=args.policy,
            granularity=args.granularity,
            capacity_bytes=capacity,
            source="service",
            created_at=wall_clock_timestamp(),
        )
        trace_writer = TraceWriter(args.trace_out, manifest)
        instrumentation.add_probe(trace_writer)

    tracer = None
    span_writer = None
    if args.span_out is not None:
        from repro.obs.spans import SpanTracer, SpanWriter

        tracer = SpanTracer(
            seed=args.seed,
            run_label=f"service-{args.policy}",
            wall_clock=False,
        )
        span_writer = SpanWriter(args.span_out, tracer)
        tracer.add_sink(span_writer)

    service = MediatorService(
        federation,
        policy,
        config=config,
        granularity=args.granularity,
        policy_sees_weights=True,
        instrumentation=instrumentation,
        tracer=tracer,
        slo_engine=slo_engine,
    )
    try:
        asyncio.run(_serve(service, args.host, config.port))
    except KeyboardInterrupt:
        pass
    finally:
        if trace_writer is not None:
            trace_writer.close()
            print(
                f"wrote {trace_writer.events_written} events to "
                f"{args.trace_out}"
            )
        if span_writer is not None:
            span_writer.close()
            print(
                f"wrote {span_writer.spans_written} spans to "
                f"{args.span_out}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
