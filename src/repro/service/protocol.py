"""The JSON-lines wire format of the mediator service.

One request per line, one response line per request, order preserved
within a POST body::

    {"id": 7, "tenant": "astro-1", "query": {...PreparedQuery...}}

    {"accepted": true, "decision": "bypassed", "id": 7, ...}

Requests carry a full prepared-query payload (the client measured or
replayed yields offline; the server owns only sizes, weights, and the
shared cache), plus an optional ``tenant`` override — when present it
wins over the prepared query's own tag, which is how the load
generator fans one untagged trace across simulated tenants.

Everything here is pure parsing/formatting: malformed input raises
:class:`ProtocolError` with a line-scoped message, and responses
serialize with sorted keys so wire bytes are deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.workload.trace import PreparedQuery


class ProtocolError(ValueError):
    """A request line the service cannot parse or validate."""


@dataclass(frozen=True)
class QueryRequest:
    """One decoded client request."""

    request_id: int
    tenant: str
    prepared: PreparedQuery


@dataclass(frozen=True)
class QueryResponse:
    """One service answer, mirrored back with the request id.

    ``status`` is the admission outcome — ``"ok"`` (full service),
    ``"shed"`` (degraded to bypass-only), or ``"rejected"`` — while
    ``outcome`` carries the decision-path verdict recorded in the
    trace (``"served"``/``"bypassed"``/``"shed"``/``"unavailable"``).
    """

    request_id: int
    tenant: str
    status: str
    outcome: str
    index: int
    wan_bytes: int
    weighted_cost: float

    def to_json(self) -> Dict[str, object]:
        return {
            "id": self.request_id,
            "tenant": self.tenant,
            "status": self.status,
            "outcome": self.outcome,
            "index": self.index,
            "wan_bytes": self.wan_bytes,
            "weighted_cost": self.weighted_cost,
        }


def decode_request(line: str, line_no: int = 0) -> QueryRequest:
    """Parse one request line; raises :class:`ProtocolError`."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            f"request line {line_no}: invalid JSON: {exc}"
        ) from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request line {line_no}: expected a JSON object"
        )
    request_id = payload.get("id", line_no)
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError(
            f"request line {line_no}: 'id' must be an integer"
        )
    tenant = payload.get("tenant", "")
    if not isinstance(tenant, str):
        raise ProtocolError(
            f"request line {line_no}: 'tenant' must be a string"
        )
    query = payload.get("query")
    if not isinstance(query, dict):
        raise ProtocolError(
            f"request line {line_no}: 'query' must be a prepared-query "
            f"object"
        )
    try:
        prepared = PreparedQuery.from_json(query)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            f"request line {line_no}: malformed prepared query: {exc}"
        ) from None
    if tenant and prepared.tenant != tenant:
        prepared = replace(prepared, tenant=tenant)
    return QueryRequest(
        request_id=request_id,
        tenant=tenant or prepared.tenant,
        prepared=prepared,
    )


def encode_request(
    prepared: PreparedQuery,
    request_id: int,
    tenant: Optional[str] = None,
) -> str:
    """Format one request line (no trailing newline)."""
    payload: Dict[str, object] = {
        "id": request_id,
        "query": prepared.to_json(),
    }
    if tenant is not None:
        payload["tenant"] = tenant
    return json.dumps(payload, sort_keys=True)


def encode_response(response: QueryResponse) -> str:
    """Format one response line (no trailing newline)."""
    return json.dumps(response.to_json(), sort_keys=True)


def decode_response(line: str) -> QueryResponse:
    """Parse one response line (the load generator's side)."""
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"invalid response JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise ProtocolError("response must be a JSON object")
    try:
        return QueryResponse(
            request_id=int(payload["id"]),
            tenant=str(payload["tenant"]),
            status=str(payload["status"]),
            outcome=str(payload["outcome"]),
            index=int(payload["index"]),
            wan_bytes=int(payload["wan_bytes"]),
            weighted_cost=float(payload["weighted_cost"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed response: {exc}") from None
