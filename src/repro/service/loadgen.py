"""The trace replayer as load generator for the mediator service.

``repro.service.loadgen`` fans a prepared
:class:`~repro.workload.stream.QueryStream` out across simulated
tenants (:class:`~repro.workload.stream.TenantFanoutStream` — a seeded
keyed-hash interleave, so the same seed replays the same arrival
pattern) and drives the service either **in-process** (the test
suites' deterministic mode) or **over HTTP** (the CI smoke job's
mode, one thread per tenant for genuine concurrency).

After a drive, :func:`check_conservation` parses the service's
``/metrics`` exposition and verifies the paper-keeping invariant that
makes per-tenant WAN attribution trustworthy: summing any tenant
counter family over its labels reproduces the untagged aggregate
exactly — attribution is a partition, not a sample.

CLI (HTTP mode)::

    python -m repro.service.loadgen --url http://127.0.0.1:8791 \\
        --trace edr.jsonl.prepared.jsonl --tenants 3 --seed 7 \\
        --check-conservation --shutdown
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import sys
import time
import urllib.parse
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.common import parse_bounded_int
from repro.service.protocol import (
    QueryRequest,
    QueryResponse,
    decode_response,
    encode_request,
)
from repro.service.server import MediatorService
from repro.workload.stream import (
    MaterializedStream,
    QueryStream,
    TenantFanoutStream,
)
from repro.workload.trace import PreparedQuery, PreparedTrace

#: Metric families whose per-label sums must equal these aggregates.
#: wan bytes: loads + bypass + retry waste (the DecisionEvent total).
_CONSERVATION_CHECKS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("repro_tenant_decisions_total", ("repro_decisions_total",)),
    ("repro_tenant_served_total", ("repro_decisions_served_total",)),
    (
        "repro_tenant_wan_bytes_total",
        (
            "repro_wan_load_bytes_total",
            "repro_wan_bypass_bytes_total",
            "repro_wan_retry_bytes_total",
        ),
    ),
    (
        "repro_tenant_weighted_cost_total",
        ("repro_wan_weighted_cost_total",),
    ),
)


@dataclass
class DriveReport:
    """What one load-generation pass observed."""

    responses: List[QueryResponse] = field(default_factory=list)
    errors: List[str] = field(default_factory=list)

    @property
    def by_status(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for response in self.responses:
            counts[response.status] = (
                counts.get(response.status, 0) + 1
            )
        return counts

    @property
    def by_tenant(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for response in self.responses:
            counts[response.tenant] = (
                counts.get(response.tenant, 0) + 1
            )
        return counts

    @property
    def wan_bytes(self) -> int:
        return sum(r.wan_bytes for r in self.responses)


def fan_out(
    stream: QueryStream, tenants: int, seed: int = 0
) -> QueryStream:
    """Wrap ``stream`` in a seeded tenant fan-out (identity at 1)."""
    return TenantFanoutStream(stream, tenants, seed)


def requests_from(
    stream: Iterable[PreparedQuery],
) -> List[QueryRequest]:
    """Materialize the arrival sequence as protocol requests."""
    return [
        QueryRequest(
            request_id=position, tenant=prepared.tenant,
            prepared=prepared,
        )
        for position, prepared in enumerate(stream)
    ]


async def drive_service(
    service: MediatorService,
    stream: Iterable[PreparedQuery],
    serial: bool = False,
) -> DriveReport:
    """Drive an in-process service with ``stream``'s arrival order.

    ``serial=True`` awaits each response before submitting the next —
    the single-tenant golden-equivalence mode.  Otherwise every
    request is submitted up front (arrival order = stream order) and
    responses interleave under the scheduler.
    """
    report = DriveReport()
    requests = requests_from(stream)
    if serial:
        for request in requests:
            report.responses.append(await service.submit(request))
    else:
        report.responses = list(
            await asyncio.gather(
                *(service.submit(request) for request in requests)
            )
        )
    return report


def _split_url(url: str) -> Tuple[str, int]:
    parsed = urllib.parse.urlsplit(url)
    if parsed.scheme != "http" or parsed.hostname is None:
        raise ConfigurationError(
            f"--url must be an http://host:port URL, got {url!r}"
        )
    return parsed.hostname, parsed.port or 80


def http_get(url: str, path: str, timeout: float = 10.0) -> str:
    """One GET against the service; returns the decoded body."""
    host, port = _split_url(url)
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request("GET", path)
        response = connection.getresponse()
        body = response.read().decode("utf-8")
        if response.status != 200:
            raise ConfigurationError(
                f"GET {path} -> {response.status}: {body.strip()}"
            )
        return body
    finally:
        connection.close()


def http_post(
    url: str, path: str, body: str, timeout: float = 60.0
) -> str:
    """One POST against the service; returns the decoded body."""
    host, port = _split_url(url)
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            path,
            body.encode("utf-8"),
            {"Content-Type": "application/jsonlines; charset=utf-8"},
        )
        response = connection.getresponse()
        payload = response.read().decode("utf-8")
        if response.status != 200:
            raise ConfigurationError(
                f"POST {path} -> {response.status}: {payload.strip()}"
            )
        return payload
    finally:
        connection.close()


def wait_ready(
    url: str, attempts: int = 100, delay: float = 0.1
) -> None:
    """Poll ``/healthz`` until the service answers (or give up)."""
    for attempt in range(attempts):
        try:
            if http_get(url, "/healthz").strip() == "ok":
                return
        except (ConfigurationError, OSError):
            pass
        time.sleep(delay)
    raise ConfigurationError(
        f"service at {url} not ready after {attempts} attempts"
    )


def _post_batches(
    url: str,
    requests: Sequence[QueryRequest],
    batch_size: int,
    report: DriveReport,
) -> None:
    for start in range(0, len(requests), batch_size):
        batch = requests[start:start + batch_size]
        body = "".join(
            encode_request(
                request.prepared, request.request_id, request.tenant
            )
            + "\n"
            for request in batch
        )
        for line in http_post(url, "/query", body).splitlines():
            if not line.strip():
                continue
            if '"error"' in line and '"status"' not in line:
                report.errors.append(line)
                continue
            report.responses.append(decode_response(line))


def drive_http(
    url: str,
    stream: Iterable[PreparedQuery],
    batch_size: int = 64,
    serial: bool = False,
) -> DriveReport:
    """Drive a remote service over HTTP.

    Serial mode posts one request at a time over one logical client —
    arrival order is exactly stream order (the golden-equivalence
    mode).  Concurrent mode groups requests by tenant (preserving each
    tenant's FIFO order) and posts each tenant's batches from its own
    thread, so tenants genuinely race on the server's admission clock.
    """
    report = DriveReport()
    requests = requests_from(stream)
    if serial:
        _post_batches(url, requests, 1, report)
        return report
    lanes: Dict[str, List[QueryRequest]] = {}
    for request in requests:
        lanes.setdefault(request.tenant, []).append(request)
    if len(lanes) <= 1:
        _post_batches(url, requests, batch_size, report)
        return report
    with ThreadPoolExecutor(max_workers=len(lanes)) as pool:
        futures = [
            pool.submit(
                _post_batches, url, lane, batch_size, report
            )
            for _tenant, lane in sorted(lanes.items())
        ]
        for future in futures:
            future.result()
    return report


def parse_metrics(text: str) -> Dict[str, float]:
    """Prometheus text exposition -> {series (with labels): value}."""
    series: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            series[name] = float(value)
        except ValueError:
            continue
    return series


def check_conservation(
    metrics_text: str, tolerance: float = 1e-6
) -> List[str]:
    """Per-tenant sums must reproduce the untagged aggregates.

    Returns human-readable failure lines (empty == conserved).  Byte
    and decision families must match exactly; the weighted-cost family
    gets a relative ``tolerance`` for float summation order.
    """
    series = parse_metrics(metrics_text)
    failures: List[str] = []
    for family, aggregates in _CONSERVATION_CHECKS:
        tenant_sum = sum(
            value
            for name, value in series.items()
            if name.startswith(family + "{")
        )
        aggregate = sum(series.get(name, 0.0) for name in aggregates)
        bound = tolerance * max(1.0, abs(aggregate))
        if abs(tenant_sum - aggregate) > bound:
            failures.append(
                f"{family}: tenant sum {tenant_sum!r} != aggregate "
                f"{aggregate!r} ({' + '.join(aggregates)})"
            )
    return failures


def _summary(report: DriveReport) -> str:
    statuses = ", ".join(
        f"{status}={count}"
        for status, count in sorted(report.by_status.items())
    ) or "none"
    tenants = ", ".join(
        f"{tenant or 'untagged'}={count}"
        for tenant, count in sorted(report.by_tenant.items())
    ) or "none"
    return (
        f"{len(report.responses)} responses ({statuses}); "
        f"tenants: {tenants}; wan_bytes={report.wan_bytes}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.loadgen",
        description="Replay a prepared trace against a mediator service.",
    )
    parser.add_argument("--url", required=True, help="service base URL")
    parser.add_argument(
        "--trace", required=True, help="prepared trace (JSONL)"
    )
    parser.add_argument(
        "--tenants", default="2",
        help="simulated tenant count (1 keeps original tags)",
    )
    parser.add_argument(
        "--seed", default="0", help="tenant-interleave seed"
    )
    parser.add_argument(
        "--batch", default="64", help="requests per POST body"
    )
    parser.add_argument(
        "--serial", action="store_true",
        help="one request at a time, in trace order",
    )
    parser.add_argument(
        "--check-conservation", action="store_true",
        help=(
            "after the drive, scrape /metrics and require per-tenant "
            "sums to equal the untagged totals"
        ),
    )
    parser.add_argument(
        "--shutdown", action="store_true",
        help="POST /shutdown after driving (flushes server sinks)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        tenants = parse_bounded_int(
            args.tenants, source="--tenants", minimum=1,
            what="tenant count",
        )
        seed = parse_bounded_int(
            args.seed, source="--seed", minimum=0, what="seed"
        )
        batch = parse_bounded_int(
            args.batch, source="--batch", minimum=1,
            what="batch size",
        )
        _split_url(args.url)
    except ConfigurationError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        prepared = PreparedTrace.load(args.trace)
    except FileNotFoundError:
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    stream = fan_out(MaterializedStream(prepared), tenants, seed)
    try:
        wait_ready(args.url)
        report = drive_http(
            args.url, stream, batch_size=batch, serial=args.serial
        )
        print(_summary(report))
        for error in report.errors:
            print(f"error response: {error}", file=sys.stderr)
        failures: List[str] = []
        if args.check_conservation:
            failures = check_conservation(
                http_get(args.url, "/metrics")
            )
            for failure in failures:
                print(f"conservation: {failure}", file=sys.stderr)
            if not failures:
                print("per-tenant series sum to untagged totals")
        if args.shutdown:
            print(http_post(args.url, "/shutdown", "").strip())
    except (ConfigurationError, OSError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    return 1 if (report.errors or failures) else 0


if __name__ == "__main__":
    sys.exit(main())
