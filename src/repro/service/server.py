"""The asyncio mediator server: many tenants, one shared cache.

Stdlib-only (``asyncio`` streams, hand-rolled HTTP/1.1 — the same
dependency posture as :mod:`repro.obs.httpd`), one event-loop thread.
Routes:

* ``POST /query`` — a body of JSON request lines (see
  :mod:`repro.service.protocol`); the response body carries one JSON
  line per request, in request order.
* ``GET /healthz`` — liveness (``ok``).
* ``GET /metrics`` — Prometheus text exposition of the service's
  registry (per-tenant WAN attribution included).
* ``GET /slo`` — current SLO evaluation as JSON (404 without an
  engine).
* ``GET /stats`` — admission/shedding counters as JSON.
* ``POST /shutdown`` — graceful stop (the smoke jobs use it to flush
  trace/span sinks deterministically).

Request flow: every arrival advances the logical admission clock and
runs the shedding ladder (:class:`~repro.service.scheduler.AdmissionController`).
Admitted queries wait in their tenant's bounded queue; a drain loop
feeds them round-robin to worker tasks, bounded by
``config.max_inflight``.  Workers decide under the per-federation
decision lock (:class:`~repro.service.session.DecisionGate` — the
sanctioned seam) and ship the WAN transfer *outside* it, so loads and
bypasses overlap while the next query decides.
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.instrumentation import (
    DecisionEvent,
    Instrumentation,
    Probe,
)
from repro.core.pipeline import DecisionPipeline
from repro.obs.httpd import (
    CONTENT_TYPE,
    JSON_CONTENT_TYPE,
    TEXT_CONTENT_TYPE,
)
from repro.obs.metrics import MetricsProbe, MetricsRegistry
from repro.service.config import ServiceConfig
from repro.service.protocol import (
    ProtocolError,
    QueryRequest,
    QueryResponse,
    decode_request,
    encode_response,
)
from repro.service.scheduler import (
    AdmissionController,
    AdmissionStatus,
)
from repro.service.session import DecisionGate

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.events import Decision
    from repro.core.pipeline import QueryAccounting
    from repro.core.policies.base import CachePolicy
    from repro.federation.federation import Federation
    from repro.obs.slo import SLOEngine
    from repro.obs.spans import Tracer
    from repro.sim.results import SimulationResult
    from repro.workload.trace import PreparedQuery

#: One queued unit: the prepared query and the future its submitter
#: awaits (resolved with (index, decision, accounting)).
_QueueItem = Tuple["PreparedQuery", "asyncio.Future[Tuple[int, object, object]]"]


class _SLOForwarder(Probe):
    """Forward decision events into a live SLO engine."""

    def __init__(self, engine: "SLOEngine") -> None:
        self._engine = engine

    def on_decision(self, event: DecisionEvent) -> None:
        self._engine.observe_event(event)


class MediatorService:
    """One shared-cache serving endpoint over one federation.

    Args:
        federation: Object sizes, link weights, servers.
        policy: The shared cache policy every tenant's queries drive.
        config: Admission-control and bind settings.
        granularity: ``"table"`` or ``"column"`` caching.
        policy_sees_weights: The BYHR/BYU cost-view flag.
        instrumentation: Observability sink; one is created
            (``max_events=0``) when omitted so ``/metrics`` always
            works.
        tracer: Optional span tracer (span emission happens under the
            decision lock — the tracer itself stays single-threaded).
        slo_engine: Optional live SLO engine backing ``/slo``.
        registry: Metrics registry; created when omitted.
        record_series: Record the cumulative WAN series in the result.
    """

    def __init__(
        self,
        federation: "Federation",
        policy: "CachePolicy",
        config: Optional[ServiceConfig] = None,
        granularity: str = "table",
        policy_sees_weights: bool = True,
        instrumentation: Optional[Instrumentation] = None,
        tracer: Optional["Tracer"] = None,
        slo_engine: Optional["SLOEngine"] = None,
        registry: Optional[MetricsRegistry] = None,
        record_series: bool = True,
    ) -> None:
        self.config = config or ServiceConfig()
        if instrumentation is None:
            instrumentation = Instrumentation(max_events=0)
        self.instrumentation = instrumentation
        self.registry = registry or MetricsRegistry()
        instrumentation.add_probe(MetricsProbe(self.registry))
        self.slo_engine = slo_engine
        if slo_engine is not None:
            instrumentation.add_probe(_SLOForwarder(slo_engine))
        pipeline = DecisionPipeline(
            federation,
            granularity,
            policy_sees_weights,
            instrumentation=instrumentation,
            tracer=tracer,
        )
        self.pipeline = pipeline
        self.gate = DecisionGate(
            pipeline, policy, record_series=record_series
        )
        self.admission: AdmissionController[_QueueItem] = (
            AdmissionController(self.config)
        )
        self._arrivals = 0
        self._inflight = 0
        self._ready = asyncio.Event()
        self._drain_task: Optional["asyncio.Task[None]"] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()

    # -- request processing ----------------------------------------------

    async def submit(self, request: QueryRequest) -> QueryResponse:
        """Run one request through admission and the decision path.

        The in-process entry point — the HTTP route, the loadgen's
        in-process mode, and the tests all land here.  Arrival order
        defines the logical admission clock.
        """
        tick = self._arrivals
        self._arrivals += 1
        status = self.admission.admit(request.tenant, tick)
        prepared = request.prepared
        if status is AdmissionStatus.REJECT:
            index, _, accounting = await self.gate.locked_reject(
                prepared
            )
            return self._response(
                request, "rejected", "unavailable", index, accounting
            )
        if status is AdmissionStatus.SHED:
            index, _, accounting = await self.gate.locked_shed(
                prepared
            )
            # Bypass shipping overlaps outside the decision lock.
            await self._ship(accounting)
            return self._response(
                request, "shed", "shed", index, accounting
            )
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Tuple[int, object, object]]" = (
            loop.create_future()
        )
        self.admission.enqueue(request.tenant, (prepared, future))
        self._ensure_drain()
        self._ready.set()
        index, decision, accounting = await future  # type: ignore[misc]
        outcome = (
            "served"
            if decision.served_from_cache  # type: ignore[attr-defined]
            else "bypassed"
        )
        return self._response(
            request, "ok", outcome, index, accounting  # type: ignore[arg-type]
        )

    def _response(
        self,
        request: QueryRequest,
        status: str,
        outcome: str,
        index: int,
        accounting: "QueryAccounting",
    ) -> QueryResponse:
        return QueryResponse(
            request_id=request.request_id,
            tenant=request.prepared.tenant,
            status=status,
            outcome=outcome,
            index=index,
            wan_bytes=int(accounting.wan_bytes),
            weighted_cost=float(accounting.weighted_cost),
        )

    async def _ship(self, accounting: "QueryAccounting") -> None:
        """The (simulated) WAN transfer window.

        One cooperative yield per transfer: enough to let another
        worker take the decision lock while this query's bytes are "on
        the wire", without coupling replay speed to wall time.
        """
        await asyncio.sleep(0)

    def _ensure_drain(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.get_running_loop().create_task(
                self._drain()
            )

    async def _drain(self) -> None:
        """Feed queued work to workers, round-robin, inflight-bounded."""
        while True:
            await self._ready.wait()
            self._ready.clear()
            while self._inflight < self.config.max_inflight:
                item = self.admission.next_ready()
                if item is None:
                    break
                _tenant, (prepared, future) = item
                self._inflight += 1
                asyncio.get_running_loop().create_task(
                    self._serve_one(prepared, future)
                )

    async def _serve_one(
        self,
        prepared: "PreparedQuery",
        future: "asyncio.Future[Tuple[int, object, object]]",
    ) -> None:
        try:
            index, decision, accounting = (
                await self.gate.locked_resolve(prepared)
            )
            # Loads/bypasses overlap outside the lock: the next query
            # decides while this one's bytes ship.
            await self._ship(accounting)
            if not future.cancelled():
                future.set_result((index, decision, accounting))
        except Exception as exc:  # surface failures to the submitter
            if not future.cancelled():
                future.set_exception(exc)
        finally:
            self._inflight -= 1
            self._ready.set()

    def result(self) -> "SimulationResult":
        """The accumulated run accounting (run_stream shape)."""
        return self.gate.finalize()

    def stats(self) -> Dict[str, object]:
        """Service-level counters for ``/stats``."""
        return {
            "decided": self.gate.decided,
            "shed": self.gate.shed_queries,
            "rejected": self.gate.rejected_queries,
            "inflight": self._inflight,
            "tenants": self.admission.stats(),
        }

    # -- HTTP surface ----------------------------------------------------

    async def start(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
    ) -> "MediatorService":
        """Bind and start accepting connections (idempotent)."""
        if self._server is None:
            self._server = await asyncio.start_server(
                self._on_connection,
                host if host is not None else self.config.host,
                port if port is not None else self.config.port,
            )
        return self

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            return 0
        return int(self._server.sockets[0].getsockname()[1])

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def serve_until_shutdown(self) -> None:
        """Serve until ``POST /shutdown`` (or :meth:`close`)."""
        await self.start()
        await self._shutdown.wait()
        await self.close()

    async def close(self) -> None:
        """Stop accepting connections and cancel the drain loop."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self._drain_task is not None:
            self._drain_task.cancel()
            self._drain_task = None

    async def _on_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    break
                try:
                    method, target, _version = (
                        request_line.decode("latin-1").split(" ", 2)
                    )
                except ValueError:
                    break
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = (
                        line.decode("latin-1").partition(":")
                    )
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                body = (
                    await reader.readexactly(length) if length else b""
                )
                status, ctype, payload = await self._route(
                    method.upper(), target.split("?", 1)[0], body
                )
                head = (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {ctype}\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    f"Connection: keep-alive\r\n\r\n"
                )
                writer.write(head.encode("latin-1") + payload)
                await writer.drain()
                if self._shutdown.is_set():
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ValueError,
        ):
            pass
        finally:
            writer.close()

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> Tuple[str, str, bytes]:
        if method == "GET" and path == "/healthz":
            return "200 OK", TEXT_CONTENT_TYPE, b"ok\n"
        if method == "GET" and path == "/metrics":
            text = self.registry.render_prometheus()
            return "200 OK", CONTENT_TYPE, text.encode("utf-8")
        if method == "GET" and path == "/slo":
            if self.slo_engine is None:
                return (
                    "404 Not Found",
                    TEXT_CONTENT_TYPE,
                    b"no SLO engine configured\n",
                )
            report = self.slo_engine.evaluate()
            payload = (
                json.dumps(report.to_json(), sort_keys=True) + "\n"
            )
            return "200 OK", JSON_CONTENT_TYPE, payload.encode("utf-8")
        if method == "GET" and path == "/stats":
            payload = json.dumps(self.stats(), sort_keys=True) + "\n"
            return "200 OK", JSON_CONTENT_TYPE, payload.encode("utf-8")
        if method == "POST" and path == "/shutdown":
            self._shutdown.set()
            return "200 OK", TEXT_CONTENT_TYPE, b"shutting down\n"
        if method == "POST" and path == "/query":
            return await self._route_query(body)
        return (
            "404 Not Found",
            TEXT_CONTENT_TYPE,
            b"unknown path (try /healthz)\n",
        )

    async def _route_query(
        self, body: bytes
    ) -> Tuple[str, str, bytes]:
        lines = [
            line
            for line in body.decode("utf-8").splitlines()
            if line.strip()
        ]
        responses: List[str] = await asyncio.gather(
            *(
                self._handle_line(line, line_no)
                for line_no, line in enumerate(lines)
            )
        )
        payload = "".join(text + "\n" for text in responses)
        return (
            "200 OK",
            "application/jsonlines; charset=utf-8",
            payload.encode("utf-8"),
        )

    async def _handle_line(self, line: str, line_no: int) -> str:
        try:
            request = decode_request(line, line_no)
        except ProtocolError as exc:
            return json.dumps(
                {"error": str(exc), "id": line_no}, sort_keys=True
            )
        response = await self.submit(request)
        return encode_response(response)


__all__ = ["MediatorService"]
