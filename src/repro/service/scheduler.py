"""Admission control: token buckets, bounded queues, fair draining.

Pure logic, no asyncio: the controller is driven by the server's
arrival clock (one logical tick per submitted request) and unit-tested
deterministically — the same arrival sequence always produces the same
admit/shed/reject pattern (LifeRaft's lesson: admission must be a
function of load, not of wall-clock jitter).

The shedding ladder degrades before it refuses:

1. **ADMIT** — backlog below the soft bound and a token available:
   full service through the shared cache.
2. **SHED** — backlog at the soft bound, or the tenant's token bucket
   is dry: bypass-only service.  The query is still answered (results
   ship past the cache, as the paper's bypass arm always could); the
   shared cache is neither consulted nor mutated.
3. **REJECT** — the tenant is at its soft bound *and* the
   service-wide backlog has reached the hard bound
   (``reject_depth``): the service as a whole cannot absorb the
   work, so over-bound tenants are refused and the query surfaces as
   unavailable.  Tenants under their soft bound keep full (or shed)
   service even then — refusal never reaches an innocent queue.

Queues are strictly per-tenant and drained round-robin, so a greedy
tenant saturates only its own bounded backlog — its overflow sheds to
bypass while other tenants' queues keep draining (the starvation test
pins this down).
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Dict, Generic, List, Optional, Tuple, TypeVar

from repro.service.config import ServiceConfig

T = TypeVar("T")


class AdmissionStatus(enum.Enum):
    """What the admission ladder decided for one arrival."""

    ADMIT = "admit"
    SHED = "shed"
    REJECT = "reject"


class TokenBucket:
    """A deterministic token bucket on the logical arrival clock.

    ``rate`` tokens accrue per tick (capped at ``burst``); each granted
    request spends one.  Refill is computed from tick deltas, never
    from wall time, so the grant pattern is a pure function of the
    arrival sequence — replaying the same ticks replays the same
    grants.  ``rate == 0`` disables limiting (always grants).
    """

    def __init__(self, rate: float, burst: float) -> None:
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self._last_tick = 0

    def try_take(self, tick: int) -> bool:
        """Spend one token at ``tick``; False when the bucket is dry."""
        if self.rate <= 0.0:
            return True
        if tick > self._last_tick:
            self.tokens = min(
                self.burst,
                self.tokens + (tick - self._last_tick) * self.rate,
            )
            self._last_tick = tick
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class _TenantLane(Generic[T]):
    """One tenant's bounded queue and rate state."""

    def __init__(self, config: ServiceConfig) -> None:
        self.pending: Deque[T] = deque()
        self.bucket = TokenBucket(
            config.tenant_rate, config.tenant_burst
        )
        self.admitted = 0
        self.shed = 0
        self.rejected = 0


class AdmissionController(Generic[T]):
    """Bounded per-tenant queues with shed-before-reject admission.

    Generic over the queued item type: the server enqueues
    ``(request, future)`` pairs, the tests enqueue plain markers.
    """

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self._lanes: Dict[str, _TenantLane[T]] = {}
        #: Round-robin cursor over tenant names, in first-seen order.
        self._order: List[str] = []
        self._cursor = 0

    def _lane(self, tenant: str) -> _TenantLane[T]:
        lane = self._lanes.get(tenant)
        if lane is None:
            lane = _TenantLane(self.config)
            self._lanes[tenant] = lane
            self._order.append(tenant)
        return lane

    def admit(self, tenant: str, tick: int) -> AdmissionStatus:
        """Run one arrival through the shedding ladder (pure; does
        not enqueue — callers enqueue on ADMIT via :meth:`enqueue`)."""
        lane = self._lane(tenant)
        backlog = len(lane.pending)
        if backlog >= self.config.queue_depth:
            if self.pending() >= self.config.reject_depth:
                lane.rejected += 1
                return AdmissionStatus.REJECT
            lane.shed += 1
            return AdmissionStatus.SHED
        if not lane.bucket.try_take(tick):
            lane.shed += 1
            return AdmissionStatus.SHED
        lane.admitted += 1
        return AdmissionStatus.ADMIT

    def enqueue(self, tenant: str, item: T) -> None:
        """Append an admitted item to its tenant's bounded queue."""
        self._lane(tenant).pending.append(item)

    def pending(self, tenant: Optional[str] = None) -> int:
        """Backlog of one tenant, or of every tenant combined."""
        if tenant is not None:
            lane = self._lanes.get(tenant)
            return len(lane.pending) if lane is not None else 0
        return sum(len(lane.pending) for lane in self._lanes.values())

    def next_ready(self) -> Optional[Tuple[str, T]]:
        """Pop the next queued item, round-robin across tenants.

        The cursor advances past the served tenant even when its queue
        still holds work, so 50 queued queries from one tenant and one
        from another drain interleaved — the second tenant waits at
        most one full rotation, never the greedy tenant's backlog.
        """
        if not self._order:
            return None
        for _ in range(len(self._order)):
            tenant = self._order[self._cursor]
            self._cursor = (self._cursor + 1) % len(self._order)
            lane = self._lanes[tenant]
            if lane.pending:
                return tenant, lane.pending.popleft()
        return None

    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant admitted/shed/rejected/backlog counts."""
        return {
            tenant: {
                "admitted": lane.admitted,
                "shed": lane.shed,
                "rejected": lane.rejected,
                "backlog": len(lane.pending),
            }
            for tenant, lane in sorted(self._lanes.items())
        }


__all__ = ["AdmissionController", "AdmissionStatus", "TokenBucket"]
