"""Table 1 — cost breakdown for **column caching** (EDR + DR1 sets).

For both trace flavors, report per-algorithm bypass cost, fetch cost,
and total, next to the sequence cost.  The paper's shape: the
workload-driven Rate-Profile usually wins, OnlineBY is close behind,
and SpaceEffBY "always lags behind, indicating that some amount of
state aids in making the bypass decision".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.common import (
    ExperimentContext,
    build_context,
    parallel_workers,
)
from repro.sim.reporting import format_table
from repro.sim.results import SimulationResult
from repro.sim.runner import compare_policies

CACHE_FRACTION = 0.3
ALGORITHMS = ("rate-profile", "online-by", "space-eff-by")


@dataclass
class BreakdownSet:
    """One trace flavor's rows of the table."""

    flavor: str
    num_queries: int
    sequence_bytes: float
    results: Dict[str, SimulationResult] = field(default_factory=dict)


@dataclass
class BreakdownResult:
    granularity: str
    cache_fraction: float
    sets: List[BreakdownSet] = field(default_factory=list)

    @property
    def shape_holds(self) -> bool:
        """All bypass-yield variants far below sequence cost, and the
        randomized variant never strictly best (state helps)."""
        for data_set in self.sets:
            totals = {
                name: sim.total_bytes
                for name, sim in data_set.results.items()
            }
            if any(
                totals[name] > data_set.sequence_bytes / 2
                for name in ALGORITHMS
            ):
                return False
            if totals["space-eff-by"] < min(
                totals["rate-profile"], totals["online-by"]
            ):
                return False
        return True


def run_breakdown(
    granularity: str,
    contexts: Optional[Sequence[ExperimentContext]] = None,
    cache_fraction: float = CACHE_FRACTION,
) -> BreakdownResult:
    """Shared driver for Tables 1 and 2."""
    if contexts is None:
        contexts = (build_context("edr"), build_context("dr1"))
    result = BreakdownResult(
        granularity=granularity, cache_fraction=cache_fraction
    )
    workers = parallel_workers()
    for context in contexts:
        capacity = context.capacity_for(cache_fraction)
        results = compare_policies(
            context.prepared,
            context.federation,
            capacity,
            granularity,
            policies=ALGORITHMS,
            record_series=False,
            parallel=workers > 1,
            max_workers=workers or None,
        )
        result.sets.append(
            BreakdownSet(
                flavor=context.flavor,
                num_queries=len(context.prepared),
                sequence_bytes=float(context.prepared.sequence_bytes),
                results=results,
            )
        )
    return result


def render_breakdown(result: BreakdownResult, table_name: str) -> str:
    rows: List[List[object]] = []
    for data_set in result.sets:
        for i, name in enumerate(ALGORITHMS):
            sim = data_set.results[name]
            rows.append(
                [
                    data_set.flavor.upper() if i == 0 else "",
                    data_set.num_queries if i == 0 else "",
                    (
                        f"{data_set.sequence_bytes / 1e6:.2f}"
                        if i == 0
                        else ""
                    ),
                    name,
                    sim.breakdown.bypass_bytes / 1e6,
                    sim.breakdown.load_bytes / 1e6,
                    sim.total_bytes / 1e6,
                ]
            )
    table = format_table(
        [
            "data set",
            "queries",
            "sequence (MB)",
            "algorithm",
            "bypass (MB)",
            "fetch (MB)",
            "total (MB)",
        ],
        rows,
        title=(
            f"{table_name}: cost breakdown for {result.granularity} "
            f"caching (cache = {result.cache_fraction:.0%} of DB)"
        ),
    )
    verdict = (
        "paper shape (all << sequence cost; randomized lags): "
        f"{'HOLDS' if result.shape_holds else 'VIOLATED'}"
    )
    return f"{table}\n{verdict}"


def run(
    contexts: Optional[Sequence[ExperimentContext]] = None,
) -> BreakdownResult:
    return run_breakdown("column", contexts)


def render(result: BreakdownResult) -> str:
    return render_breakdown(result, "Table 1")


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
