"""Figure 8 — cumulative network cost per query, **column caching**.

The column-granularity companion of Figure 7.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentContext
from repro.experiments.fig7_cost_tables import (
    CACHE_FRACTION,
    CostSeriesResult,
    render_cost_series,
    run_cost_series,
)


def run(
    context: Optional[ExperimentContext] = None,
    cache_fraction: float = CACHE_FRACTION,
) -> CostSeriesResult:
    return run_cost_series("column", context, cache_fraction)


def render(result: CostSeriesResult) -> str:
    return render_cost_series(result, "Figure 8")


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
