"""Resilience figure — WAN traffic and availability vs fault intensity.

The paper's economy assumes an always-up network; this experiment asks
what each policy's network citizenship looks like when the network
misbehaves.  A fault *intensity* in ``[0, 1]`` scales a fixed schedule
shape over the trace:

* an outage on the primary server (length grows with intensity);
* a brownout window (per-attempt failure rate and byte-cost inflation
  grow with intensity);
* a flapping link on the cross-match server (down-time share grows
  with intensity).

Intensity 0 is the empty schedule — the identity — so the left edge of
the sweep reproduces the fault-free totals exactly.  Each (intensity,
policy) cell replays through a fresh
:class:`~repro.faults.transport.ResilientTransport`, so retries,
breaker churn, and retry-byte waste land in the WAN totals.

The headline shape: caching is an *availability* mechanism, not just a
traffic one.  Policies that keep objects resident can fall back to the
cache when a backend goes dark, so their availability degrades far more
slowly than no-cache's as intensity rises — and their WAN totals stay
below it throughout.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, FaultError
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    experiment_instrumentation,
    parallel_workers,
)
from repro.faults import FaultSchedule, FaultWindow
from repro.sim.reporting import format_table
from repro.sim.results import SimulationResult
from repro.sim import runner as sim_runner

#: Fault intensities swept (0 = the identity / fault-free baseline).
INTENSITIES = (0.0, 0.25, 0.5, 0.75)

POLICIES = ("rate-profile", "online-by", "gds", "no-cache")

#: Seed for every schedule in the sweep (determinism contract: the same
#: (seed, schedule) replays byte-identically).
SCHEDULE_SEED = 90210

#: Default cache fraction (the paper's effective-cache operating point).
CACHE_FRACTION = 0.3


def build_schedule(intensity: float, num_queries: int) -> FaultSchedule:
    """The sweep's fault schedule at one intensity over one trace length.

    Intensity 0 returns the empty schedule; everything else scales the
    same three-window shape so sweeps stay comparable across levels.
    """
    if not 0.0 <= intensity <= 1.0:
        raise FaultError(
            f"fault intensity must be in [0, 1], got {intensity}"
        )
    windows: List[FaultWindow] = []
    if intensity > 0.0 and num_queries >= 20:
        n = num_queries
        outage_len = int(intensity * n * 0.15)
        if outage_len > 0:
            windows.append(
                FaultWindow(
                    kind="outage",
                    server="sdss",
                    start=n // 4,
                    end=n // 4 + outage_len,
                )
            )
        windows.append(
            FaultWindow(
                kind="brownout",
                server="sdss",
                start=n // 2,
                end=n // 2 + n // 4,
                cost_multiplier=1.0 + intensity,
                failure_rate=0.5 * intensity,
            )
        )
        windows.append(
            FaultWindow(
                kind="flap",
                server="first",
                start=(7 * n) // 10,
                end=n,
                period=8,
                duty=1.0 - 0.5 * intensity,
            )
        )
    return FaultSchedule(seed=SCHEDULE_SEED, windows=tuple(windows))


@dataclass
class ResilienceResult:
    """The sweep grid: (intensity, policy) -> simulation result."""

    intensities: Tuple[float, ...]
    policies: Tuple[str, ...]
    cells: Dict[Tuple[float, str], SimulationResult] = field(
        default_factory=dict
    )
    baseline: Dict[str, SimulationResult] = field(default_factory=dict)

    def cell(self, intensity: float, policy: str) -> SimulationResult:
        return self.cells[(intensity, policy)]

    @property
    def shape_holds(self) -> bool:
        """Three checks: (1) intensity 0 is the exact fault-free
        identity per policy; (2) under faults, caching policies keep
        availability at or above no-cache's (cache fallback is an
        availability mechanism); (3) retry waste only exists under
        faults."""
        for policy in self.policies:
            zero = self.cells.get((0.0, policy))
            base = self.baseline.get(policy)
            if base is None:
                return False
            if zero is None:
                # Intensity 0 was not part of the sweep (e.g. a CLI
                # run with only --intensity 0.5); the identity check
                # is vacuous for this run.
                continue
            if (
                zero.total_bytes != base.total_bytes
                or zero.weighted_cost != base.weighted_cost
                or zero.served_queries != base.served_queries
                or zero.breakdown.retry_bytes != 0.0
                or zero.availability != 1.0
            ):
                return False
        if "no-cache" in self.policies:
            for intensity in self.intensities:
                if intensity == 0.0:
                    continue
                floor = self.cell(intensity, "no-cache").availability
                for policy in self.policies:
                    if policy == "no-cache":
                        continue
                    if self.cell(intensity, policy).availability < floor:
                        return False
        return True


def run(
    context: Optional[ExperimentContext] = None,
    intensities: Sequence[float] = INTENSITIES,
    policies: Sequence[str] = POLICIES,
    trace_dir: Optional[Path] = None,
    span_dir: Optional[Path] = None,
) -> ResilienceResult:
    """Sweep fault intensity × policy over one prepared trace.

    With ``trace_dir``, every cell additionally streams its decision
    events to ``trace_dir/trace-i<intensity>-<policy>.jsonl`` (manifest
    header included) for ``repro-report`` — the CI resilience-smoke job
    diffs those traces across same-seed reruns.  With ``span_dir``,
    every cell runs under a deterministic span tracer, streaming
    ``spans-i<intensity>-<policy>.jsonl`` plus a Perfetto-loadable
    ``perfetto-i<intensity>-<policy>.json`` export.  Either directory
    forces serial replay.
    """
    if context is None:
        context = build_context("edr")
    capacity = context.capacity_for(CACHE_FRACTION)
    workers = parallel_workers()
    streaming = trace_dir is not None or span_dir is not None
    result = ResilienceResult(
        intensities=tuple(intensities), policies=tuple(policies)
    )
    result.baseline = sim_runner.compare_policies(
        context.prepared,
        context.federation,
        capacity,
        "table",
        policies=tuple(policies),
        record_series=False,
        parallel=workers > 1 and not streaming,
        max_workers=workers or None,
        instrumentation=experiment_instrumentation(),
    )
    for intensity in intensities:
        schedule = build_schedule(intensity, len(context.prepared))
        if not streaming:
            cells = sim_runner.compare_policies(
                context.prepared,
                context.federation,
                capacity,
                "table",
                policies=tuple(policies),
                record_series=False,
                parallel=workers > 1,
                max_workers=workers or None,
                instrumentation=experiment_instrumentation(),
                faults=schedule,
            )
        else:
            cells = _run_with_traces(
                context, capacity, policies, schedule, intensity,
                Path(trace_dir) if trace_dir is not None else None,
                Path(span_dir) if span_dir is not None else None,
            )
        for policy in policies:
            result.cells[(intensity, policy)] = cells[policy]
    return result


def _run_with_traces(
    context: ExperimentContext,
    capacity: int,
    policies: Sequence[str],
    schedule: FaultSchedule,
    intensity: float,
    trace_dir: Optional[Path],
    span_dir: Optional[Path] = None,
) -> Dict[str, SimulationResult]:
    """Serial per-policy replay streaming each cell to JSONL traces
    (decision events, span trees, or both)."""
    from repro.core.instrumentation import Instrumentation
    from repro.obs.manifest import RunManifest, wall_clock_timestamp
    from repro.obs.spans import SpanTracer, SpanWriter, write_chrome_trace
    from repro.obs.trace_io import TraceWriter

    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)
    if span_dir is not None:
        span_dir.mkdir(parents=True, exist_ok=True)
    results: Dict[str, SimulationResult] = {}
    for name in policies:
        manifest = RunManifest(
            workload=f"{context.prepared.name}+faults@{intensity:g}",
            policy=name,
            granularity="table",
            capacity_bytes=capacity,
            seed=schedule.seed,
            source="simulator",
            created_at=wall_clock_timestamp(),
        )
        sink = Instrumentation(max_events=0)
        writer: Optional[TraceWriter] = None
        if trace_dir is not None:
            path = trace_dir / f"trace-i{intensity:g}-{name}.jsonl"
            writer = TraceWriter(path, manifest)
            sink.add_probe(writer)
        tracer: Optional[SpanTracer] = None
        span_writer: Optional[SpanWriter] = None
        if span_dir is not None:
            tracer = SpanTracer(
                seed=schedule.seed,
                run_label=f"i{intensity:g}-{name}",
                keep_spans=True,
            )
            span_path = span_dir / f"spans-i{intensity:g}-{name}.jsonl"
            span_writer = tracer.add_sink(SpanWriter(span_path, tracer))
        try:
            results[name] = sim_runner.run_single(
                context.prepared,
                context.federation,
                name,
                capacity,
                "table",
                record_series=False,
                instrumentation=sink,
                faults=schedule,
                tracer=tracer,
            )
        finally:
            if writer is not None:
                writer.close()
            if span_writer is not None:
                span_writer.close()
        if writer is not None:
            print(f"wrote {writer.events_written} events to {path}")
        if tracer is not None and span_dir is not None:
            perfetto = write_chrome_trace(
                tracer.spans,
                span_dir / f"perfetto-i{intensity:g}-{name}.json",
                label=f"repro i{intensity:g} {name}",
            )
            print(
                f"wrote {tracer.spans_seen} spans to {span_writer.path} "
                f"(Perfetto export: {perfetto})"
            )
    return results


def render(result: ResilienceResult) -> str:
    sections: List[str] = []
    wan_rows = []
    for intensity in result.intensities:
        row: list = [f"{intensity:g}"]
        for policy in result.policies:
            row.append(result.cell(intensity, policy).total_bytes / 1e6)
        wan_rows.append(row)
    sections.append(
        format_table(
            ["intensity"] + list(result.policies),
            wan_rows,
            title=(
                "Resilience: total WAN traffic (MB, retry waste "
                "included) vs fault intensity"
            ),
        )
    )
    avail_rows = []
    for intensity in result.intensities:
        row = [f"{intensity:g}"]
        for policy in result.policies:
            row.append(
                f"{result.cell(intensity, policy).availability:.4f}"
            )
        avail_rows.append(row)
    sections.append(
        format_table(
            ["intensity"] + list(result.policies),
            avail_rows,
            title="Resilience: availability vs fault intensity",
        )
    )
    retry_rows = []
    for intensity in result.intensities:
        row = [f"{intensity:g}"]
        for policy in result.policies:
            cell = result.cell(intensity, policy)
            row.append(
                f"{cell.breakdown.retry_bytes / 1e6:.3f} "
                f"({cell.retries}r)"
            )
        retry_rows.append(row)
    sections.append(
        format_table(
            ["intensity"] + list(result.policies),
            retry_rows,
            title="Resilience: retry waste MB (retry count)",
        )
    )
    verdict = (
        "resilience shape (identity at 0, caching holds availability "
        f"above no-cache): {'HOLDS' if result.shape_holds else 'VIOLATED'}"
    )
    sections.append(verdict)
    return "\n".join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig_resilience",
        description=(
            "Sweep fault intensity vs WAN traffic and availability "
            "per policy."
        ),
    )
    parser.add_argument(
        "--intensity", action="append", type=float, metavar="X",
        help=(
            "fault intensity in [0, 1] (repeatable; default: the "
            "full sweep)"
        ),
    )
    parser.add_argument(
        "-n", "--num-queries", type=int, default=None,
        help="queries per trace (default: the experiment-suite scale)",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help=(
            "stream one JSONL decision trace per (intensity, policy) "
            "cell for repro-report; forces serial replay"
        ),
    )
    parser.add_argument(
        "--span-dir", default=None, metavar="DIR",
        help=(
            "trace every cell with the span tracer: one span JSONL "
            "plus a Perfetto JSON export per (intensity, policy) "
            "cell; forces serial replay"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    intensities = (
        tuple(args.intensity) if args.intensity else INTENSITIES
    )
    try:
        if args.num_queries is None:
            context = build_context("edr")
        else:
            if args.num_queries < 1:
                raise ConfigurationError(
                    f"--num-queries must be >= 1, got {args.num_queries}"
                )
            context = build_context("edr", num_queries=args.num_queries)
        result = run(
            context,
            intensities=intensities,
            trace_dir=(
                Path(args.trace_dir)
                if args.trace_dir is not None
                else None
            ),
            span_dir=(
                Path(args.span_dir)
                if args.span_dir is not None
                else None
            ),
        )
    except (ConfigurationError, FaultError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
