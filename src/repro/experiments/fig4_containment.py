"""Figure 4 — query containment.

The paper takes a sub-sequence of object-identifying queries from the
EDR trace, evaluates which celestial object identifiers each returns,
and plots (query number, objID) points: points on the same horizontal
line mean reuse, a prerequisite for semantic caching.  The finding:
"few objects experience reuse in any portion of the trace over a large
universe of objects" — semantic caching has nothing to work with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.common import ExperimentContext, build_context
from repro.sim.reporting import ascii_chart
from repro.workload.containment import (
    ContainmentReport,
    analyze_containment,
)


@dataclass
class Fig4Result:
    report: ContainmentReport
    window: int

    @property
    def shape_holds(self) -> bool:
        """The paper's qualitative finding: containment is rare."""
        return self.report.containment_rate < 0.15


def run(
    context: Optional[ExperimentContext] = None,
    window: int = 50,
    max_queries: int = 150,
) -> Fig4Result:
    if context is None:
        context = build_context("edr")
    report = analyze_containment(
        context.trace, context.mediator, window=window,
        max_queries=max_queries,
    )
    return Fig4Result(report=report, window=window)


def render(result: Fig4Result) -> str:
    report = result.report
    # Subsample scatter for readability: identity-scale ids only.
    points = [(float(q), float(o)) for q, o in report.points]
    chart = ascii_chart(
        {"objID returned": points[:4000]},
        title=(
            "Figure 4: query containment "
            f"(window={result.window} object queries)"
        ),
        x_label="query number",
        y_label="object identifier",
    )
    summary = (
        f"object queries analyzed: {report.total_queries}\n"
        f"contained queries:       {report.contained_queries} "
        f"({report.containment_rate:.1%})\n"
        f"distinct objIDs:         {report.distinct_ids}\n"
        f"objIDs reused by 2+ queries: {report.reused_ids} "
        f"({report.reuse_rate:.1%})\n"
        f"paper shape (containment rare): "
        f"{'HOLDS' if result.shape_holds else 'VIOLATED'}"
    )
    return f"{chart}\n{summary}"


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
