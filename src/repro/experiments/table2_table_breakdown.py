"""Table 2 — cost breakdown for **table caching** (EDR + DR1 sets).

The table-granularity companion of Table 1.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentContext
from repro.experiments.table1_column_breakdown import (
    BreakdownResult,
    render_breakdown,
    run_breakdown,
)


def run(
    contexts: Optional[Sequence[ExperimentContext]] = None,
) -> BreakdownResult:
    return run_breakdown("table", contexts)


def render(result: BreakdownResult) -> str:
    return render_breakdown(result, "Table 2")


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
