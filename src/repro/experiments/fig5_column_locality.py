"""Figure 5 — column locality.

For every query of the EDR trace, plot which columns it references.
The paper's finding: "heavy and long lasting periods of reuse,
localized to a small fraction of the total columns" — columns are
excellent cache objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.common import ExperimentContext, build_context
from repro.sim.reporting import ascii_chart
from repro.workload.locality import LocalityReport, analyze_locality


@dataclass
class Fig5Result:
    report: LocalityReport

    @property
    def shape_holds(self) -> bool:
        """Heavy concentration + long runs = the paper's column story."""
        return (
            self.report.concentration(0.9) < 0.75
            and self.report.mean_run_length() > 1.5
        )


def run(context: Optional[ExperimentContext] = None) -> Fig5Result:
    if context is None:
        context = build_context("edr")
    lookup = context.federation.schema_lookup()
    universe = len(context.federation.objects("column"))
    report = analyze_locality(
        context.trace, lookup, "column", universe_size=universe
    )
    return Fig5Result(report=report)


def render(result: Fig5Result) -> str:
    report = result.report
    points = [(float(q), float(e)) for q, e in report.points]
    chart = ascii_chart(
        {"column referenced": points},
        title="Figure 5: column locality (EDR trace)",
        x_label="query number",
        y_label="column index (discovery order)",
    )
    summary = (
        f"columns in schema:   {report.total_elements_in_schema}\n"
        f"columns ever used:   {report.distinct_used}\n"
        f"fraction of used columns receiving 90% of references: "
        f"{report.concentration(0.9):.2f}\n"
        f"mean consecutive-run length: "
        f"{report.mean_run_length():.1f} queries\n"
        f"paper shape (concentrated, long-lasting reuse): "
        f"{'HOLDS' if result.shape_holds else 'VIOLATED'}"
    )
    return f"{chart}\n{summary}"


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
