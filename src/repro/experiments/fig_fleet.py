"""Fleet figure — cooperative sharding vs independent caches.

Section 3 reduces the global problem to independent caches; this
experiment asks what the federation *gains* by letting proxy shards
cooperate.  A fixed cache budget ``C`` (a fraction of the database) is
deployed three ways:

* **one big cache** — a single proxy with all of ``C`` (the ``N = 1``
  row, identical in every mode);
* **N independent shards** — the workload split round-robin over ``N``
  proxies with ``C / N`` each, no coordination (the paper's model);
* **cooperative N × C/N** — the same shards joined by a consistent-hash
  ring (:mod:`repro.fleet`): a local miss probes the ring owner first
  and then every other sibling (``probe_all_siblings`` — the full
  hierarchy, so any resident copy anywhere in the fleet is found), and
  a sibling hit ships over a cheap peer link instead of the WAN.

Splitting a cache always hurts (each shard re-fetches objects its
siblings already hold); cooperation claws the loss back by turning
those duplicate backend fetches into regional peer transfers.  The
headline shape: cooperative global WAN sits strictly below the
independent fleet's at every ``N > 1``, peer bytes exist only in
cooperative mode, and the ``N = 1`` cells of both modes are
byte-identical (golden equivalence).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import CacheError, ConfigurationError
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    experiment_instrumentation,
    parallel_workers,
)
from repro.sim.multi import FleetResult, simulate_fleet
from repro.sim.reporting import format_table
from repro.sim.runner import build_fleet

#: Shard counts swept (1 = the one-big-cache identity row).
SHARDS = (1, 2, 4, 8)

#: Replacement policy every shard runs (the paper's online winner).
POLICY = "rate-profile"

#: Total cache budget as a fraction of the database; each shard gets
#: budget / N so every row spends the same capacity.
CACHE_FRACTION = 0.3

#: Seed for the consistent-hash ring (determinism contract: the same
#: seed yields the same catalog partition in every process).
RING_SEED = 412

MODES = ("independent", "cooperative")


@dataclass
class FleetSweepResult:
    """The sweep grid: (shards, mode) -> fleet result."""

    shards: Tuple[int, ...]
    policy: str
    capacity_bytes: int
    cells: Dict[Tuple[int, str], FleetResult] = field(
        default_factory=dict
    )

    def cell(self, shards: int, mode: str) -> FleetResult:
        return self.cells[(shards, mode)]

    @property
    def shape_holds(self) -> bool:
        """Three checks: (1) the ``N = 1`` cells of both modes are
        byte-identical (a lone shard has no siblings to probe); (2) at
        every ``N > 1`` cooperative global WAN is strictly below
        independent; (3) peer bytes exist only in cooperative cells
        with at least two shards."""
        for count in self.shards:
            independent = self.cells.get((count, "independent"))
            cooperative = self.cells.get((count, "cooperative"))
            if independent is None or cooperative is None:
                return False
            if independent.peer_bytes != 0:
                return False
            if count == 1:
                if cooperative.summary() != independent.summary():
                    return False
            else:
                if cooperative.total_bytes >= independent.total_bytes:
                    return False
                if cooperative.peer_bytes <= 0:
                    return False
        return True


def run(
    context: Optional[ExperimentContext] = None,
    shards: Sequence[int] = SHARDS,
    policy: str = POLICY,
    trace_dir: Optional[Path] = None,
) -> FleetSweepResult:
    """Sweep shard count × cache split over one prepared trace.

    Every row splits the same workload round-robin into ``N`` shard
    traces (so shards overlap heavily in what they touch) and the same
    cache budget into ``N`` equal slices.  Independent rows may fan out
    over worker processes; cooperative rows are serial by construction
    (sibling probes read live cache state).

    With ``trace_dir``, every cell streams its decision events to
    ``trace_dir/trace-s<N>-<mode>.jsonl`` (manifest header included)
    for ``repro-report`` — the CI fleet-smoke job diffs those traces
    across same-seed reruns.  Trace export forces serial replay.
    """
    if context is None:
        context = build_context("edr")
    counts = tuple(shards)
    if not counts:
        raise ConfigurationError("fleet sweep needs at least one shard count")
    for count in counts:
        if count < 1:
            raise ConfigurationError(
                f"shard count must be >= 1, got {count}"
            )
    capacity = context.capacity_for(CACHE_FRACTION)
    workers = parallel_workers()
    streaming = trace_dir is not None
    if streaming:
        assert trace_dir is not None
        trace_dir.mkdir(parents=True, exist_ok=True)
    result = FleetSweepResult(
        shards=counts, policy=policy, capacity_bytes=capacity
    )
    for count in counts:
        per_shard = max(1, capacity // count)
        for mode in MODES:
            # Fresh policies per cell — simulate_fleet mutates cache
            # state, so cells must not share policy objects.
            clients = build_fleet(
                context.prepared,
                count,
                policy,
                per_shard,
                context.federation,
                "table",
            )
            sink = experiment_instrumentation()
            writer = None
            if streaming:
                assert trace_dir is not None
                sink, writer = _open_trace(
                    trace_dir, context, policy, per_shard, count, mode
                )
            try:
                result.cells[(count, mode)] = simulate_fleet(
                    context.federation,
                    clients,
                    cooperative=(mode == "cooperative"),
                    ring_seed=RING_SEED,
                    probe_all_siblings=True,
                    parallel=(
                        mode == "independent"
                        and workers > 1
                        and not streaming
                    ),
                    max_workers=workers or None,
                    instrumentation=sink,
                )
            finally:
                if writer is not None:
                    writer.close()
            if writer is not None:
                print(
                    f"wrote {writer.events_written} events to "
                    f"{writer.path}"
                )
    return result


def _open_trace(
    trace_dir: Path,
    context: ExperimentContext,
    policy: str,
    per_shard: int,
    count: int,
    mode: str,
):
    """A counters-only sink streaming one cell's decisions to JSONL."""
    from repro.core.instrumentation import Instrumentation
    from repro.obs.manifest import RunManifest, wall_clock_timestamp
    from repro.obs.trace_io import TraceWriter

    manifest = RunManifest(
        workload=f"{context.prepared.name}+fleet-s{count}",
        policy=policy,
        granularity="table",
        capacity_bytes=per_shard,
        seed=RING_SEED,
        source="fleet",
        created_at=wall_clock_timestamp(),
    )
    sink = Instrumentation(max_events=0)
    writer = TraceWriter(
        trace_dir / f"trace-s{count}-{mode}.jsonl", manifest
    )
    sink.add_probe(writer)
    return sink, writer


def render(result: FleetSweepResult) -> str:
    sections: List[str] = []
    wan_rows: List[list] = []
    for count in result.shards:
        independent = result.cell(count, "independent")
        cooperative = result.cell(count, "cooperative")
        saved = independent.total_bytes - cooperative.total_bytes
        wan_rows.append(
            [
                count,
                independent.total_bytes / 1e6,
                cooperative.total_bytes / 1e6,
                cooperative.peer_bytes / 1e6,
                (
                    f"{100.0 * saved / independent.total_bytes:.1f}%"
                    if independent.total_bytes
                    else "0.0%"
                ),
            ]
        )
    sections.append(
        format_table(
            ["shards", "indep MB", "coop MB", "peer MB", "WAN saved"],
            wan_rows,
            title=(
                f"Fleet: global WAN for one {result.capacity_bytes / 1e6:.1f} "
                f"MB budget split N ways ({result.policy})"
            ),
        )
    )
    hit_rows: List[list] = []
    for count in result.shards:
        cooperative = result.cell(count, "cooperative")
        rates = sorted(
            site.hit_rate for site in cooperative.per_client.values()
        )
        hit_rows.append(
            [
                count,
                f"{rates[0]:.4f}",
                f"{cooperative.mean_hit_rate:.4f}",
                f"{rates[-1]:.4f}",
                cooperative.peer_hits,
            ]
        )
    sections.append(
        format_table(
            ["shards", "min hit", "mean hit", "max hit", "peer hits"],
            hit_rows,
            title="Fleet: per-shard hit rates, cooperative mode",
        )
    )
    verdict = (
        "fleet shape (N=1 identity, cooperative WAN strictly below "
        "independent at N>1, peer bytes cooperative-only): "
        f"{'HOLDS' if result.shape_holds else 'VIOLATED'}"
    )
    sections.append(verdict)
    return "\n".join(sections)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.fig_fleet",
        description=(
            "Sweep shard count: one cache budget deployed as N "
            "independent vs N cooperating proxy shards."
        ),
    )
    parser.add_argument(
        "--shards", action="append", type=int, metavar="N",
        help="shard count (repeatable; default: the full sweep)",
    )
    parser.add_argument(
        "--policy", default=POLICY,
        help=f"replacement policy per shard (default: {POLICY})",
    )
    parser.add_argument(
        "-n", "--num-queries", type=int, default=None,
        help="queries per trace (default: the experiment-suite scale)",
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help=(
            "stream one JSONL decision trace per (shards, mode) cell "
            "for repro-report; forces serial replay"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    shards = tuple(args.shards) if args.shards else SHARDS
    try:
        if args.num_queries is None:
            context = build_context("edr")
        else:
            if args.num_queries < 1:
                raise ConfigurationError(
                    f"--num-queries must be >= 1, got {args.num_queries}"
                )
            context = build_context("edr", num_queries=args.num_queries)
        result = run(
            context,
            shards=shards,
            policy=args.policy,
            trace_dir=(
                Path(args.trace_dir)
                if args.trace_dir is not None
                else None
            ),
        )
    except (ConfigurationError, CacheError) as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(render(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
