"""Shared experiment infrastructure.

Every experiment needs the same expensive setup: build the synthetic
federation, generate a trace, and *prepare* it (execute every query to
measure yields).  :func:`build_context` memoizes that work in-process and
persists prepared traces to a disk cache so repeated benchmark runs skip
re-execution.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

from repro.core.instrumentation import Instrumentation
from repro.errors import ConfigurationError
from repro.federation.federation import Federation
from repro.federation.mediator import Mediator
from repro.federation.server import DatabaseServer
from repro.workload.generator import TraceConfig, generate_trace
from repro.workload.prepare import prepare_trace
from repro.workload.sdss_schema import (
    PROFILES,
    ScaleProfile,
    build_first_catalog,
    build_sdss_catalog,
)
from repro.workload.trace import PreparedTrace, Trace

#: Bump when generation or attribution semantics change, invalidating
#: previously cached prepared traces.
CACHE_VERSION = 3

#: Canonical experiment scale (queries per trace).  The paper's traces
#: hold ~25k queries; benchmarks default to a few thousand to keep the
#: whole suite in minutes while preserving every workload property.
DEFAULT_NUM_QUERIES = 3000
DEFAULT_PROFILE = "small"


#: Spellings that force serial execution (worker count 0).
_SERIAL_SPELLINGS = frozenset({"0", "false", "no", "off"})


def parse_bounded_int(
    raw: str,
    source: str,
    minimum: int,
    maximum: Optional[int] = None,
    what: str = "value",
) -> int:
    """Parse a decimal integer within ``[minimum, maximum]``.

    The shared hardening core behind :func:`parse_worker_count` and the
    service knobs (``--port``, ``--max-inflight``, ``--queue-depth``):
    non-integers and out-of-range values raise
    :class:`~repro.errors.ConfigurationError` naming ``source``, so
    every CLI turns garbage into exit code 2 instead of a silent
    fallback.
    """
    bounds = f">= {minimum}" if maximum is None else f"in [{minimum}, {maximum}]"
    try:
        value = int(raw.strip(), 10)
    except ValueError:
        raise ConfigurationError(
            f"{source} must be a decimal integer {bounds} "
            f"({what}), got {raw!r}"
        ) from None
    if value < minimum or (maximum is not None and value > maximum):
        raise ConfigurationError(
            f"{source} must be {bounds} ({what}), got {raw!r}"
        )
    return value


def parse_worker_count(raw: str, source: str = "REPRO_PARALLEL") -> int:
    """Parse a worker-count setting into a pool size (0 means serial).

    Accepts ``0`` / ``false`` / ``no`` / ``off`` for serial execution
    and any positive decimal integer for a pinned pool size.  Anything
    else — non-integers, negatives, floats — raises
    :class:`~repro.errors.ConfigurationError` naming ``source``, rather
    than being silently coerced into a CPU-count fallback.
    """
    text = raw.strip().lower()
    if text in _SERIAL_SPELLINGS:
        return 0
    try:
        value = int(text, 10)
    except ValueError:
        raise ConfigurationError(
            f"{source} must be a positive integer worker count or one "
            f"of 0/false/no/off for serial execution, got {raw!r}"
        ) from None
    if value < 1:
        raise ConfigurationError(
            f"{source} worker count must be >= 1 (use 0/false/no/off "
            f"for serial execution), got {raw!r}"
        )
    return value


def parallel_workers() -> int:
    """Worker-process count for experiment fan-out (0 means serial).

    Controlled by the ``REPRO_PARALLEL`` environment variable: unset
    (or blank) uses one worker per CPU (serial on single-CPU machines),
    ``0`` / ``false`` / ``no`` / ``off`` forces serial, and a positive
    integer pins the pool size.  Malformed values raise
    :class:`~repro.errors.ConfigurationError` instead of silently
    falling back.  Parallel and serial execution produce identical
    results (the runner guarantees deterministic ordering), so this is
    purely a wall-clock knob.
    """
    raw = os.environ.get("REPRO_PARALLEL")
    if raw is None or not raw.strip():
        cpus = os.cpu_count() or 1
        return cpus if cpus > 1 else 0
    return parse_worker_count(raw, source="REPRO_PARALLEL")


@dataclass
class ExperimentContext:
    """Everything one experiment needs, built once and shared."""

    flavor: str
    profile: ScaleProfile
    federation: Federation
    mediator: Mediator
    trace: Trace
    prepared: PreparedTrace

    @property
    def database_bytes(self) -> int:
        return self.federation.total_database_bytes()

    def capacity_for(self, fraction: float) -> int:
        """Cache capacity for a fraction of the database size."""
        return max(1, int(self.database_bytes * fraction))


_MEMO: Dict[str, ExperimentContext] = {}


def cache_dir() -> Path:
    """Disk cache location for prepared traces (repo-local)."""
    path = Path(__file__).resolve().parents[3] / ".repro_cache"
    path.mkdir(exist_ok=True)
    return path


def build_context(
    flavor: str = "edr",
    num_queries: int = DEFAULT_NUM_QUERIES,
    profile_name: str = DEFAULT_PROFILE,
    seed: Optional[int] = None,
    use_disk_cache: bool = True,
) -> ExperimentContext:
    """Build (or reuse) the federation + prepared trace for one flavor."""
    key = _cache_key(flavor, num_queries, profile_name, seed)
    memoized = _MEMO.get(key)
    if memoized is not None:
        return memoized

    profile = PROFILES[profile_name]
    catalog = build_sdss_catalog(profile)
    federation = Federation.single_site(catalog)
    # The FIRST radio survey runs on its own server (the classic SkyQuery
    # cross-match partner); DR1's crossmatch theme joins against it, which
    # exercises the mediator's cross-server decomposition.
    federation.add_server(
        DatabaseServer("first", build_first_catalog(profile))
    )
    mediator = Mediator(federation)
    config = TraceConfig(
        num_queries=num_queries, flavor=flavor, seed=seed
    )
    trace = generate_trace(config, profile)

    prepared: Optional[PreparedTrace] = None
    cache_file = cache_dir() / f"prepared-{key}.jsonl"
    if use_disk_cache and cache_file.exists():
        try:
            prepared = PreparedTrace.load(cache_file)
            if len(prepared) != num_queries:
                prepared = None
        except Exception:
            prepared = None
    if prepared is None:
        prepared = prepare_trace(trace, mediator)
        if use_disk_cache:
            prepared.save(cache_file)

    context = ExperimentContext(
        flavor=flavor,
        profile=profile,
        federation=federation,
        mediator=mediator,
        trace=trace,
        prepared=prepared,
    )
    _MEMO[key] = context
    return context


def _cache_key(
    flavor: str, num_queries: int, profile_name: str, seed: Optional[int]
) -> str:
    payload = json.dumps(
        {
            "version": CACHE_VERSION,
            "flavor": flavor,
            "num_queries": num_queries,
            "profile": profile_name,
            "seed": seed,
        },
        sort_keys=True,
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()[:16]
    return f"{flavor}-{num_queries}-{profile_name}-{digest}"


def clear_memo() -> None:
    """Drop in-process memoized contexts (tests use this)."""
    _MEMO.clear()


# ---------------------------------------------------------------------------
# Experiment-wide telemetry
# ---------------------------------------------------------------------------

#: Process-wide telemetry sink for experiment drivers.  ``run_all``
#: installs one when ``--telemetry-dir`` is given; individual figure
#: modules forward it into the runners so sweep/comparison telemetry
#: (including parallel-worker snapshots) aggregates in one place.
_EXPERIMENT_INSTRUMENTATION: Optional[Instrumentation] = None


def experiment_instrumentation() -> Optional[Instrumentation]:
    """The installed experiment-wide telemetry sink (None when off)."""
    return _EXPERIMENT_INSTRUMENTATION


def set_experiment_instrumentation(
    instrumentation: Optional[Instrumentation],
) -> Optional[Instrumentation]:
    """Install (or clear, with None) the experiment telemetry sink.

    Returns the previous sink so callers can restore it; ``run_all``
    wraps its driver loop in try/finally around this.
    """
    global _EXPERIMENT_INSTRUMENTATION
    previous = _EXPERIMENT_INSTRUMENTATION
    _EXPERIMENT_INSTRUMENTATION = instrumentation
    return previous
