"""One module per paper table/figure; each exposes ``run`` and ``render``.

| Module                      | Paper artifact                      |
|-----------------------------|-------------------------------------|
| ``fig4_containment``        | Fig. 4 — query containment          |
| ``fig5_column_locality``    | Fig. 5 — column locality            |
| ``fig6_table_locality``     | Fig. 6 — table locality             |
| ``fig7_cost_tables``        | Fig. 7 — cost series, tables        |
| ``fig8_cost_columns``       | Fig. 8 — cost series, columns       |
| ``fig9_cache_size_tables``  | Fig. 9 — cache-size sweep, tables   |
| ``fig10_cache_size_columns``| Fig. 10 — cache-size sweep, columns |
| ``table1_column_breakdown`` | Table 1 — breakdown, columns        |
| ``table2_table_breakdown``  | Table 2 — breakdown, tables         |
| ``fig_resilience``          | Resilience — faults vs WAN/avail.   |
| ``fig_fleet``               | Fleet — cooperative vs independent  |

Each ``run`` returns a structured result with a ``shape_holds`` property
asserting the paper's qualitative claim; ``render`` produces the
plain-text table/chart the benchmark harness prints.
"""

from repro.experiments import (
    fig4_containment,
    fig5_column_locality,
    fig6_table_locality,
    fig7_cost_tables,
    fig8_cost_columns,
    fig9_cache_size_tables,
    fig10_cache_size_columns,
    fig_fleet,
    fig_resilience,
    table1_column_breakdown,
    table2_table_breakdown,
)
from repro.experiments.common import (
    ExperimentContext,
    build_context,
    clear_memo,
)

__all__ = [
    "ExperimentContext",
    "build_context",
    "clear_memo",
    "fig4_containment",
    "fig5_column_locality",
    "fig6_table_locality",
    "fig7_cost_tables",
    "fig8_cost_columns",
    "fig9_cache_size_tables",
    "fig10_cache_size_columns",
    "fig_fleet",
    "fig_resilience",
    "table1_column_breakdown",
    "table2_table_breakdown",
]
