"""CLI: regenerate every paper table and figure in one run.

Usage::

    python -m repro.experiments.run_all                 # canonical scale
    python -m repro.experiments.run_all -n 800 --profile tiny
    python -m repro.experiments.run_all -o report.txt
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments import (
    build_context,
    fig4_containment,
    fig5_column_locality,
    fig6_table_locality,
    fig7_cost_tables,
    fig8_cost_columns,
    fig9_cache_size_tables,
    fig10_cache_size_columns,
    table1_column_breakdown,
    table2_table_breakdown,
)
from repro.experiments.common import DEFAULT_NUM_QUERIES, DEFAULT_PROFILE
from repro.workload.sdss_schema import PROFILES

#: (label, module, needs) — 'edr' experiments take one context; the
#: breakdown tables take both flavors.
EXPERIMENTS = [
    ("Figure 4", fig4_containment, "edr"),
    ("Figure 5", fig5_column_locality, "edr"),
    ("Figure 6", fig6_table_locality, "edr"),
    ("Figure 7", fig7_cost_tables, "edr"),
    ("Figure 8", fig8_cost_columns, "edr"),
    ("Figure 9", fig9_cache_size_tables, "edr"),
    ("Figure 10", fig10_cache_size_columns, "edr"),
    ("Table 1", table1_column_breakdown, "both"),
    ("Table 2", table2_table_breakdown, "both"),
]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description="Regenerate every table and figure of the paper.",
    )
    parser.add_argument(
        "-n", "--num-queries", type=int, default=DEFAULT_NUM_QUERIES,
        help="queries per trace",
    )
    parser.add_argument(
        "--profile", default=DEFAULT_PROFILE, choices=sorted(PROFILES),
        help="database scale profile",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="do not read/write the prepared-trace disk cache",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="also write the report to this file",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    use_cache = not args.no_disk_cache

    start = time.time()
    edr = build_context(
        "edr", args.num_queries, args.profile, use_disk_cache=use_cache
    )
    dr1 = build_context(
        "dr1", args.num_queries, args.profile, use_disk_cache=use_cache
    )
    sections: List[str] = [
        "BYPASS-YIELD CACHING — full reproduction report",
        f"traces: {args.num_queries} queries each (edr, dr1), "
        f"profile {args.profile}; database "
        f"{edr.database_bytes / 1e6:.2f} MB",
        "",
    ]

    all_hold = True
    for label, module, needs in EXPERIMENTS:
        if needs == "both":
            result = module.run((edr, dr1))
        else:
            result = module.run(edr)
        sections.append("=" * 72)
        sections.append(module.render(result))
        sections.append("")
        all_hold = all_hold and result.shape_holds

    sections.append("=" * 72)
    verdict = "ALL SHAPES HOLD" if all_hold else "SOME SHAPES VIOLATED"
    sections.append(
        f"{verdict} — {len(EXPERIMENTS)} experiments in "
        f"{time.time() - start:.1f}s"
    )
    report = "\n".join(sections)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"\nreport written to {args.output}")
    return 0 if all_hold else 1


if __name__ == "__main__":
    sys.exit(main())
