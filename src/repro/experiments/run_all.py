"""CLI: regenerate every paper table and figure in one run.

Usage::

    python -m repro.experiments.run_all                 # canonical scale
    python -m repro.experiments.run_all -n 800 --profile tiny
    python -m repro.experiments.run_all -o report.txt
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro.core.instrumentation import Instrumentation
from repro.experiments import (
    build_context,
    fig4_containment,
    fig5_column_locality,
    fig6_table_locality,
    fig7_cost_tables,
    fig8_cost_columns,
    fig9_cache_size_tables,
    fig10_cache_size_columns,
    fig_fleet,
    fig_resilience,
    table1_column_breakdown,
    table2_table_breakdown,
)
from repro.experiments.common import (
    DEFAULT_NUM_QUERIES,
    DEFAULT_PROFILE,
    set_experiment_instrumentation,
)
from repro.workload.sdss_schema import PROFILES

#: (label, module, needs) — 'edr' experiments take one context; the
#: breakdown tables take both flavors.
EXPERIMENTS = [
    ("Figure 4", fig4_containment, "edr"),
    ("Figure 5", fig5_column_locality, "edr"),
    ("Figure 6", fig6_table_locality, "edr"),
    ("Figure 7", fig7_cost_tables, "edr"),
    ("Figure 8", fig8_cost_columns, "edr"),
    ("Figure 9", fig9_cache_size_tables, "edr"),
    ("Figure 10", fig10_cache_size_columns, "edr"),
    ("Table 1", table1_column_breakdown, "both"),
    ("Table 2", table2_table_breakdown, "both"),
    ("Resilience", fig_resilience, "edr"),
    ("Fleet", fig_fleet, "edr"),
]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description="Regenerate every table and figure of the paper.",
    )
    parser.add_argument(
        "-n", "--num-queries", type=int, default=DEFAULT_NUM_QUERIES,
        help="queries per trace",
    )
    parser.add_argument(
        "--profile", default=DEFAULT_PROFILE, choices=sorted(PROFILES),
        help="database scale profile",
    )
    parser.add_argument(
        "--no-disk-cache", action="store_true",
        help="do not read/write the prepared-trace disk cache",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="also write the report to this file",
    )
    parser.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help=(
            "aggregate run telemetry across every experiment and write "
            "DIR/telemetry.json (instrumentation snapshot + attribution)"
        ),
    )
    return parser


def _write_telemetry(
    directory: Path,
    sink: Instrumentation,
    args: argparse.Namespace,
    elapsed_seconds: float,
) -> Path:
    """Persist the aggregated experiment telemetry with attribution."""
    from repro.obs.manifest import package_version, wall_clock_timestamp

    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "attribution": {
            "source": "run_all",
            "num_queries": args.num_queries,
            "profile": args.profile,
            "package_version": package_version(),
            "created_at": wall_clock_timestamp(),
            "elapsed_seconds": round(elapsed_seconds, 3),
        },
        "snapshot": sink.snapshot(),
    }
    path = directory / "telemetry.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)
    use_cache = not args.no_disk_cache

    telemetry: Optional[Instrumentation] = None
    if args.telemetry_dir is not None:
        telemetry = Instrumentation(max_events=0)

    start = time.time()
    previous = set_experiment_instrumentation(telemetry)
    try:
        return _run_experiments(args, use_cache, telemetry, start)
    finally:
        set_experiment_instrumentation(previous)


def _run_experiments(
    args: argparse.Namespace,
    use_cache: bool,
    telemetry: Optional[Instrumentation],
    start: float,
) -> int:
    edr = build_context(
        "edr", args.num_queries, args.profile, use_disk_cache=use_cache
    )
    dr1 = build_context(
        "dr1", args.num_queries, args.profile, use_disk_cache=use_cache
    )
    sections: List[str] = [
        "BYPASS-YIELD CACHING — full reproduction report",
        f"traces: {args.num_queries} queries each (edr, dr1), "
        f"profile {args.profile}; database "
        f"{edr.database_bytes / 1e6:.2f} MB",
        "",
    ]

    all_hold = True
    for label, module, needs in EXPERIMENTS:
        if needs == "both":
            result = module.run((edr, dr1))
        else:
            result = module.run(edr)
        sections.append("=" * 72)
        sections.append(module.render(result))
        sections.append("")
        all_hold = all_hold and result.shape_holds

    sections.append("=" * 72)
    verdict = "ALL SHAPES HOLD" if all_hold else "SOME SHAPES VIOLATED"
    sections.append(
        f"{verdict} — {len(EXPERIMENTS)} experiments in "
        f"{time.time() - start:.1f}s"
    )
    report = "\n".join(sections)
    print(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"\nreport written to {args.output}")
    if telemetry is not None:
        path = _write_telemetry(
            Path(args.telemetry_dir),
            telemetry,
            args,
            elapsed_seconds=time.time() - start,
        )
        print(f"telemetry written to {path}")
    return 0 if all_hold else 1


if __name__ == "__main__":
    sys.exit(main())
