"""Figure 10 — total cost vs cache size, column caching.

The column-granularity companion of Figure 9.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentContext
from repro.experiments.fig9_cache_size_tables import (
    SweepExperimentResult,
    render_sweep,
    run_sweep,
)


def run(
    context: Optional[ExperimentContext] = None,
) -> SweepExperimentResult:
    return run_sweep("column", context)


def render(result: SweepExperimentResult) -> str:
    return render_sweep(result, "Figure 10")


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
