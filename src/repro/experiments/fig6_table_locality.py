"""Figure 6 — table locality.

Same analysis as Figure 5 at table granularity: tables show heavy,
long-lasting reuse concentrated on a small working set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments.common import ExperimentContext, build_context
from repro.sim.reporting import ascii_chart
from repro.workload.locality import LocalityReport, analyze_locality


@dataclass
class Fig6Result:
    report: LocalityReport

    @property
    def shape_holds(self) -> bool:
        return (
            self.report.concentration(0.9) < 0.85
            and self.report.mean_run_length() > 2.0
        )


def run(context: Optional[ExperimentContext] = None) -> Fig6Result:
    if context is None:
        context = build_context("edr")
    lookup = context.federation.schema_lookup()
    universe = len(context.federation.objects("table"))
    report = analyze_locality(
        context.trace, lookup, "table", universe_size=universe
    )
    return Fig6Result(report=report)


def render(result: Fig6Result) -> str:
    report = result.report
    points = [(float(q), float(e)) for q, e in report.points]
    chart = ascii_chart(
        {"table referenced": points},
        title="Figure 6: table locality (EDR trace)",
        x_label="query number",
        y_label="table index (discovery order)",
        height=max(8, report.distinct_used + 2),
    )
    labels = "\n".join(
        f"  {index}: {name} ({count} refs)"
        for index, (name, count) in enumerate(
            (name, report.reference_counts[name])
            for name in report.elements
        )
    )
    summary = (
        f"tables in schema:  {report.total_elements_in_schema}\n"
        f"tables ever used:  {report.distinct_used}\n{labels}\n"
        f"fraction of used tables receiving 90% of references: "
        f"{report.concentration(0.9):.2f}\n"
        f"mean consecutive-run length: "
        f"{report.mean_run_length():.1f} queries\n"
        f"paper shape (concentrated, long-lasting reuse): "
        f"{'HOLDS' if result.shape_holds else 'VIOLATED'}"
    )
    return f"{chart}\n{summary}"


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
