"""Figure 7 — cumulative network cost per query, **table caching**.

The paper plots the running WAN cost of each algorithm over the EDR
trace: the bypass-yield variants sit a factor of five to ten below GDS
and no-cache and track static table caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from repro.experiments.common import (
    ExperimentContext,
    build_context,
    experiment_instrumentation,
    parallel_workers,
)
from repro.sim.reporting import cost_series_chart, format_table
from repro.sim.results import SimulationResult
from repro.sim.runner import compare_policies

#: Headline cache size (fraction of total DB bytes).
CACHE_FRACTION = 0.3

POLICIES = (
    "rate-profile",
    "online-by",
    "space-eff-by",
    "gds",
    "static",
    "no-cache",
)


@dataclass
class CostSeriesResult:
    granularity: str
    cache_fraction: float
    results: Dict[str, SimulationResult] = field(default_factory=dict)
    sequence_bytes: float = 0.0

    def total(self, name: str) -> float:
        return self.results[name].total_bytes

    @property
    def shape_holds(self) -> bool:
        """Bypass-yield ~5-10x below GDS and no-cache; near static."""
        rate = self.total("rate-profile")
        if rate <= 0:
            return False
        beats_nocache = self.total("no-cache") / rate >= 4.0
        beats_gds = self.total("gds") / rate >= 4.0
        return beats_nocache and beats_gds


def run_cost_series(
    granularity: str,
    context: Optional[ExperimentContext] = None,
    cache_fraction: float = CACHE_FRACTION,
    policies: Sequence[str] = POLICIES,
) -> CostSeriesResult:
    """Shared driver for Figures 7 and 8."""
    if context is None:
        context = build_context("edr")
    capacity = context.capacity_for(cache_fraction)
    workers = parallel_workers()
    results = compare_policies(
        context.prepared,
        context.federation,
        capacity,
        granularity,
        policies=policies,
        record_series=True,
        parallel=workers > 1,
        max_workers=workers or None,
        instrumentation=experiment_instrumentation(),
    )
    return CostSeriesResult(
        granularity=granularity,
        cache_fraction=cache_fraction,
        results=results,
        sequence_bytes=float(context.prepared.sequence_bytes),
    )


def render_cost_series(result: CostSeriesResult, figure: str) -> str:
    chart = cost_series_chart(
        result.results,
        title=(
            f"{figure}: network cost of various algorithms for "
            f"{result.granularity} caching "
            f"(cache = {result.cache_fraction:.0%} of DB)"
        ),
    )
    rows = [
        [
            name,
            sim.total_bytes / 1e6,
            sim.total_bytes and result.sequence_bytes / sim.total_bytes,
            f"{sim.hit_rate:.2f}",
        ]
        for name, sim in result.results.items()
    ]
    table = format_table(
        ["algorithm", "total (MB)", "savings vs no-cache (x)", "hit rate"],
        rows,
    )
    verdict = (
        "paper shape (bypass-yield >=4x below GDS and no-cache): "
        f"{'HOLDS' if result.shape_holds else 'VIOLATED'}"
    )
    return f"{chart}\n{table}\n{verdict}"


def run(
    context: Optional[ExperimentContext] = None,
    cache_fraction: float = CACHE_FRACTION,
) -> CostSeriesResult:
    return run_cost_series("table", context, cache_fraction)


def render(result: CostSeriesResult) -> str:
    return render_cost_series(result, "Figure 7")


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
