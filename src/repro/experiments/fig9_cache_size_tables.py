"""Figure 9 — total cost vs cache size (10%-100% of DB), table caching.

The paper's two conclusions: (1) Rate-Profile degrades at very small
caches (it evicts objects before their load cost is recovered);
(2) bypass caches need to be ~20-30% of the database to be effective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.experiments.common import (
    ExperimentContext,
    build_context,
    experiment_instrumentation,
    parallel_workers,
)
from repro.sim.reporting import format_table, sweep_chart
from repro.sim.results import SweepResult
from repro.sim import runner as sim_runner

FRACTIONS = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)
POLICIES = ("rate-profile", "online-by", "space-eff-by", "gds", "static")


@dataclass
class SweepExperimentResult:
    sweep: SweepResult
    sequence_bytes: float

    def total_at(self, policy: str, fraction: float) -> float:
        for point in self.sweep.series(policy):
            if abs(point.cache_fraction - fraction) < 1e-9:
                return point.total_bytes
        raise KeyError(f"no point for {policy} at {fraction}")

    @property
    def shape_holds(self) -> bool:
        """At moderate cache sizes the bypass variants beat GDS clearly,
        and a larger cache never drastically hurts them.  Partial sweeps
        (missing the reference fractions or policies) report False."""
        try:
            mid = self.total_at("rate-profile", 0.3)
            gds_mid = self.total_at("gds", 0.3)
            large = self.total_at("rate-profile", 0.8)
        except KeyError:
            return False
        return gds_mid / max(mid, 1.0) >= 3.0 and large <= mid * 1.5


def run_sweep(
    granularity: str,
    context: Optional[ExperimentContext] = None,
    fractions: Sequence[float] = FRACTIONS,
    policies: Sequence[str] = POLICIES,
) -> SweepExperimentResult:
    """Shared driver for Figures 9 and 10.

    The (fraction × policy) grid fans out over worker processes (see
    :func:`repro.experiments.common.parallel_workers`); results are
    identical to a serial run.
    """
    if context is None:
        context = build_context("edr")
    workers = parallel_workers()
    sweep = sim_runner.run_sweep(
        context.prepared,
        context.federation,
        granularity=granularity,
        fractions=fractions,
        policies=policies,
        parallel=workers > 1,
        max_workers=workers or None,
        instrumentation=experiment_instrumentation(),
    )
    return SweepExperimentResult(
        sweep=sweep,
        sequence_bytes=float(context.prepared.sequence_bytes),
    )


def render_sweep(result: SweepExperimentResult, figure: str) -> str:
    chart = sweep_chart(
        result.sweep,
        title=(
            f"{figure}: algorithm performance for an increasing cache "
            f"size, {result.sweep.granularity} caching (log scale)"
        ),
    )
    headers = ["% cache"] + list(result.sweep.policies())
    fractions = sorted(
        {point.cache_fraction for point in result.sweep.points}
    )
    rows = []
    for fraction in fractions:
        row: list = [f"{fraction:.0%}"]
        for name in result.sweep.policies():
            row.append(result.total_at(name, fraction) / 1e6)
        rows.append(row)
    table = format_table(headers, rows, title="total WAN cost (MB)")
    verdict = (
        "paper shape (bypass-yield ~flat and well below GDS): "
        f"{'HOLDS' if result.shape_holds else 'VIOLATED'}"
    )
    return f"{chart}\n{table}\n{verdict}"


def run(
    context: Optional[ExperimentContext] = None,
) -> SweepExperimentResult:
    return run_sweep("table", context)


def render(result: SweepExperimentResult) -> str:
    return render_sweep(result, "Figure 9")


def main() -> None:
    print(render(run()))


if __name__ == "__main__":
    main()
