"""The yield model: per-object attribution of query result bytes.

A query's *yield* is the byte size of its result (Section 3).  When a
query touches several cacheable objects, the yield is divided among them
(Section 6):

* **table granularity** — "yield for each table ... is divided in
  proportion to the table's contribution to the unique attributes in the
  query" (the paper's example splits a join's yield in half because four
  columns of each table are involved);
* **column granularity** — "query yield is proportional to each attribute
  based on a ratio of storage size of the attribute to the total storage
  sizes of all columns referenced in the query" (the example attributes
  ``8/46 * Y`` to an 8-byte column out of 46 referenced bytes).

"Referenced" means appearing anywhere in the statement: select list,
predicates, join conditions, grouping, and ordering.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import CacheError
from repro.sqlengine.ast_nodes import ColumnRef, Expr, column_refs
from repro.sqlengine.planner import QueryPlan, ScopeEntry
from repro.sqlengine.statistics import YieldEstimator

if TYPE_CHECKING:  # typing-only: keeps repro.core import-light
    from repro.federation.federation import Federation
    from repro.federation.mediator import Mediator


# ---------------------------------------------------------------------------
# Yield sources: where a query's result size comes from
# ---------------------------------------------------------------------------

#: Yield-source modes selectable per run.
YIELD_MODES = ("exact", "estimated")


@dataclass(frozen=True)
class YieldMeasurement:
    """One query's measured (or estimated) result size.

    Attributes:
        yield_bytes: The query's yield — result bytes shipped to the
            application.
        bypass_bytes: WAN bytes if the query is bypassed (differs from
            ``yield_bytes`` only for decomposed multi-server queries,
            and only under the exact source — the estimator prices the
            decomposition at the estimated yield).
    """

    yield_bytes: int
    bypass_bytes: int


class YieldSource(abc.ABC):
    """Where per-query yields come from — the exact/estimated seam.

    The paper measures yields "by re-executing the traces with the
    server"; a production mediator cannot afford that and estimates
    result sizes from catalog statistics instead.  Everything downstream
    of trace preparation (attribution, compilation, policy decisions,
    accounting) is source-blind: it consumes
    :class:`~repro.workload.trace.PreparedQuery` records and never knows
    whether their yields were executed or estimated.  Selecting the
    source per run is therefore a one-line switch, which is what the
    estimator-fidelity harness sweeps.
    """

    #: Stable identifier recorded in stream/report metadata.
    mode: str = ""

    @abc.abstractmethod
    def measure(
        self, sql: str, plan: QueryPlan, servers: Sequence[str]
    ) -> YieldMeasurement:
        """Measure one planned query's yield and bypass bytes."""


class ExactYieldSource(YieldSource):
    """Execute every query and take the exact result size (the paper)."""

    mode = "exact"

    def __init__(self, mediator: "Mediator") -> None:
        self._mediator = mediator

    def measure(
        self, sql: str, plan: QueryPlan, servers: Sequence[str]
    ) -> YieldMeasurement:
        result = self._mediator.evaluate(sql, plan)
        yield_bytes = result.byte_size
        if len(servers) <= 1:
            return YieldMeasurement(yield_bytes, yield_bytes)
        return YieldMeasurement(
            yield_bytes, self._decomposed_bypass(sql, plan, result)
        )

    def _decomposed_bypass(
        self, sql: str, plan: QueryPlan, result: object
    ) -> int:
        """Measure decomposed shipping without polluting the ledger."""
        mediator = self._mediator
        snapshot = mediator.ledger.snapshot()
        federated = mediator.bypass(sql, plan, result)
        # Roll the ledger back: measurement must be accounting-neutral.
        mediator.ledger.restore(snapshot)
        return int(federated.wan_bytes)


class EstimatedYieldSource(YieldSource):
    """Estimate result sizes from statistics; no query is ever executed.

    Preparation becomes O(plans) instead of O(data) — the raw-speed mode
    million-query traces run under.  Multi-server decomposition is
    priced at the estimated yield (the estimator has no per-server
    breakdown), which the fidelity harness accounts for.
    """

    mode = "estimated"

    def __init__(self, estimator: YieldEstimator) -> None:
        self.estimator = estimator

    def measure(
        self, sql: str, plan: QueryPlan, servers: Sequence[str]
    ) -> YieldMeasurement:
        estimated = int(round(self.estimator.estimate_yield(plan)))
        return YieldMeasurement(estimated, estimated)


def make_yield_source(
    mode: str,
    mediator: Optional["Mediator"] = None,
    federation: Optional["Federation"] = None,
    estimator: Optional[YieldEstimator] = None,
) -> YieldSource:
    """Build the yield source for ``mode`` (``"exact"``/``"estimated"``).

    ``exact`` needs a mediator; ``estimated`` needs an estimator, or a
    federation/mediator to collect statistics from (the federation is
    catalog-like across every server, so one collection covers
    cross-server joins too).
    """
    if mode == "exact":
        if mediator is None:
            raise CacheError("exact yield source requires a mediator")
        return ExactYieldSource(mediator)
    if mode == "estimated":
        if estimator is None:
            if federation is None and mediator is not None:
                federation = mediator.federation
            if federation is None:
                raise CacheError(
                    "estimated yield source requires an estimator or a "
                    "federation to collect statistics from"
                )
            estimator = YieldEstimator.from_catalog(federation)
        return EstimatedYieldSource(estimator)
    raise CacheError(
        f"unknown yield mode {mode!r}; use one of {YIELD_MODES}"
    )


def referenced_columns(plan: QueryPlan) -> Dict[str, Set[str]]:
    """table_name -> set of referenced column names for one plan.

    Every table in FROM contributes its join-edge and predicate columns;
    a table referenced with zero resolvable columns (e.g. ``SELECT
    COUNT(*) FROM T``) still appears with an empty set so table-level
    attribution can include it.
    """
    refs: Dict[str, Set[str]] = {
        entry.table_name: set() for entry in plan.scope
    }
    bindings = {entry.binding.lower(): entry for entry in plan.scope}

    def note(ref: ColumnRef) -> None:
        if ref.table is not None:
            entry = bindings.get(ref.table.lower())
            if entry is not None and ref.column in entry.schema:
                refs[entry.table_name].add(
                    entry.schema.column(ref.column).name
                )
            return
        owners = [
            entry for entry in plan.scope if ref.column in entry.schema
        ]
        if len(owners) == 1:
            refs[owners[0].table_name].add(
                owners[0].schema.column(ref.column).name
            )

    exprs: List[Expr] = [out.expr for out in plan.outputs]
    for predicates in plan.local_predicates.values():
        exprs.extend(predicates)
    exprs.extend(plan.residual_predicates)
    exprs.extend(plan.group_by)
    if plan.statement.having is not None:
        exprs.append(plan.statement.having)
    for item in plan.statement.order_by:
        exprs.append(item.expr)
    for expr in exprs:
        for ref in column_refs(expr):
            note(ref)
    for edge in plan.join_edges:
        left = bindings[edge.left_binding.lower()]
        right = bindings[edge.right_binding.lower()]
        refs[left.table_name].add(
            left.schema.column(edge.left_column).name
        )
        refs[right.table_name].add(
            right.schema.column(edge.right_column).name
        )
    return refs


def attribute_yield_tables(
    plan: QueryPlan, yield_bytes: float
) -> Dict[str, float]:
    """Split a query's yield among its tables (unique-attribute rule).

    Tables referenced without any concrete column (pure ``COUNT(*)``)
    count as one attribute so they receive a share.
    """
    refs = referenced_columns(plan)
    weights = {
        table: max(1, len(columns)) for table, columns in refs.items()
    }
    total = sum(weights.values())
    if total == 0:
        return {}
    return {
        table: yield_bytes * weight / total
        for table, weight in weights.items()
    }


def attribute_yield_columns(
    plan: QueryPlan, yield_bytes: float
) -> Dict[str, float]:
    """Split a query's yield among referenced columns by byte width.

    Returns ``{"Table.column": share_bytes}``.  A query referencing no
    concrete column (``SELECT COUNT(*) FROM T``) attributes its whole
    yield to the table's first column, which is the narrowest cacheable
    object that can answer it.
    """
    refs = referenced_columns(plan)
    schema_by_table = {
        entry.table_name: entry.schema for entry in plan.scope
    }
    widths: Dict[str, int] = {}
    for table, columns in refs.items():
        schema = schema_by_table[table]
        if not columns:
            first = schema.columns[0]
            widths[f"{table}.{first.name}"] = first.width
            continue
        for column in columns:
            col = schema.column(column)
            widths[f"{table}.{col.name}"] = col.width
    total = sum(widths.values())
    if total == 0:
        return {}
    return {
        object_id: yield_bytes * width / total
        for object_id, width in widths.items()
    }


def referenced_object_ids(plan: QueryPlan, granularity: str) -> List[str]:
    """The cacheable objects a query needs at ``granularity``.

    At table granularity: every FROM/JOIN table.  At column granularity:
    every referenced column (with the COUNT(*)-style fallback above).
    """
    if granularity == "table":
        seen: List[str] = []
        for entry in plan.scope:
            if entry.table_name not in seen:
                seen.append(entry.table_name)
        return seen
    refs = referenced_columns(plan)
    schema_by_table = {
        entry.table_name: entry.schema for entry in plan.scope
    }
    ids: List[str] = []
    for table, columns in refs.items():
        schema = schema_by_table[table]
        if not columns:
            ids.append(f"{table}.{schema.columns[0].name}")
            continue
        for column in sorted(columns, key=schema.index_of):
            ids.append(f"{table}.{schema.column(column).name}")
    return ids
