"""Bypass-object caching — the ``A_obj`` subroutine (Section 5.1).

The restricted problem: requests name whole objects of varying size and
fetch cost; a miss may be *bypassed* (pay the fetch cost, cache
unchanged) or the object may be fetched into the cache (pay the fetch
cost, evict as needed).  Irani gives an O(lg^2 k)-competitive algorithm
for this "optional multi-size paging"; any such algorithm plugs into
OnlineBY/SpaceEffBY.

This implementation combines:

* a per-object **rent-to-buy** account (:class:`~repro.core.ski_rental.
  SkiRental`): an object is only fetched once bypassed requests have paid
  WAN traffic equal to its load cost — the paper's description of its
  k-competitive algorithm;
* **Landlord** credit eviction (Young's generalization of Greedy-Dual to
  multi-size, multi-cost caching): every resident object holds credit,
  initially its fetch cost and refreshed on hits; making room drains
  credit in proportion to size and evicts the objects that reach zero
  first (equivalently: evict ascending by credit/size, then charge the
  survivors the evicted ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.ski_rental import SkiRental
from repro.core.store import CacheStore
from repro.errors import CacheError


@dataclass
class ObjectOutcome:
    """What one object request did to the cache."""

    hit: bool
    loaded: bool = False
    evicted: List[str] = field(default_factory=list)


class BypassObjectCache:
    """Rent-to-buy admission + Landlord eviction over a byte store.

    Args:
        store: Shared byte-accounted storage.
        admission: ``"rent-to-buy"`` (default; the paper's k-competitive
            rule — load only after bypassed traffic equals the load
            cost) or ``"eager"`` (load on first miss, the in-line
            behaviour; kept for the ablation that isolates what the
            bypass option itself is worth).
    """

    ADMISSION_MODES = ("rent-to-buy", "eager")

    def __init__(
        self, store: CacheStore, admission: str = "rent-to-buy"
    ) -> None:
        if admission not in self.ADMISSION_MODES:
            raise CacheError(
                f"unknown admission mode {admission!r}; "
                f"use one of {self.ADMISSION_MODES}"
            )
        self.admission = admission
        self.store = store
        self._credits: Dict[str, float] = {}
        self._fetch_costs: Dict[str, float] = {}
        self._accounts: Dict[str, SkiRental] = {}
        self.hits = 0
        self.misses = 0
        self.loads = 0

    def __contains__(self, object_id: str) -> bool:
        return object_id in self.store

    def credit(self, object_id: str) -> float:
        """Current Landlord credit of a resident object."""
        if object_id not in self.store:
            raise CacheError(f"{object_id!r} is not cached")
        return self._credits[object_id]

    def request(
        self, object_id: str, size: int, fetch_cost: float
    ) -> ObjectOutcome:
        """Process one whole-object request.

        Hit: refresh credit.  Miss: pay rent; once rent covers the fetch
        cost, buy (load, evicting by Landlord).  Objects too large for
        the cache are always bypassed.
        """
        if object_id in self.store:
            self.hits += 1
            self._credits[object_id] = fetch_cost
            self._fetch_costs[object_id] = fetch_cost
            return ObjectOutcome(hit=True)

        self.misses += 1
        if not self.store.fits(size):
            return ObjectOutcome(hit=False)

        account = self._accounts.get(object_id)
        if account is None or account.buy_cost != fetch_cost:
            paid = account.paid if account is not None else 0.0
            account = SkiRental(buy_cost=fetch_cost, paid=paid)
            self._accounts[object_id] = account
        if account.bought:
            # Was bought before but evicted since; start a new rental run.
            account.reset()

        if self.admission == "eager" or account.should_buy():
            evicted = self._make_room(size)
            self.store.add(object_id, size)
            self._credits[object_id] = fetch_cost
            self._fetch_costs[object_id] = fetch_cost
            account.buy()
            self.loads += 1
            return ObjectOutcome(hit=False, loaded=True, evicted=evicted)

        account.pay_rent(fetch_cost)
        return ObjectOutcome(hit=False)

    def _make_room(self, size: int) -> List[str]:
        """Landlord eviction until ``size`` bytes are free.

        Equivalent to the credit-drain process: evict ascending by
        credit/size and charge the survivors the largest evicted ratio.
        """
        if self.store.has_room(size):
            return []
        ranked = sorted(
            self.store.object_ids(),
            key=lambda oid: self._credits[oid] / self.store.size_of(oid),
        )
        evicted: List[str] = []
        drained_ratio = 0.0
        for object_id in ranked:
            if self.store.has_room(size):
                break
            drained_ratio = (
                self._credits[object_id] / self.store.size_of(object_id)
            )
            self.store.remove(object_id)
            del self._credits[object_id]
            self._fetch_costs.pop(object_id, None)
            evicted.append(object_id)
        # Survivors pay rent proportional to their size (Landlord step).
        if drained_ratio > 0.0:
            for object_id in self.store.object_ids():
                reduced = self._credits[object_id] - (
                    drained_ratio * self.store.size_of(object_id)
                )
                self._credits[object_id] = max(0.0, reduced)
        if not self.store.has_room(size):
            raise CacheError(
                "landlord eviction failed to free enough space; "
                "object size exceeds capacity"
            )
        return evicted

    def evict(self, object_id: str) -> None:
        """Force-evict (used by tests and consistency hooks)."""
        self.store.remove(object_id)
        self._credits.pop(object_id, None)
        self._fetch_costs.pop(object_id, None)
        account = self._accounts.get(object_id)
        if account is not None:
            account.reset()

    def tracked_accounts(self) -> int:
        """Number of rent-to-buy accounts (metadata footprint)."""
        return len(self._accounts)
