"""Bypass-object caching — the ``A_obj`` subroutine (Section 5.1).

The restricted problem: requests name whole objects of varying size and
fetch cost; a miss may be *bypassed* (pay the fetch cost, cache
unchanged) or the object may be fetched into the cache (pay the fetch
cost, evict as needed).  Irani gives an O(lg^2 k)-competitive algorithm
for this "optional multi-size paging"; any such algorithm plugs into
OnlineBY/SpaceEffBY.

This implementation combines:

* a per-object **rent-to-buy** account (:class:`~repro.core.ski_rental.
  SkiRental`): an object is only fetched once bypassed requests have paid
  WAN traffic equal to its load cost — the paper's description of its
  k-competitive algorithm;
* **Landlord** credit eviction (Young's generalization of Greedy-Dual to
  multi-size, multi-cost caching): every resident object holds credit,
  initially its fetch cost and refreshed on hits; making room drains
  credit in proportion to size and evicts the objects that reach zero
  first (equivalently: evict ascending by credit/size, then charge the
  survivors the evicted ratio).

Landlord is implemented with the standard **global-offset trick** so the
survivor rent-charge is O(1) instead of O(survivors): instead of
mutating every resident's credit when room is made, one inflation
offset ``L`` advances and each resident stores the *rank*
``credit/size + L_at_write`` in a lazy-deletion heap.  Eviction pops
ascending rank; setting ``L`` to the last evicted rank charges every
survivor ``(L_new - L_old) * size`` implicitly.  Credits are
materialized only on read: ``credit = credit_at_write -
(L_now - L_at_write) * size`` (clamped at zero), so the
:meth:`BypassObjectCache.credit` introspection API keeps its exact
semantics.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.ski_rental import SkiRental
from repro.core.store import CacheStore
from repro.core.victimheap import VictimHeap
from repro.errors import CacheError


@dataclass
class ObjectOutcome:
    """What one object request did to the cache."""

    hit: bool
    loaded: bool = False
    evicted: List[str] = field(default_factory=list)


class BypassObjectCache:
    """Rent-to-buy admission + Landlord eviction over a byte store.

    Args:
        store: Shared byte-accounted storage.
        admission: ``"rent-to-buy"`` (default; the paper's k-competitive
            rule — load only after bypassed traffic equals the load
            cost) or ``"eager"`` (load on first miss, the in-line
            behaviour; kept for the ablation that isolates what the
            bypass option itself is worth).
        max_accounts: Rent-to-buy accounts kept at once.  Accounts are
            pure metadata and previously grew without bound across
            evictions; beyond this cap the least-recently-touched
            accounts are pruned (mirroring ``max_tracked`` on the
            rate-profile policy).
    """

    ADMISSION_MODES = ("rent-to-buy", "eager")

    def __init__(
        self,
        store: CacheStore,
        admission: str = "rent-to-buy",
        max_accounts: int = 20000,
    ) -> None:
        if admission not in self.ADMISSION_MODES:
            raise CacheError(
                f"unknown admission mode {admission!r}; "
                f"use one of {self.ADMISSION_MODES}"
            )
        if max_accounts <= 0:
            raise CacheError("max_accounts must be positive")
        self.admission = admission
        self.store = store
        self.max_accounts = max_accounts
        # Resident bookkeeping: credit_at_write, offset_at_write,
        # load sequence number (ties in the eviction order resolve by
        # load order, matching the stable sort this replaces).
        self._entries: dict[str, Tuple[float, float, int]] = {}
        self._fetch_costs: dict[str, float] = {}
        self._victims = VictimHeap()
        self._offset = 0.0
        self._load_seq = 0
        self._accounts: "OrderedDict[str, SkiRental]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.loads = 0

    def __contains__(self, object_id: str) -> bool:
        return object_id in self.store

    def credit(self, object_id: str) -> float:
        """Current Landlord credit of a resident object.

        Materialized lazily from the stored rank: the rent charged
        since the entry was written is ``(offset_now - offset_at_write)
        * size``, clamped at zero exactly as the eager survivor charge
        was.
        """
        if object_id not in self.store:
            raise CacheError(f"{object_id!r} is not cached")
        credit_at_write, offset_at_write, _ = self._entries[object_id]
        charged = (self._offset - offset_at_write) * self.store.size_of(
            object_id
        )
        return max(0.0, credit_at_write - charged)

    def _set_credit(
        self, object_id: str, size: int, credit: float, load_seq: int
    ) -> None:
        """Write a resident entry and its rank-heap key."""
        self._entries[object_id] = (credit, self._offset, load_seq)
        self._victims.set(
            object_id, (credit / size + self._offset, load_seq)
        )

    def request(
        self, object_id: str, size: int, fetch_cost: float
    ) -> ObjectOutcome:
        """Process one whole-object request.

        Hit: refresh credit.  Miss: pay rent; once rent covers the fetch
        cost, buy (load, evicting by Landlord).  Objects too large for
        the cache are always bypassed.
        """
        if object_id in self.store:
            self.hits += 1
            # Refresh keeps the original load sequence so credit ties
            # still resolve by residency order, as the stable sort did.
            load_seq = self._entries[object_id][2]
            self._set_credit(object_id, size, fetch_cost, load_seq)
            self._fetch_costs[object_id] = fetch_cost
            return ObjectOutcome(hit=True)

        self.misses += 1
        if not self.store.fits(size):
            return ObjectOutcome(hit=False)

        account = self._accounts.get(object_id)
        if account is None or account.buy_cost != fetch_cost:
            paid = account.paid if account is not None else 0.0
            account = SkiRental(buy_cost=fetch_cost, paid=paid)
            if object_id not in self._accounts:
                self._prune_accounts()
            self._accounts[object_id] = account
        self._accounts.move_to_end(object_id)
        if account.bought:
            # Was bought before but evicted since; start a new rental run.
            account.reset()

        if self.admission == "eager" or account.should_buy():
            evicted = self._make_room(size)
            self.store.add(object_id, size)
            self._load_seq += 1
            self._set_credit(object_id, size, fetch_cost, self._load_seq)
            self._fetch_costs[object_id] = fetch_cost
            account.buy()
            self.loads += 1
            return ObjectOutcome(hit=False, loaded=True, evicted=evicted)

        account.pay_rent(fetch_cost)
        return ObjectOutcome(hit=False)

    def _prune_accounts(self) -> None:
        """Drop the oldest-touched accounts once the cap is reached.

        Called before inserting a new account; prunes a 10% batch so
        the O(pruned) cost amortizes instead of firing per insert.
        """
        if len(self._accounts) < self.max_accounts:
            return
        drop = max(1, len(self._accounts) // 10)
        for _ in range(drop):
            self._accounts.popitem(last=False)

    def _make_room(self, size: int) -> List[str]:
        """Landlord eviction until ``size`` bytes are free.

        Pops ascending by rank (= credit/size at write time, inflated
        by the offset then in force); advancing the offset to the last
        evicted rank charges all survivors their proportional rent in
        O(1).
        """
        if self.store.has_room(size):
            return []
        evicted: List[str] = []
        top_rank = self._offset
        while not self.store.has_room(size):
            popped = self._victims.pop_min()
            if popped is None:
                raise CacheError(
                    "landlord eviction failed to free enough space; "
                    "object size exceeds capacity"
                )
            (rank, _), object_id = popped
            top_rank = rank
            self.store.remove(object_id)
            del self._entries[object_id]
            self._fetch_costs.pop(object_id, None)
            evicted.append(object_id)
        # Survivors pay rent proportional to their size (Landlord
        # step): one offset bump instead of touching every resident.
        if top_rank > self._offset:
            self._offset = top_rank
        return evicted

    def evict(self, object_id: str) -> None:
        """Force-evict (used by tests and consistency hooks)."""
        self.store.remove(object_id)
        self._entries.pop(object_id, None)
        self._victims.discard(object_id)
        self._fetch_costs.pop(object_id, None)
        account = self._accounts.get(object_id)
        if account is not None:
            account.reset()

    def tracked_accounts(self) -> int:
        """Number of rent-to-buy accounts (metadata footprint)."""
        return len(self._accounts)
