"""Shared victim-selection heaps for the per-query decision hot path.

Every replacement policy answers the same question many times per
query: *which resident object currently has the least utility?*  The
seed implementation answered it with a full scan (or sort) of the
resident set — O(n) to O(n log n) per eviction, which dominates replay
time once caches hold 10^4+ objects.

:class:`VictimHeap` answers it in O(log n) amortized with the standard
**lazy-deletion** technique: every priority update pushes a fresh heap
entry and records the object's *current* key in a side table; entries
whose key no longer matches the table (the object was re-prioritized,
evicted, or invalidated) are stale and are discarded when they surface
at the heap top.  Selection therefore never trusts an entry without
re-validating it against live state, which is what keeps decisions
byte-identical to the exact scans they replace: the pop order over live
entries is exactly ascending key order, and each policy encodes its
scan's tie-breaking rule into the key itself (object id, admission
sequence number, :class:`ReverseOrder` for descending scans).

The heap is policy-agnostic: keys are opaque orderable values.  Users:

* LRU/LFU/LRU-K/LFF/GDS/GDSP victim choice in
  :mod:`repro.core.policies.baselines`;
* Landlord eviction order in :mod:`repro.core.object_cache` (with the
  global-offset trick making survivor aging O(1));
* the per-epoch candidate heap in
  :mod:`repro.core.policies.rate_profile`.
"""

from __future__ import annotations

import heapq
from typing import Any, Container, Dict, List, Optional, Tuple

__all__ = ["ReverseOrder", "VictimHeap"]


class ReverseOrder:
    """Total-order inversion wrapper for heap keys.

    Wrapping a key component flips its comparison, letting a min-heap
    reproduce a ``max(...)`` scan *including its tie-break direction*
    (e.g. largest-file-first breaks size ties toward the largest object
    id; negating the size alone would flip that tie toward the
    smallest).
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "ReverseOrder") -> bool:
        return other.value < self.value

    def __le__(self, other: "ReverseOrder") -> bool:
        return other.value <= self.value

    def __gt__(self, other: "ReverseOrder") -> bool:
        return other.value > self.value

    def __ge__(self, other: "ReverseOrder") -> bool:
        return other.value >= self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ReverseOrder) and other.value == self.value

    def __hash__(self) -> int:
        return hash((ReverseOrder, self.value))

    def __repr__(self) -> str:
        return f"ReverseOrder({self.value!r})"


#: Sentinel distinguishing "no key recorded" from any real key.
_MISSING = object()

#: Compaction threshold: rebuild once stale entries outnumber live ones
#: by this factor (and the heap is big enough for it to matter).
_COMPACT_FACTOR = 4
_COMPACT_MIN = 64


class VictimHeap:
    """Lazy-deletion min-heap from object ids to orderable keys.

    The mapping semantics are those of a dict (one live key per object
    id); the heap gives O(log n) access to the minimum *live* entry.
    Keys must be mutually orderable; encode tie-breaks explicitly in
    the key (the trailing object id in each heap entry only breaks
    exact key collisions, mirroring tuple-scan behaviour).
    """

    __slots__ = ("_heap", "_keys")

    def __init__(self) -> None:
        self._heap: List[Tuple[Any, str]] = []
        self._keys: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._keys

    def key_of(self, object_id: str) -> Any:
        """The object's current key (KeyError when absent)."""
        return self._keys[object_id]

    def set(self, object_id: str, key: Any) -> None:
        """Insert or re-prioritize an object.

        Previous entries for the object become stale and are skipped
        (and dropped) when they reach the heap top.
        """
        self._keys[object_id] = key
        heapq.heappush(self._heap, (key, object_id))
        if len(self._heap) > _COMPACT_MIN and len(self._heap) > (
            _COMPACT_FACTOR * len(self._keys)
        ):
            self._compact()

    def discard(self, object_id: str) -> None:
        """Forget an object (its heap entries become stale)."""
        self._keys.pop(object_id, None)

    def clear(self) -> None:
        self._heap.clear()
        self._keys.clear()

    def _live(self, entry: Tuple[Any, str]) -> bool:
        key, object_id = entry
        return self._keys.get(object_id, _MISSING) == key

    def _compact(self) -> None:
        self._heap = [
            (key, object_id) for object_id, key in self._keys.items()
        ]
        heapq.heapify(self._heap)

    def pop_min(self) -> Optional[Tuple[Any, str]]:
        """Remove and return the minimum live ``(key, object_id)``.

        Returns None when no live entries remain.  Stale entries
        encountered on the way are discarded.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if self._live(entry):
                del self._keys[entry[1]]
                return entry
        return None

    def select_min(self, skip: Container[str] = ()) -> Optional[str]:
        """The live object with the minimum key, ignoring ``skip``.

        Non-destructive: the mapping is unchanged (the caller evicts
        via :meth:`discard` if it acts on the answer).  Live entries
        popped while searching — including any skipped ones — are
        pushed back; stale entries are dropped.
        """
        heap = self._heap
        stash: List[Tuple[Any, str]] = []
        winner: Optional[str] = None
        while heap:
            entry = heapq.heappop(heap)
            if not self._live(entry):
                continue
            stash.append(entry)
            if entry[1] in skip:
                continue
            winner = entry[1]
            break
        for entry in stash:
            heapq.heappush(heap, entry)
        return winner
