"""The shared offline/online decision pipeline.

Both replay drivers — the offline
:class:`~repro.sim.simulator.Simulator` and the online
:class:`~repro.core.proxy.BypassYieldProxy` — must present *exactly* the
same view of a query to the cache policy and charge *exactly* the same
WAN costs for its decision; the paper's "the simulator and the proxy
agree" claim is only true if the two paths share one implementation.
This module is that implementation:

* :class:`ObjectCatalog` — memoized object metadata (sizes, fetch
  costs, owning servers), shared per federation via
  :func:`shared_catalog`;
* :class:`DecisionPipeline` — query → :class:`~repro.core.events.CacheQuery`
  construction (yield attribution plus the BYHR/BYU
  ``policy_sees_weights`` cost views) and WAN-cost accounting;
* :class:`QueryAccounting` — the per-query cost record both drivers
  produce;
* :class:`CompiledTrace` — a prepared trace fully lowered to the
  policy-facing event stream under one (granularity, cost-view),
  memoized per federation and trace so sweeps build each query stream
  once instead of once per (policy × capacity) cell.

The BYHR view (``policy_sees_weights=True``) expresses the load price
*and* the per-query savings in link-weighted cost units, so an object
behind an expensive link is more valuable to cache (eq. 1's ``f``
factor).  Mixing weighted costs with raw-byte yields inverts that
preference — the exact bug DESIGN.md §6 documents; keeping the view
logic in one place makes it unrepeatable.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.events import CacheQuery, Decision, ObjectRequest
from repro.core.instrumentation import DecisionEvent, Instrumentation
from repro.core.policies.static_select import accumulate_object_yields
from repro.core.units import (
    UNIT_WEIGHT,
    ZERO_BYTES,
    ZERO_COST,
    RawBytes,
    WeightedCost,
    per_byte_weight,
    raw_bytes,
    weigh,
)
from repro.core.yield_model import (
    attribute_yield_columns,
    attribute_yield_tables,
)
from repro.errors import CacheError
from repro.federation.federation import Federation
from repro.sqlengine.planner import QueryPlan
from repro.workload.trace import PreparedQuery, PreparedTrace

GRANULARITIES = ("table", "column")


class ObjectCatalog:
    """Memoized object metadata (sizes, fetch costs, owning servers)."""

    def __init__(self, federation: Federation) -> None:
        self._federation = federation
        self._sizes: Dict[str, RawBytes] = {}
        self._costs: Dict[str, WeightedCost] = {}
        self._servers: Dict[str, str] = {}

    def size(self, object_id: str) -> RawBytes:
        cached = self._sizes.get(object_id)
        if cached is None:
            cached = raw_bytes(self._federation.object_size(object_id))
            self._sizes[object_id] = cached
        return cached

    def fetch_cost(self, object_id: str) -> WeightedCost:
        cached = self._costs.get(object_id)
        if cached is None:
            cached = WeightedCost(self._federation.fetch_cost(object_id))
            self._costs[object_id] = cached
        return cached

    def server(self, object_id: str) -> str:
        cached = self._servers.get(object_id)
        if cached is None:
            cached = self._federation.server_for_object(object_id).name
            self._servers[object_id] = cached
        return cached


#: One catalog per live federation: simulators, runners, and proxies over
#: the same federation share memoized metadata instead of each rebuilding
#: it (sizes never change mid-run — SDSS releases are immutable).
_SHARED_CATALOGS: "weakref.WeakKeyDictionary[Federation, ObjectCatalog]" = (
    weakref.WeakKeyDictionary()
)


def shared_catalog(federation: Federation) -> ObjectCatalog:
    """The federation's shared :class:`ObjectCatalog` (created lazily)."""
    catalog = _SHARED_CATALOGS.get(federation)
    if catalog is None:
        catalog = ObjectCatalog(federation)
        _SHARED_CATALOGS[federation] = catalog
    return catalog


@dataclass(frozen=True)
class CompiledQuery:
    """One trace event lowered to its policy-facing form.

    Carries the :class:`~repro.core.events.CacheQuery` (already under
    the compiling pipeline's granularity and cost view) together with
    the raw accounting inputs the replay loop needs per query.
    """

    query: CacheQuery
    bypass_bytes: int
    servers: Tuple[str, ...]


@dataclass(frozen=True)
class CompiledTrace:
    """A prepared trace fully lowered to policy-facing events.

    Immutable and pickle-cheap: sweeps compile once in the parent and
    ship the compiled stream to every worker instead of re-attributing
    yields per (policy × capacity) cell.  ``object_totals`` carries the
    *raw-byte* per-object yield sums (what
    :func:`~repro.core.policies.static_select.accumulate_object_yields`
    returns) so the static policy's offline selection works from a
    compiled trace even though the event stream itself is expressed in
    the compiled cost view.
    """

    name: str
    granularity: str
    policy_sees_weights: bool
    sequence_bytes: int
    events: Tuple[CompiledQuery, ...]
    object_totals: Tuple[Tuple[str, float], ...]

    def __len__(self) -> int:
        return len(self.events)


#: Compiled traces memoized per federation; inside, traces key by
#: identity (PreparedTrace is an unhashable dataclass) guarded with a
#: weakref so a recycled id can never resurrect a dead trace's stream.
_TraceMemo = Dict[
    int,
    Tuple["weakref.ref[PreparedTrace]", Dict[Tuple[str, bool], CompiledTrace]],
]
_COMPILED_TRACES: "weakref.WeakKeyDictionary[Federation, _TraceMemo]" = (
    weakref.WeakKeyDictionary()
)


def _compiled_memo(
    federation: Federation, trace: PreparedTrace
) -> Dict[Tuple[str, bool], CompiledTrace]:
    """The (granularity, cost-view) → compiled memo for one trace."""
    per_fed = _COMPILED_TRACES.get(federation)
    if per_fed is None:
        per_fed = {}
        _COMPILED_TRACES[federation] = per_fed
    ident = id(trace)
    entry = per_fed.get(ident)
    if entry is not None and entry[0]() is trace:
        return entry[1]
    ref = weakref.ref(
        trace, lambda _, memo=per_fed, key=ident: memo.pop(key, None)
    )
    views: Dict[Tuple[str, bool], CompiledTrace] = {}
    per_fed[ident] = (ref, views)
    return views


@dataclass(frozen=True)
class QueryAccounting:
    """WAN charges one query generated under one policy decision.

    Attributes:
        load_bytes: Whole-object bytes fetched into the cache.
        load_cost: Link-weighted cost of those loads.
        bypass_bytes: Result bytes shipped past the cache (0 on hits).
        bypass_cost: Link-weighted cost of the bypass (0 on hits).
    """

    load_bytes: RawBytes
    load_cost: WeightedCost
    bypass_bytes: RawBytes
    bypass_cost: WeightedCost

    @property
    def wan_bytes(self) -> RawBytes:
        return RawBytes(self.load_bytes + self.bypass_bytes)

    @property
    def weighted_cost(self) -> WeightedCost:
        return WeightedCost(self.load_cost + self.bypass_cost)


class DecisionPipeline:
    """Query construction + WAN accounting shared by simulator and proxy.

    Args:
        federation: Object metadata, link weights, servers.
        granularity: ``"table"`` or ``"column"``.
        policy_sees_weights: When True (default) policies receive
            link-weighted fetch costs and cost-unit yields (the BYHR
            view); when False they see raw byte sizes (the BYU
            simplification).  WAN charges are always weighted — the flag
            only changes what the policy knows, enabling the
            BYHR-vs-BYU ablation.
        catalog: Optional pre-built catalog; defaults to the
            federation's shared one.
        instrumentation: Optional observability sink; decision events
            flow through :meth:`emit_decision`.
    """

    def __init__(
        self,
        federation: Federation,
        granularity: str = "table",
        policy_sees_weights: bool = True,
        catalog: Optional[ObjectCatalog] = None,
        instrumentation: Optional[Instrumentation] = None,
    ) -> None:
        if granularity not in GRANULARITIES:
            raise CacheError(
                f"granularity must be 'table' or 'column', "
                f"got {granularity!r}"
            )
        self.federation = federation
        self.granularity = granularity
        self.policy_sees_weights = policy_sees_weights
        self.catalog = catalog or shared_catalog(federation)
        self.instrumentation = instrumentation

    # -- query construction ---------------------------------------------

    def attribute(
        self, plan: QueryPlan, yield_bytes: int
    ) -> Dict[str, float]:
        """Per-object yield shares of a planned query (§6 rules)."""
        if self.granularity == "table":
            return attribute_yield_tables(plan, yield_bytes)
        return attribute_yield_columns(plan, yield_bytes)

    def build_query(
        self,
        index: int,
        object_yields: Mapping[str, float],
        yield_bytes: int,
        bypass_bytes: int,
        sql: str = "",
    ) -> CacheQuery:
        """Assemble the policy-facing event under the active cost view."""
        requests: List[ObjectRequest] = []
        for object_id, share in sorted(object_yields.items()):
            size = self.catalog.size(object_id)
            # Both view quantities cross the ObjectRequest boundary as
            # plain floats; each branch fills them in one currency.
            fetch_cost: float
            shown_yield: float
            if self.policy_sees_weights:
                # BYHR view: both the load price and the per-query
                # savings are expressed in link-weighted cost units, so
                # an object behind an expensive link is *more* valuable
                # to cache (eq. 1's f factor), not less.
                weighted_fetch = self.catalog.fetch_cost(object_id)
                weight = per_byte_weight(weighted_fetch, size)
                fetch_cost = weighted_fetch
                shown_yield = weigh(share, weight)
            else:
                # BYU view: both currencies are raw bytes.
                fetch_cost = float(size)
                shown_yield = share
            requests.append(
                ObjectRequest(
                    object_id=object_id,
                    size=size,
                    fetch_cost=fetch_cost,
                    yield_bytes=shown_yield,
                )
            )
        return CacheQuery(
            index=index,
            yield_bytes=yield_bytes,
            bypass_bytes=bypass_bytes,
            objects=tuple(requests),
            sql=sql,
        )

    def query_from_prepared(
        self, prepared: PreparedQuery, index: int
    ) -> CacheQuery:
        """Convert one prepared (offline) query into the policy event."""
        return self.build_query(
            index=index,
            object_yields=prepared.object_yields(self.granularity),
            yield_bytes=prepared.yield_bytes,
            bypass_bytes=prepared.bypass_bytes,
            sql=prepared.sql,
        )

    def compile_trace(
        self, trace: "PreparedTrace | CompiledTrace"
    ) -> CompiledTrace:
        """Lower a prepared trace to its policy-facing event stream.

        Memoized per (federation, trace, granularity, cost view): every
        simulator run, sweep cell, and fleet client over the same trace
        shares one compiled stream.  An already-compiled trace passes
        through — after checking it was compiled under this pipeline's
        view, since replaying a stream built for a different granularity
        or cost currency would silently change every decision.
        """
        if isinstance(trace, CompiledTrace):
            if (
                trace.granularity != self.granularity
                or trace.policy_sees_weights != self.policy_sees_weights
            ):
                raise CacheError(
                    f"trace {trace.name!r} was compiled for "
                    f"granularity={trace.granularity!r}, "
                    f"policy_sees_weights={trace.policy_sees_weights}; "
                    f"this pipeline needs ({self.granularity!r}, "
                    f"{self.policy_sees_weights})"
                )
            return trace
        views = _compiled_memo(self.federation, trace)
        key = (self.granularity, self.policy_sees_weights)
        compiled = views.get(key)
        if compiled is None:
            compiled = self._build_compiled(trace)
            views[key] = compiled
        return compiled

    def _build_compiled(self, trace: PreparedTrace) -> CompiledTrace:
        events = tuple(
            CompiledQuery(
                query=self.query_from_prepared(prepared, index),
                bypass_bytes=prepared.bypass_bytes,
                servers=tuple(prepared.servers),
            )
            for index, prepared in enumerate(trace)
        )
        totals = accumulate_object_yields(trace, self.granularity)
        return CompiledTrace(
            name=trace.name,
            granularity=self.granularity,
            policy_sees_weights=self.policy_sees_weights,
            sequence_bytes=trace.sequence_bytes,
            events=events,
            object_totals=tuple(sorted(totals.items())),
        )

    # -- WAN accounting --------------------------------------------------

    def load_accounting(
        self, object_ids: Sequence[str]
    ) -> Tuple[RawBytes, WeightedCost]:
        """(bytes, weighted cost) of loading ``object_ids`` whole."""
        load_bytes = ZERO_BYTES
        load_cost = ZERO_COST
        for object_id in object_ids:
            load_bytes = RawBytes(
                load_bytes + self.catalog.size(object_id)
            )
            load_cost = WeightedCost(
                load_cost + self.catalog.fetch_cost(object_id)
            )
        return load_bytes, load_cost

    def bypass_cost(
        self,
        bypass_bytes: int,
        servers: Sequence[str] = (),
        per_server_bytes: Optional[Mapping[str, int]] = None,
    ) -> WeightedCost:
        """Link-weighted cost of bypassing one query.

        With exact ``per_server_bytes`` (the online path's decomposed
        shipping), the cost is the per-link sum.  With only a server
        list (the prepared-trace path, which stores total decomposed
        bytes), a multi-server query is weighted by the mean of the
        involved links.
        """
        if per_server_bytes is not None:
            return WeightedCost(
                sum(
                    self.federation.network.cost(server, num_bytes)
                    for server, num_bytes in per_server_bytes.items()
                )
            )
        if not servers:
            return weigh(bypass_bytes, UNIT_WEIGHT)
        if len(servers) == 1:
            return self.federation.network.cost(servers[0], bypass_bytes)
        weights = [
            self.federation.network.link(server).weight
            for server in servers
        ]
        mean_weight = sum(weights) / len(weights)
        return weigh(bypass_bytes, mean_weight)

    def account(
        self,
        decision: Decision,
        bypass_bytes: int,
        servers: Sequence[str] = (),
        per_server_bytes: Optional[Mapping[str, int]] = None,
    ) -> QueryAccounting:
        """Charge one decision: loads always, bypass unless served."""
        load_bytes, load_cost = self.load_accounting(decision.loads)
        if decision.served_from_cache:
            charged_bypass, charged_cost = ZERO_BYTES, ZERO_COST
        else:
            charged_bypass = raw_bytes(bypass_bytes)
            charged_cost = self.bypass_cost(
                bypass_bytes, servers, per_server_bytes
            )
        return QueryAccounting(
            load_bytes=load_bytes,
            load_cost=load_cost,
            bypass_bytes=charged_bypass,
            bypass_cost=charged_cost,
        )

    # -- instrumentation -------------------------------------------------

    def emit_decision(
        self,
        index: int,
        source: str,
        policy_name: str,
        decision: Decision,
        accounting: QueryAccounting,
        sql: str = "",
        yield_bytes: int = 0,
    ) -> None:
        """Forward one decision to the instrumentation sink, if any."""
        if self.instrumentation is None:
            return
        self.instrumentation.record_decision(
            DecisionEvent(
                index=index,
                source=source,
                policy=policy_name,
                granularity=self.granularity,
                served_from_cache=decision.served_from_cache,
                loads=tuple(decision.loads),
                evictions=tuple(decision.evictions),
                load_bytes=accounting.load_bytes,
                bypass_bytes=accounting.bypass_bytes,
                weighted_cost=accounting.weighted_cost,
                sql=sql,
                yield_bytes=yield_bytes,
            )
        )
