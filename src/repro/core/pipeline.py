"""The shared offline/online decision pipeline.

All three replay drivers — the offline
:class:`~repro.sim.simulator.Simulator`, the online
:class:`~repro.core.proxy.BypassYieldProxy`, and the serving
:class:`~repro.service.server.MediatorService` (whose
:class:`~repro.service.session.DecisionGate` replays the simulator's
per-query sequence under the decision lock) — must present *exactly*
the same view of a query to the cache policy and charge *exactly* the
same WAN costs for its decision; the paper's "the simulator and the
proxy agree" claim (and the service's golden-equivalence guarantee) is
only true if all paths share one implementation.  This module is that
implementation:

* :class:`ObjectCatalog` — memoized object metadata (sizes, fetch
  costs, owning servers), shared per federation via
  :func:`shared_catalog`;
* :class:`DecisionPipeline` — query → :class:`~repro.core.events.CacheQuery`
  construction (yield attribution plus the BYHR/BYU
  ``policy_sees_weights`` cost views) and WAN-cost accounting;
* :class:`QueryAccounting` — the per-query cost record both drivers
  produce;
* :class:`CompiledTrace` — a prepared trace fully lowered to the
  policy-facing event stream under one (granularity, cost-view),
  memoized per federation and trace so sweeps build each query stream
  once instead of once per (policy × capacity) cell.

The BYHR view (``policy_sees_weights=True``) expresses the load price
*and* the per-query savings in link-weighted cost units, so an object
behind an expensive link is more valuable to cache (eq. 1's ``f``
factor).  Mixing weighted costs with raw-byte yields inverts that
preference — the exact bug DESIGN.md §6 documents; keeping the view
logic in one place makes it unrepeatable.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.events import CacheQuery, Decision, ObjectRequest
from repro.core.instrumentation import DecisionEvent, Instrumentation
from repro.core.policies.static_select import accumulate_object_yields
from repro.core.units import (
    UNIT_WEIGHT,
    ZERO_BYTES,
    ZERO_COST,
    RawBytes,
    WeightedCost,
    per_byte_weight,
    raw_bytes,
    weigh,
)
from repro.core.yield_model import (
    attribute_yield_columns,
    attribute_yield_tables,
)
from repro.errors import CacheError
from repro.federation.federation import Federation
from repro.obs.spans import (
    STAGE_BYPASS,
    STAGE_DECIDE,
    STAGE_LOAD,
    Tracer,
    live_tracer,
)
from repro.sqlengine.planner import QueryPlan
from repro.workload.trace import PreparedQuery, PreparedTrace

if TYPE_CHECKING:  # typing-only: keeps repro.core import-light
    from repro.core.policies.base import CachePolicy
    from repro.faults.transport import ResilientTransport

GRANULARITIES = ("table", "column")

#: How a query was ultimately resolved under faults.
OUTCOME_SERVED = "served"
OUTCOME_BYPASSED = "bypassed"
OUTCOME_PARTIAL = "partial"
OUTCOME_UNAVAILABLE = "unavailable"


class ObjectCatalog:
    """Memoized object metadata (sizes, fetch costs, owning servers)."""

    def __init__(self, federation: Federation) -> None:
        self._federation = federation
        self._sizes: Dict[str, RawBytes] = {}
        self._costs: Dict[str, WeightedCost] = {}
        self._servers: Dict[str, str] = {}

    def size(self, object_id: str) -> RawBytes:
        cached = self._sizes.get(object_id)
        if cached is None:
            cached = raw_bytes(self._federation.object_size(object_id))
            self._sizes[object_id] = cached
        return cached

    def fetch_cost(self, object_id: str) -> WeightedCost:
        cached = self._costs.get(object_id)
        if cached is None:
            cached = WeightedCost(self._federation.fetch_cost(object_id))
            self._costs[object_id] = cached
        return cached

    def server(self, object_id: str) -> str:
        cached = self._servers.get(object_id)
        if cached is None:
            cached = self._federation.server_for_object(object_id).name
            self._servers[object_id] = cached
        return cached


#: One catalog per live federation: simulators, runners, and proxies over
#: the same federation share memoized metadata instead of each rebuilding
#: it (sizes never change mid-run — SDSS releases are immutable).
_SHARED_CATALOGS: "weakref.WeakKeyDictionary[Federation, ObjectCatalog]" = (
    weakref.WeakKeyDictionary()
)


def shared_catalog(federation: Federation) -> ObjectCatalog:
    """The federation's shared :class:`ObjectCatalog` (created lazily)."""
    catalog = _SHARED_CATALOGS.get(federation)
    if catalog is None:
        catalog = ObjectCatalog(federation)
        _SHARED_CATALOGS[federation] = catalog
    return catalog


@dataclass(frozen=True)
class CompiledQuery:
    """One trace event lowered to its policy-facing form.

    Carries the :class:`~repro.core.events.CacheQuery` (already under
    the compiling pipeline's granularity and cost view) together with
    the raw accounting inputs the replay loop needs per query and the
    tenant the query is attributed to ("" when untagged).
    """

    query: CacheQuery
    bypass_bytes: int
    servers: Tuple[str, ...]
    tenant: str = ""


@dataclass(frozen=True)
class CompiledTrace:
    """A prepared trace fully lowered to policy-facing events.

    Immutable and pickle-cheap: sweeps compile once in the parent and
    ship the compiled stream to every worker instead of re-attributing
    yields per (policy × capacity) cell.  ``object_totals`` carries the
    *raw-byte* per-object yield sums (what
    :func:`~repro.core.policies.static_select.accumulate_object_yields`
    returns) so the static policy's offline selection works from a
    compiled trace even though the event stream itself is expressed in
    the compiled cost view.
    """

    name: str
    granularity: str
    policy_sees_weights: bool
    sequence_bytes: int
    events: Tuple[CompiledQuery, ...]
    object_totals: Tuple[Tuple[str, float], ...]

    def __len__(self) -> int:
        return len(self.events)


#: Compiled traces memoized per federation.  A trace carrying a content
#: ``fingerprint`` keys by it — two regenerated/reloaded traces with the
#: same queries share one compiled stream, and a *different* trace can
#: never collide the way recycled ``id()`` values can.  Fingerprint-less
#: traces fall back to identity keys guarded with a weakref so a recycled
#: id can never resurrect a dead trace's stream.
_TraceMemo = Dict[
    str,
    Tuple[
        Optional["weakref.ref[PreparedTrace]"],
        Dict[Tuple[str, bool], CompiledTrace],
    ],
]
_COMPILED_TRACES: "weakref.WeakKeyDictionary[Federation, _TraceMemo]" = (
    weakref.WeakKeyDictionary()
)


def _compiled_memo(
    federation: Federation, trace: PreparedTrace
) -> Dict[Tuple[str, bool], CompiledTrace]:
    """The (granularity, cost-view) → compiled memo for one trace."""
    per_fed = _COMPILED_TRACES.get(federation)
    if per_fed is None:
        per_fed = {}
        _COMPILED_TRACES[federation] = per_fed
    if trace.fingerprint is not None:
        fp_key = f"fp:{trace.fingerprint}"
        fp_entry = per_fed.get(fp_key)
        if fp_entry is not None:
            return fp_entry[1]
        fp_views: Dict[Tuple[str, bool], CompiledTrace] = {}
        per_fed[fp_key] = (None, fp_views)
        return fp_views
    ident = f"id:{id(trace)}"
    entry = per_fed.get(ident)
    if entry is not None and entry[0] is not None and entry[0]() is trace:
        return entry[1]
    ref = weakref.ref(
        trace, lambda _, memo=per_fed, key=ident: memo.pop(key, None)
    )
    views: Dict[Tuple[str, bool], CompiledTrace] = {}
    per_fed[ident] = (ref, views)
    return views


@dataclass(frozen=True)
class QueryAccounting:
    """WAN charges one query generated under one policy decision.

    Attributes:
        load_bytes: Whole-object bytes fetched into the cache.
        load_cost: Link-weighted cost of those loads.
        bypass_bytes: Result bytes shipped past the cache (0 on hits).
        bypass_cost: Link-weighted cost of the bypass (0 on hits).
        retry_bytes: WAN bytes burned by failed transfer attempts and
            discarded partials (0 on fault-free runs).
        retry_cost: Link-weighted cost of that waste, brownout
            inflation included.
        peer_bytes: Object bytes received from sibling proxies instead
            of the backend (0 outside cooperative fleet runs).  Peer
            traffic rides the regional interconnect, so it is excluded
            from :attr:`wan_bytes` but priced into
            :attr:`weighted_cost` at the peer link weight.
        peer_cost: Peer-weighted cost of those sibling transfers.
    """

    load_bytes: RawBytes
    load_cost: WeightedCost
    bypass_bytes: RawBytes
    bypass_cost: WeightedCost
    retry_bytes: RawBytes = ZERO_BYTES
    retry_cost: WeightedCost = ZERO_COST
    peer_bytes: RawBytes = ZERO_BYTES
    peer_cost: WeightedCost = ZERO_COST

    @property
    def wan_bytes(self) -> RawBytes:
        return RawBytes(
            self.load_bytes + self.bypass_bytes + self.retry_bytes
        )

    @property
    def weighted_cost(self) -> WeightedCost:
        return WeightedCost(
            self.load_cost
            + self.bypass_cost
            + self.retry_cost
            + self.peer_cost
        )


@dataclass(frozen=True)
class ResolvedQuery:
    """One query's outcome under a fault-aware replay.

    Produced by :meth:`DecisionPipeline.resolve`; consumed by
    :meth:`~repro.sim.results.SimulationResult.charge_resolved`.

    Attributes:
        decision: What the policy asked for (before faults intervened).
        accounting: The WAN charges the query actually generated,
            retry waste included.
        outcome: ``"served"``, ``"bypassed"``, ``"partial"``, or
            ``"unavailable"`` — what the client actually got.
        retries: Transfer attempts beyond the first, summed across the
            query's loads and bypass shipments.
        failed_loads: Object ids whose loads exhausted their retries
            (rolled back out of the cache via ``policy.invalidate``).
    """

    decision: Decision
    accounting: QueryAccounting
    outcome: str
    retries: int = 0
    failed_loads: Tuple[str, ...] = ()


class DecisionPipeline:
    """Query construction + WAN accounting shared by simulator and proxy.

    Args:
        federation: Object metadata, link weights, servers.
        granularity: ``"table"`` or ``"column"``.
        policy_sees_weights: When True (default) policies receive
            link-weighted fetch costs and cost-unit yields (the BYHR
            view); when False they see raw byte sizes (the BYU
            simplification).  WAN charges are always weighted — the flag
            only changes what the policy knows, enabling the
            BYHR-vs-BYU ablation.
        catalog: Optional pre-built catalog; defaults to the
            federation's shared one.
        instrumentation: Optional observability sink; decision events
            flow through :meth:`emit_decision`.
        tracer: Optional span tracer.  A disabled tracer (``NullTracer``)
            is normalized to ``None`` so the replay hot path pays one
            ``is None`` test per traced site and nothing else.
    """

    def __init__(
        self,
        federation: Federation,
        granularity: str = "table",
        policy_sees_weights: bool = True,
        catalog: Optional[ObjectCatalog] = None,
        instrumentation: Optional[Instrumentation] = None,
        tracer: "Optional[Tracer]" = None,
    ) -> None:
        if granularity not in GRANULARITIES:
            raise CacheError(
                f"granularity must be 'table' or 'column', "
                f"got {granularity!r}"
            )
        self.federation = federation
        self.granularity = granularity
        self.policy_sees_weights = policy_sees_weights
        self.catalog = catalog or shared_catalog(federation)
        self.instrumentation = instrumentation
        self.tracer = live_tracer(tracer)

    # -- query construction ---------------------------------------------

    def attribute(
        self, plan: QueryPlan, yield_bytes: int
    ) -> Dict[str, float]:
        """Per-object yield shares of a planned query (§6 rules)."""
        if self.granularity == "table":
            return attribute_yield_tables(plan, yield_bytes)
        return attribute_yield_columns(plan, yield_bytes)

    def build_query(
        self,
        index: int,
        object_yields: Mapping[str, float],
        yield_bytes: int,
        bypass_bytes: int,
        sql: str = "",
    ) -> CacheQuery:
        """Assemble the policy-facing event under the active cost view."""
        requests: List[ObjectRequest] = []
        for object_id, share in sorted(object_yields.items()):
            size = self.catalog.size(object_id)
            # Both view quantities cross the ObjectRequest boundary as
            # plain floats; each branch fills them in one currency.
            fetch_cost: float
            shown_yield: float
            if self.policy_sees_weights:
                # BYHR view: both the load price and the per-query
                # savings are expressed in link-weighted cost units, so
                # an object behind an expensive link is *more* valuable
                # to cache (eq. 1's f factor), not less.
                weighted_fetch = self.catalog.fetch_cost(object_id)
                weight = per_byte_weight(weighted_fetch, size)
                fetch_cost = weighted_fetch
                shown_yield = weigh(share, weight)
            else:
                # BYU view: both currencies are raw bytes.
                fetch_cost = float(size)
                shown_yield = share
            requests.append(
                ObjectRequest(
                    object_id=object_id,
                    size=size,
                    fetch_cost=fetch_cost,
                    yield_bytes=shown_yield,
                )
            )
        return CacheQuery(
            index=index,
            yield_bytes=yield_bytes,
            bypass_bytes=bypass_bytes,
            objects=tuple(requests),
            sql=sql,
        )

    def query_from_prepared(
        self, prepared: PreparedQuery, index: int
    ) -> CacheQuery:
        """Convert one prepared (offline) query into the policy event."""
        return self.build_query(
            index=index,
            object_yields=prepared.object_yields(self.granularity),
            yield_bytes=prepared.yield_bytes,
            bypass_bytes=prepared.bypass_bytes,
            sql=prepared.sql,
        )

    def compile_trace(
        self, trace: "PreparedTrace | CompiledTrace"
    ) -> CompiledTrace:
        """Lower a prepared trace to its policy-facing event stream.

        Memoized per (federation, trace, granularity, cost view): every
        simulator run, sweep cell, and fleet client over the same trace
        shares one compiled stream.  An already-compiled trace passes
        through — after checking it was compiled under this pipeline's
        view, since replaying a stream built for a different granularity
        or cost currency would silently change every decision.
        """
        if isinstance(trace, CompiledTrace):
            if (
                trace.granularity != self.granularity
                or trace.policy_sees_weights != self.policy_sees_weights
            ):
                raise CacheError(
                    f"trace {trace.name!r} was compiled for "
                    f"granularity={trace.granularity!r}, "
                    f"policy_sees_weights={trace.policy_sees_weights}; "
                    f"this pipeline needs ({self.granularity!r}, "
                    f"{self.policy_sees_weights})"
                )
            return trace
        views = _compiled_memo(self.federation, trace)
        key = (self.granularity, self.policy_sees_weights)
        compiled = views.get(key)
        if compiled is None:
            compiled = self._build_compiled(trace)
            views[key] = compiled
        return compiled

    def iter_compiled(
        self, queries: Iterable[PreparedQuery]
    ) -> Iterator[CompiledQuery]:
        """Lazily lower prepared queries to policy-facing events.

        The streaming counterpart of :meth:`compile_trace`: one
        :class:`CompiledQuery` at a time, nothing memoized, nothing
        materialized.  Million-query replays chain a prepared-query
        stream through this straight into the streaming simulator, so
        the full event list never exists in memory.
        """
        for index, prepared in enumerate(queries):
            yield CompiledQuery(
                query=self.query_from_prepared(prepared, index),
                bypass_bytes=prepared.bypass_bytes,
                servers=tuple(prepared.servers),
                tenant=prepared.tenant,
            )

    def _build_compiled(self, trace: PreparedTrace) -> CompiledTrace:
        events = tuple(
            CompiledQuery(
                query=self.query_from_prepared(prepared, index),
                bypass_bytes=prepared.bypass_bytes,
                servers=tuple(prepared.servers),
                tenant=prepared.tenant,
            )
            for index, prepared in enumerate(trace)
        )
        totals = accumulate_object_yields(trace, self.granularity)
        return CompiledTrace(
            name=trace.name,
            granularity=self.granularity,
            policy_sees_weights=self.policy_sees_weights,
            sequence_bytes=trace.sequence_bytes,
            events=events,
            object_totals=tuple(sorted(totals.items())),
        )

    # -- WAN accounting --------------------------------------------------

    def load_accounting(
        self, object_ids: Sequence[str]
    ) -> Tuple[RawBytes, WeightedCost]:
        """(bytes, weighted cost) of loading ``object_ids`` whole."""
        load_bytes = ZERO_BYTES
        load_cost = ZERO_COST
        for object_id in object_ids:
            load_bytes = RawBytes(
                load_bytes + self.catalog.size(object_id)
            )
            load_cost = WeightedCost(
                load_cost + self.catalog.fetch_cost(object_id)
            )
        return load_bytes, load_cost

    def bypass_cost(
        self,
        bypass_bytes: int,
        servers: Sequence[str] = (),
        per_server_bytes: Optional[Mapping[str, int]] = None,
    ) -> WeightedCost:
        """Link-weighted cost of bypassing one query.

        With exact ``per_server_bytes`` (the online path's decomposed
        shipping), the cost is the per-link sum.  With only a server
        list (the prepared-trace path, which stores total decomposed
        bytes), a multi-server query is weighted by the mean of the
        involved links.
        """
        if per_server_bytes is not None:
            return WeightedCost(
                sum(
                    self.federation.network.cost(server, num_bytes)
                    for server, num_bytes in per_server_bytes.items()
                )
            )
        if not servers:
            return weigh(bypass_bytes, UNIT_WEIGHT)
        if len(servers) == 1:
            return self.federation.network.cost(servers[0], bypass_bytes)
        weights = [
            self.federation.network.link(server).weight
            for server in servers
        ]
        mean_weight = sum(weights) / len(weights)
        return weigh(bypass_bytes, mean_weight)

    def account(
        self,
        decision: Decision,
        bypass_bytes: int,
        servers: Sequence[str] = (),
        per_server_bytes: Optional[Mapping[str, int]] = None,
    ) -> QueryAccounting:
        """Charge one decision: loads always, bypass unless served."""
        load_bytes, load_cost = self.load_accounting(decision.loads)
        if decision.served_from_cache:
            charged_bypass, charged_cost = ZERO_BYTES, ZERO_COST
        else:
            charged_bypass = raw_bytes(bypass_bytes)
            charged_cost = self.bypass_cost(
                bypass_bytes, servers, per_server_bytes
            )
        return QueryAccounting(
            load_bytes=load_bytes,
            load_cost=load_cost,
            bypass_bytes=charged_bypass,
            bypass_cost=charged_cost,
        )

    def account_cooperative(
        self,
        decision: Decision,
        bypass_bytes: int,
        servers: Sequence[str] = (),
        peer_loads: Sequence[str] = (),
    ) -> QueryAccounting:
        """Charge one decision when some loads came from sibling shards.

        ``peer_loads`` names the subset of ``decision.loads`` a sibling
        proxy supplied: those objects move over the peer link class
        (``peer_weight × bytes``, off the WAN) while the remainder pays
        the normal backend fetch.  With no peer loads this delegates to
        :meth:`account` — the identity that makes single-shard
        cooperative replays byte-identical to the independent path.

        The decision itself is untouched: cooperation changes where
        bytes come from, never what the policy chose (policies stay
        cooperation-blind, exactly as they are fault-blind).
        """
        if not peer_loads:
            return self.account(decision, bypass_bytes, servers)
        peers = frozenset(peer_loads)
        backend_loads = [
            object_id
            for object_id in decision.loads
            if object_id not in peers
        ]
        load_bytes, load_cost = self.load_accounting(backend_loads)
        peer_bytes = ZERO_BYTES
        peer_cost = ZERO_COST
        network = self.federation.network
        for object_id in decision.loads:
            if object_id not in peers:
                continue
            size = self.catalog.size(object_id)
            peer_bytes = RawBytes(peer_bytes + size)
            peer_cost = WeightedCost(
                peer_cost + network.peer_cost(size)
            )
        if decision.served_from_cache:
            charged_bypass, charged_cost = ZERO_BYTES, ZERO_COST
        else:
            charged_bypass = raw_bytes(bypass_bytes)
            charged_cost = self.bypass_cost(bypass_bytes, servers)
        return QueryAccounting(
            load_bytes=load_bytes,
            load_cost=load_cost,
            bypass_bytes=charged_bypass,
            bypass_cost=charged_cost,
            peer_bytes=peer_bytes,
            peer_cost=peer_cost,
        )

    # -- fault-aware resolution ------------------------------------------

    def resolve(
        self,
        event: CompiledQuery,
        policy: "CachePolicy",
        transport: "ResilientTransport",
        tick: int,
        partial_results: bool = False,
    ) -> ResolvedQuery:
        """Run one query through ``policy`` with the WAN behind ``transport``.

        The policy decides exactly as it would fault-free (it never sees
        the network); the transport then decides what actually happens:

        * each load ships through :meth:`ResilientTransport.send` — a
          failed load is rolled back out of the cache via
          ``policy.invalidate`` and its wasted attempts charged as
          retry traffic;
        * a cache-serve whose *needed* load failed degrades to a bypass
          attempt (the cache cannot answer without the object);
        * a bypass ships each involved server's share — when some
          servers are dark the query degrades to a partial result
          (``partial_results=True``), falls back to the cache when
          every referenced object is resident, or surfaces as
          ``"unavailable"``; partials shipped before the failure are
          charged as retry waste (they crossed the WAN and were
          discarded).

        With an empty fault schedule every transfer succeeds on its
        first attempt at multiplier 1.0, so the returned accounting is
        byte-identical to :meth:`account` — the no-fault identity the
        golden-equivalence suite pins down.
        """
        query = event.query
        tracer = self.tracer
        if tracer is not None:
            with tracer.span(
                STAGE_DECIDE, index=query.index, tenant=event.tenant
            ) as decide_span:
                decision = policy.process(query)
                decide_span.set(
                    "served", decision.served_from_cache
                )
        else:
            decision = policy.process(query)
        network = self.federation.network
        retries = 0
        retry_bytes = ZERO_BYTES
        retry_cost = ZERO_COST
        load_bytes = ZERO_BYTES
        load_cost = ZERO_COST
        failed_loads: List[str] = []

        for object_id in decision.loads:
            server = self.catalog.server(object_id)
            size = self.catalog.size(object_id)
            load_span = None
            if tracer is not None:
                load_span = tracer.start(
                    STAGE_LOAD,
                    index=query.index,
                    tenant=event.tenant,
                    object=object_id,
                    server=server,
                )
            sent = transport.send(
                server, size, tick, network.link(server).weight
            )
            retries += sent.retries
            if sent.wasted_bytes:
                retry_bytes = RawBytes(retry_bytes + sent.wasted_bytes)
                retry_cost = WeightedCost(retry_cost + sent.wasted_cost)
            if sent.ok:
                cost = self.catalog.fetch_cost(object_id)
                if sent.cost_multiplier != 1.0:
                    cost = WeightedCost(cost * sent.cost_multiplier)
                load_bytes = RawBytes(load_bytes + size)
                load_cost = WeightedCost(load_cost + cost)
            else:
                policy.invalidate(object_id)
                failed_loads.append(object_id)
            if tracer is not None and load_span is not None:
                tracer.finish(
                    load_span,
                    bytes_moved=int(size) + sent.wasted_bytes,
                    ok=sent.ok,
                    retries=sent.retries,
                )

        wants_serve = decision.served_from_cache
        if wants_serve and failed_loads:
            needed = {request.object_id for request in query.objects}
            if needed.intersection(failed_loads):
                wants_serve = False
        if wants_serve:
            return ResolvedQuery(
                decision=decision,
                accounting=QueryAccounting(
                    load_bytes=load_bytes,
                    load_cost=load_cost,
                    bypass_bytes=ZERO_BYTES,
                    bypass_cost=ZERO_COST,
                    retry_bytes=retry_bytes,
                    retry_cost=retry_cost,
                ),
                outcome=OUTCOME_SERVED,
                retries=retries,
                failed_loads=tuple(failed_loads),
            )

        # Bypass attempt: ship each involved server's share.
        shares = split_bypass_bytes(event.bypass_bytes, event.servers)
        shipped: List[Tuple[str, int, WeightedCost]] = []
        dark = False
        bypass_span = None
        if tracer is not None:
            bypass_span = tracer.start(
                STAGE_BYPASS, index=query.index, tenant=event.tenant
            )
        for server, share in shares:
            sent = transport.send(
                server, share, tick, network.link(server).weight
            )
            retries += sent.retries
            if sent.wasted_bytes:
                retry_bytes = RawBytes(retry_bytes + sent.wasted_bytes)
                retry_cost = WeightedCost(retry_cost + sent.wasted_cost)
            if sent.ok:
                cost = network.cost(server, share)
                if sent.cost_multiplier != 1.0:
                    cost = WeightedCost(cost * sent.cost_multiplier)
                shipped.append((server, share, cost))
            else:
                dark = True
        if tracer is not None and bypass_span is not None:
            tracer.finish(
                bypass_span,
                bytes_moved=sum(share for _, share, _ in shipped),
                servers=len(shares),
                dark=dark,
            )

        if not dark:
            if shares:
                bypass_charged = raw_bytes(
                    sum(share for _, share, _ in shipped)
                )
                bypass_cost = WeightedCost(
                    sum(cost for _, _, cost in shipped)
                )
            else:
                # No server attribution (synthetic traces): the WAN is
                # charged at unit weight, as in the fault-free path.
                bypass_charged = raw_bytes(event.bypass_bytes)
                bypass_cost = weigh(event.bypass_bytes, UNIT_WEIGHT)
            return ResolvedQuery(
                decision=decision,
                accounting=QueryAccounting(
                    load_bytes=load_bytes,
                    load_cost=load_cost,
                    bypass_bytes=bypass_charged,
                    bypass_cost=bypass_cost,
                    retry_bytes=retry_bytes,
                    retry_cost=retry_cost,
                ),
                outcome=OUTCOME_BYPASSED,
                retries=retries,
                failed_loads=tuple(failed_loads),
            )

        if shipped and partial_results:
            # Serve what the reachable servers produced.
            return ResolvedQuery(
                decision=decision,
                accounting=QueryAccounting(
                    load_bytes=load_bytes,
                    load_cost=load_cost,
                    bypass_bytes=raw_bytes(
                        sum(share for _, share, _ in shipped)
                    ),
                    bypass_cost=WeightedCost(
                        sum(cost for _, _, cost in shipped)
                    ),
                    retry_bytes=retry_bytes,
                    retry_cost=retry_cost,
                ),
                outcome=OUTCOME_PARTIAL,
                retries=retries,
                failed_loads=tuple(failed_loads),
            )

        # Partials that did ship were discarded: pure WAN waste.
        for _, share, cost in shipped:
            retry_bytes = RawBytes(retry_bytes + share)
            retry_cost = WeightedCost(retry_cost + cost)

        resident = bool(query.objects) and all(
            request.object_id in policy.store for request in query.objects
        )
        return ResolvedQuery(
            decision=decision,
            accounting=QueryAccounting(
                load_bytes=load_bytes,
                load_cost=load_cost,
                bypass_bytes=ZERO_BYTES,
                bypass_cost=ZERO_COST,
                retry_bytes=retry_bytes,
                retry_cost=retry_cost,
            ),
            outcome=OUTCOME_SERVED if resident else OUTCOME_UNAVAILABLE,
            retries=retries,
            failed_loads=tuple(failed_loads),
        )

    # -- instrumentation -------------------------------------------------

    def emit_decision(
        self,
        index: int,
        source: str,
        policy_name: str,
        decision: Decision,
        accounting: QueryAccounting,
        sql: str = "",
        yield_bytes: int = 0,
        retries: int = 0,
        outcome: str = "",
        tenant: str = "",
        shard: str = "",
    ) -> None:
        """Forward one decision to the instrumentation sink, if any."""
        if self.instrumentation is None:
            return
        self.instrumentation.record_decision(
            DecisionEvent(
                index=index,
                source=source,
                policy=policy_name,
                granularity=self.granularity,
                served_from_cache=decision.served_from_cache,
                loads=tuple(decision.loads),
                evictions=tuple(decision.evictions),
                load_bytes=accounting.load_bytes,
                bypass_bytes=accounting.bypass_bytes,
                weighted_cost=accounting.weighted_cost,
                sql=sql,
                yield_bytes=yield_bytes,
                retries=retries,
                retry_bytes=accounting.retry_bytes,
                outcome=outcome,
                tenant=tenant,
                shard=shard,
                peer_bytes=accounting.peer_bytes,
            )
        )


def split_bypass_bytes(
    total: int, servers: Sequence[str]
) -> Tuple[Tuple[str, int], ...]:
    """Deterministic per-server split of a query's bypass bytes.

    Prepared traces store only the *total* decomposed bytes plus the
    involved servers; the fault layer needs a per-server decomposition
    to ship each share independently.  The split is even with the
    remainder going to the earliest servers, in the trace's stable
    server order — same inputs, same split, every run.
    """
    if not servers:
        return ()
    base, remainder = divmod(int(total), len(servers))
    return tuple(
        (server, base + (1 if position < remainder else 0))
        for position, server in enumerate(servers)
    )
