"""Yield-sensitive cache metrics: BYHR and BYU (Section 3, eqs. 1-2).

These are the paper's generalizations of hit rate to the yield model.
The module provides both the closed-form metrics over a known query
distribution and an online estimator that profiles an observed workload
with exponential aging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.units import AnyCost, AnyRawBytes, AnyYield
from repro.errors import CacheError


def byte_yield_hit_rate(
    query_profile: Sequence[Tuple[float, float]],
    size: AnyRawBytes,
    fetch_cost: AnyCost,
) -> float:
    """BYHR (eq. 1): ``sum_j p_j * y_j * f / s^2``.

    Args:
        query_profile: (probability, yield_bytes) per query against the
            object.
        size: Object size ``s`` in bytes.
        fetch_cost: Fetch cost ``f`` (link-weighted bytes).

    The first factor ``sum p*y / s`` is network savings per byte of cache
    per query; the second ``f / s`` prices how expensive a reload would
    be.  Objects with high BYHR are the ones worth keeping.
    """
    _validate_profile(query_profile)
    if size <= 0:
        raise CacheError("object size must be positive")
    if fetch_cost < 0:
        raise CacheError("fetch cost must be non-negative")
    weighted_yield = sum(p * y for p, y in query_profile)
    return weighted_yield * fetch_cost / (size * size)


def byte_yield_utility(
    query_profile: Sequence[Tuple[float, float]], size: AnyRawBytes
) -> float:
    """BYU (eq. 2): ``sum_j p_j * y_j / s``.

    The uniform-network simplification of BYHR, exact when fetch cost is
    proportional to object size (``f = c * s``), which holds for single
    servers, collocated servers, and uniform TCP networks (Section 3).
    """
    _validate_profile(query_profile)
    if size <= 0:
        raise CacheError("object size must be positive")
    return sum(p * y for p, y in query_profile) / size


def _validate_profile(
    query_profile: Sequence[Tuple[float, float]]
) -> None:
    total = 0.0
    for probability, yield_bytes in query_profile:
        if probability < 0:
            raise CacheError("query probabilities must be non-negative")
        if yield_bytes < 0:
            raise CacheError("query yields must be non-negative")
        total += probability
    if total > 1.0 + 1e-9:
        raise CacheError("query probabilities must sum to at most 1")


@dataclass
class ObjectProfile:
    """Aged access statistics for one object."""

    size: AnyRawBytes
    fetch_cost: AnyCost
    weighted_yield: float = 0.0  # aged sum of per-access yields
    weight: float = 0.0          # aged access count
    accesses: int = 0


class WorkloadProfiler:
    """Online BYHR/BYU estimation over an observed reference stream.

    Probabilities are estimated by exponentially-aged frequency counts:
    on every access to object ``i`` with yield ``y``, all profiles decay
    by ``decay`` and object ``i`` gains weight 1 and yield mass ``y``.
    The estimated per-query expected yield for object ``i`` is then
    ``weighted_yield_i / total_weight``, giving::

        BYU_i  ~= weighted_yield_i / (total_weight * s_i)
        BYHR_i ~= BYU_i * f_i / s_i

    The profiler keeps metadata for *all* referenced objects (like the
    rate-based algorithm), with pruning to bound the footprint.
    """

    def __init__(self, decay: float = 0.999, max_objects: int = 10000) -> None:
        if not 0.0 < decay <= 1.0:
            raise CacheError("decay must be in (0, 1]")
        if max_objects <= 0:
            raise CacheError("max_objects must be positive")
        self._decay = decay
        self._max_objects = max_objects
        self._profiles: Dict[str, ObjectProfile] = {}
        self._total_weight = 0.0

    def observe(
        self,
        object_id: str,
        yield_bytes: AnyYield,
        size: AnyRawBytes,
        fetch_cost: AnyCost,
    ) -> None:
        """Record one access to ``object_id`` yielding ``yield_bytes``."""
        self._total_weight = self._total_weight * self._decay + 1.0
        profile = self._profiles.get(object_id)
        if profile is None:
            if len(self._profiles) >= self._max_objects:
                self._prune()
            profile = ObjectProfile(size=size, fetch_cost=fetch_cost)
            self._profiles[object_id] = profile
        # Lazy decay: store the un-decayed epoch weight per object would
        # be fancier; with modest object universes, direct decay of the
        # touched profile against the shared total keeps the math simple.
        profile.weighted_yield = profile.weighted_yield * self._decay + (
            yield_bytes
        )
        profile.weight = profile.weight * self._decay + 1.0
        profile.accesses += 1
        profile.size = size
        profile.fetch_cost = fetch_cost

    def byu(self, object_id: str) -> float:
        """Estimated BYU for one object (0 when never observed)."""
        profile = self._profiles.get(object_id)
        if profile is None or self._total_weight == 0:
            return 0.0
        return profile.weighted_yield / (self._total_weight * profile.size)

    def byhr(self, object_id: str) -> float:
        """Estimated BYHR for one object (0 when never observed)."""
        profile = self._profiles.get(object_id)
        if profile is None:
            return 0.0
        return self.byu(object_id) * profile.fetch_cost / profile.size

    def ranked_by_byhr(self) -> List[Tuple[str, float]]:
        """Objects best-first by estimated BYHR."""
        ranked = [
            (object_id, self.byhr(object_id))
            for object_id in self._profiles
        ]
        ranked.sort(key=lambda item: item[1], reverse=True)
        return ranked

    def tracked_objects(self) -> int:
        return len(self._profiles)

    def _prune(self) -> None:
        """Drop the weakest tenth of profiles to bound metadata."""
        ranked = self.ranked_by_byhr()
        drop = max(1, len(ranked) // 10)
        for object_id, _ in ranked[-drop:]:
            del self._profiles[object_id]
