"""Byte-accounted cache storage shared by every policy.

The store tracks which objects are resident and enforces the capacity
invariant (``used_bytes <= capacity_bytes`` at all times).  Utility
ordering, credits, and decision logic live in the policies; the store is
deliberately dumb so the invariant is easy to audit and test.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.core.units import AnyRawBytes
from repro.errors import CacheError


class CacheStore:
    """Set of resident objects with exact byte accounting."""

    def __init__(self, capacity_bytes: AnyRawBytes) -> None:
        if capacity_bytes <= 0:
            raise CacheError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._sizes: Dict[str, int] = {}
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self._used

    def __contains__(self, object_id: str) -> bool:
        return object_id in self._sizes

    def __len__(self) -> int:
        return len(self._sizes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._sizes)

    def object_ids(self) -> List[str]:
        return list(self._sizes)

    def size_of(self, object_id: str) -> int:
        try:
            return self._sizes[object_id]
        except KeyError:
            raise CacheError(f"{object_id!r} is not cached") from None

    def fits(self, size: int) -> bool:
        """Could an object of ``size`` ever fit (ignoring current load)?"""
        return 0 < size <= self.capacity_bytes

    def has_room(self, size: int) -> bool:
        """Does ``size`` fit in the current free space?"""
        return size <= self.free_bytes

    def add(self, object_id: str, size: int) -> None:
        """Insert an object; the caller must have made room first.

        Raises:
            CacheError: duplicate insert, non-positive size, or overflow.
        """
        if size <= 0:
            raise CacheError(f"object {object_id!r} has non-positive size")
        if object_id in self._sizes:
            raise CacheError(f"{object_id!r} is already cached")
        if size > self.free_bytes:
            raise CacheError(
                f"loading {object_id!r} ({size} B) would overflow the "
                f"cache (free: {self.free_bytes} B)"
            )
        self._sizes[object_id] = size
        self._used += size

    def remove(self, object_id: str) -> int:
        """Evict an object; returns its size.

        Raises:
            CacheError: when the object is not resident.
        """
        try:
            size = self._sizes.pop(object_id)
        except KeyError:
            raise CacheError(f"{object_id!r} is not cached") from None
        self._used -= size
        return size

    def clear(self) -> None:
        self._sizes.clear()
        self._used = 0
