"""Typed byte/cost units for the decision pipeline.

The bypass-yield economy trades in three currencies that are easy to
confuse and catastrophic to mix (DESIGN.md §6 documents the PR-1 bug
where the proxy handed policies link-weighted fetch costs paired with
raw-byte yields, inverting BYHR cache preference on weighted links):

* :data:`RawBytes` — byte counts as they exist on the wire or in the
  cache store: object sizes, result sizes, ledger byte totals.
* :data:`WeightedCost` — raw bytes multiplied by a per-link weight
  (eq. 1's ``f`` factor).  All WAN *charges* are weighted costs.
* :data:`Yield` — per-query result bytes attributed to one object
  (Section 6's attribution rules).  Yields are raw-byte-denominated
  until explicitly weighed into cost units for the BYHR view.

These are :func:`typing.NewType` wrappers — zero runtime cost, full
``mypy --strict`` separation.  The *only* sanctioned bridges between the
byte and cost currencies are :func:`weigh` and :func:`unweigh`; the
``repro-lint`` rule RPR001 flags arithmetic that combines the two
without passing through them.

Aliases :data:`AnyRawBytes` / :data:`AnyCost` / :data:`AnyYield` exist
for public boundaries that must keep accepting plain ``int`` / ``float``
(NewTypes are subtypes of their base, so typed values always flow into
such signatures).
"""

from __future__ import annotations

from typing import NewType, Union

from repro.errors import CacheError

RawBytes = NewType("RawBytes", int)
WeightedCost = NewType("WeightedCost", float)
Yield = NewType("Yield", float)

#: Boundary aliases: accept either the typed unit or its primitive.
AnyRawBytes = Union[RawBytes, int]
AnyCost = Union[WeightedCost, float]
AnyYield = Union[Yield, float]

ZERO_BYTES: RawBytes = RawBytes(0)
ZERO_COST: WeightedCost = WeightedCost(0.0)
ZERO_YIELD: Yield = Yield(0.0)

#: The uniform-network link weight under which cost and bytes coincide
#: (BYHR degenerates to BYU; Section 3).
UNIT_WEIGHT: float = 1.0


def raw_bytes(value: AnyRawBytes) -> RawBytes:
    """Brand a non-negative byte count as :data:`RawBytes`."""
    count = int(value)
    if count < 0:
        raise CacheError(f"byte counts must be non-negative, got {count}")
    return RawBytes(count)


def weigh(quantity: Union[AnyRawBytes, AnyYield], weight: float) -> WeightedCost:
    """Convert a raw-byte-denominated quantity into weighted cost units.

    This is the sanctioned raw→cost bridge: shipping ``quantity`` bytes
    over a link of per-byte ``weight`` costs ``quantity * weight``.  Use
    ``weigh(quantity, UNIT_WEIGHT)`` to express the uniform-network
    identity conversion explicitly.
    """
    if weight <= 0:
        raise CacheError(f"link weight must be positive, got {weight}")
    return WeightedCost(float(quantity) * weight)


def unweigh(cost: AnyCost, weight: float) -> Yield:
    """Convert a weighted cost back into raw-byte-denominated units.

    The inverse bridge of :func:`weigh`: a cost of ``cost`` over a link
    of per-byte ``weight`` corresponds to ``cost / weight`` bytes.
    """
    if weight <= 0:
        raise CacheError(f"link weight must be positive, got {weight}")
    return Yield(float(cost) / weight)


def per_byte_weight(fetch_cost: AnyCost, size: AnyRawBytes) -> float:
    """Effective per-byte link weight implied by a (cost, size) pair.

    ``weigh(size, per_byte_weight(f, s)) == f`` — this recovers the
    link weight from an object's whole-fetch cost and its size, which is
    how the BYHR view re-prices per-object yields.
    """
    if int(size) <= 0:
        raise CacheError(f"object size must be positive, got {size}")
    return float(fetch_cost) / float(size)


__all__ = [
    "AnyCost",
    "AnyRawBytes",
    "AnyYield",
    "RawBytes",
    "UNIT_WEIGHT",
    "WeightedCost",
    "Yield",
    "ZERO_BYTES",
    "ZERO_COST",
    "ZERO_YIELD",
    "per_byte_weight",
    "raw_bytes",
    "unweigh",
    "weigh",
]
