"""Event types exchanged between the simulator and cache policies.

A policy never sees SQL: it sees a :class:`CacheQuery` carrying the
query's yield and, per referenced cacheable object, that object's size,
fetch cost, and attributed yield share.  It answers with a
:class:`Decision` describing loads, evictions, and whether the query was
served from cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.core.units import AnyRawBytes
from repro.errors import CacheError


@dataclass(frozen=True)
class ObjectRequest:
    """One cacheable object as referenced by one query.

    Attributes:
        object_id: ``"Table"`` or ``"Table.column"``.
        size: Object size in bytes (cache space and load bytes).
        fetch_cost: Price of loading the object, in the active cost
            view's currency (link-weighted under BYHR, raw bytes under
            BYU).
        yield_bytes: This query's yield attributed to this object,
            quoted in the *same* currency as ``fetch_cost`` so the
            policy's load-vs-savings comparison is dimensionally sound.
    """

    object_id: str
    size: AnyRawBytes
    fetch_cost: float
    yield_bytes: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise CacheError(
                f"object {self.object_id!r} must have positive size"
            )
        if self.fetch_cost < 0:
            raise CacheError(
                f"object {self.object_id!r} has negative fetch cost"
            )
        if self.yield_bytes < 0:
            raise CacheError(
                f"object {self.object_id!r} has negative yield"
            )


@dataclass(frozen=True)
class CacheQuery:
    """One workload query from the cache's point of view.

    Attributes:
        index: Query number (the paper's notion of time).
        yield_bytes: Total result bytes (shipped to the client whichever
            path serves the query).
        bypass_bytes: WAN bytes charged if the query bypasses the cache.
        objects: Referenced cacheable objects with yield attribution.
    """

    index: int
    yield_bytes: AnyRawBytes
    bypass_bytes: AnyRawBytes
    objects: Tuple[ObjectRequest, ...]
    sql: str = ""

    def __post_init__(self) -> None:
        if self.yield_bytes < 0 or self.bypass_bytes < 0:
            raise CacheError("query byte counts must be non-negative")


@dataclass
class Decision:
    """A policy's answer for one query.

    Attributes:
        served_from_cache: True when every referenced object was cached
            (after any loads) and the query was evaluated locally.
        loads: Object ids fetched into the cache for this query, in order.
        evictions: Object ids evicted to make room, in order.
    """

    served_from_cache: bool
    loads: List[str] = field(default_factory=list)
    evictions: List[str] = field(default_factory=list)

    @property
    def bypassed(self) -> bool:
        return not self.served_from_cache
