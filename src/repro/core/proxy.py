"""The bypass-yield proxy: a live cache in front of a federation.

This is the deployable object the paper describes — "we collocate a
caching service with a mediation middleware" (Section 3).  Each query
goes through the full pipeline:

1. plan against the global federation schema;
2. evaluate (the result must be computed whichever path serves it — its
   byte size is the yield);
3. attribute the yield to the referenced cacheable objects;
4. let the policy decide: load objects / serve from cache / bypass;
5. account WAN traffic on the mediator's ledger (loads and bypasses
   cost; cache-served queries ride the LAN).

The offline :class:`~repro.sim.simulator.Simulator` exists for replaying
*prepared* traces cheaply; the proxy is the online path.  Both are thin
drivers over the same :class:`~repro.core.pipeline.DecisionPipeline`, so
they agree exactly on accounting under both cost views (tested).
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    ContextManager,
    Dict,
    Iterable,
    List,
    Optional,
)

if TYPE_CHECKING:
    from repro.faults.transport import ResilientTransport
    from repro.obs.httpd import MetricsServer
    from repro.obs.metrics import MetricsRegistry

from repro.core.events import CacheQuery
from repro.core.instrumentation import Instrumentation
from repro.core.pipeline import (
    OUTCOME_BYPASSED,
    OUTCOME_SERVED,
    OUTCOME_UNAVAILABLE,
    DecisionPipeline,
    QueryAccounting,
)
from repro.core.units import ZERO_BYTES, ZERO_COST, RawBytes, WeightedCost
from repro.core.policies.base import CachePolicy
from repro.errors import BackendUnavailable
from repro.federation.federation import Federation
from repro.federation.mediator import Mediator
from repro.federation.network import TrafficLedger
from repro.sqlengine.executor import ResultSet
from repro.sqlengine.planner import QueryPlan


@dataclass
class ProxyResponse:
    """What the proxy returns per query.

    Attributes:
        result: The materialized result (identical whichever path
            produced it).  ``None`` only when ``outcome`` is
            ``"unavailable"`` — every backend the query needed stayed
            dark through the retries and nothing was resident.
        served_from_cache: True when the query was evaluated locally.
        loads: Objects fetched into the cache for this query.
        evictions: Objects evicted to make room.
        wan_bytes: WAN bytes this query added (loads + bypass + retry
            waste).
        outcome: ``"served"``, ``"bypassed"``, or ``"unavailable"`` —
            what the client actually got once faults had their say.
        retries: Transfer attempts beyond the first this query needed.
        failed_loads: Object ids whose loads exhausted their retries
            and were rolled back.
    """

    result: Optional[ResultSet]
    served_from_cache: bool
    loads: List[str]
    evictions: List[str]
    wan_bytes: int
    outcome: str = OUTCOME_SERVED
    retries: int = 0
    failed_loads: List[str] = field(default_factory=list)


class BypassYieldProxy:
    """A policy-driven caching front-end for one federation.

    Args:
        federation: The backend servers.
        policy: Any :class:`~repro.core.policies.base.CachePolicy`.
        granularity: ``"table"`` or ``"column"`` cache objects.
        policy_sees_weights: When True (default) the policy receives
            link-weighted fetch costs and cost-unit yields (the BYHR
            view); when False it sees raw byte sizes (the BYU
            simplification).  Mirrors the simulator flag — WAN charges
            on the ledger are always weighted.
        instrumentation: Optional observability sink; per-query decision
            events and stage timers flow through it.
        transport: Optional resilient transport
            (:class:`~repro.faults.transport.ResilientTransport`).
            When set, every WAN transfer retries with backoff behind
            per-server circuit breakers, retry waste is charged to the
            ledger, and queries whose backends stay dark degrade:
            serve-from-cache when everything needed is resident,
            ``"unavailable"`` otherwise.  The proxy advances one
            logical tick per query.
        peer_lookup: Optional fleet hook mapping an object id to the
            name of a sibling proxy holding it (or None).  When the
            hook names a provider, that load arrives over the peer
            link class via
            :meth:`~repro.federation.mediator.Mediator.load_from_peer`
            instead of paying the backend WAN fetch — how a proxy
            participates in a cooperative shard fleet.  Consulted on
            the fault-free path only; under a transport the backend
            fetch already carries the fault semantics.

    The proxy owns a :class:`~repro.federation.mediator.Mediator`; its
    ``ledger`` carries the network-citizenship accounting.
    """

    def __init__(
        self,
        federation: Federation,
        policy: CachePolicy,
        granularity: str = "table",
        policy_sees_weights: bool = True,
        instrumentation: Optional[Instrumentation] = None,
        transport: Optional["ResilientTransport"] = None,
        peer_lookup: Optional[Callable[[str], Optional[str]]] = None,
    ) -> None:
        self.pipeline = DecisionPipeline(
            federation,
            granularity,
            policy_sees_weights,
            instrumentation=instrumentation,
        )
        self.federation = federation
        self.policy = policy
        self.granularity = granularity
        self.transport = transport
        self.peer_lookup = peer_lookup
        self.mediator = Mediator(
            federation,
            instrumentation=instrumentation,
            transport=transport,
        )
        self.queries_handled = 0
        self._metrics_registry: Optional["MetricsRegistry"] = None
        self._metrics_server: Optional["MetricsServer"] = None
        self._metrics_lock = threading.Lock()
        if transport is not None and instrumentation is not None:
            transport.set_counter_hook(instrumentation.count)

    @property
    def policy_sees_weights(self) -> bool:
        return self.pipeline.policy_sees_weights

    @property
    def instrumentation(self) -> Optional[Instrumentation]:
        return self.pipeline.instrumentation

    @property
    def ledger(self) -> TrafficLedger:
        """The WAN traffic ledger (see Figure 1's flows)."""
        return self.mediator.ledger

    def _stage(self, name: str) -> ContextManager[None]:
        instrumentation = self.pipeline.instrumentation
        if instrumentation is None:
            return nullcontext()
        return instrumentation.stage(name)

    def build_query(self, sql: str) -> CacheQuery:
        """Plan + evaluate + attribute one query into the policy event.

        Exposed for inspection; :meth:`query` is the serving path.
        """
        plan = self.mediator.plan(sql)
        result = self.mediator.evaluate(sql, plan)
        return self._build_event(sql, plan, result)

    def _build_event(
        self, sql: str, plan: QueryPlan, result: ResultSet
    ) -> CacheQuery:
        yield_bytes = result.byte_size
        with self._stage("proxy.attribute"):
            shares = self.pipeline.attribute(plan, yield_bytes)
        return self.pipeline.build_query(
            index=self.queries_handled,
            object_yields=shares,
            yield_bytes=yield_bytes,
            bypass_bytes=yield_bytes,
            sql=sql,
        )

    def query(self, sql: str) -> ProxyResponse:
        """Serve one query, making the bypass/load decision."""
        with self._stage("proxy.plan"):
            plan = self.mediator.plan(sql)
        with self._stage("proxy.evaluate"):
            result = self.mediator.evaluate(sql, plan)
        event = self._build_event(sql, plan, result)
        with self._stage("proxy.decide"):
            decision = self.policy.process(event)
        index = self.queries_handled
        self.queries_handled += 1

        if self.transport is not None:
            if self.mediator.clock is not None:
                self.mediator.clock.advance_to(index)
            return self._query_resilient(sql, plan, result, event,
                                         decision, index)

        load_bytes = ZERO_BYTES
        load_cost = ZERO_COST
        peer_bytes = ZERO_BYTES
        peer_cost = ZERO_COST
        peer_lookup = self.peer_lookup
        with self._stage("proxy.transfer"):
            for object_id in decision.loads:
                provider = (
                    peer_lookup(object_id)
                    if peer_lookup is not None
                    else None
                )
                if provider is not None:
                    size, cost = self.mediator.load_from_peer(
                        object_id, provider
                    )
                    peer_bytes = RawBytes(peer_bytes + size)
                    peer_cost = WeightedCost(peer_cost + cost)
                else:
                    size, cost = self.mediator.load_object(object_id)
                    load_bytes = RawBytes(load_bytes + size)
                    load_cost = WeightedCost(load_cost + cost)
            if decision.served_from_cache:
                bypass_bytes, bypass_cost = ZERO_BYTES, ZERO_COST
                self.mediator.serve_from_cache(result)
            else:
                outcome = self.mediator.bypass(sql, plan, result)
                bypass_bytes = outcome.wan_bytes
                bypass_cost = outcome.wan_cost

        self.pipeline.emit_decision(
            index=index,
            source="proxy",
            policy_name=self.policy.name,
            decision=decision,
            accounting=QueryAccounting(
                load_bytes=load_bytes,
                load_cost=load_cost,
                bypass_bytes=bypass_bytes,
                bypass_cost=bypass_cost,
                peer_bytes=peer_bytes,
                peer_cost=peer_cost,
            ),
            sql=sql,
            yield_bytes=event.yield_bytes,
        )
        return ProxyResponse(
            result=result,
            served_from_cache=decision.served_from_cache,
            loads=decision.loads,
            evictions=decision.evictions,
            wan_bytes=load_bytes + bypass_bytes,
            outcome=(
                OUTCOME_SERVED
                if decision.served_from_cache
                else OUTCOME_BYPASSED
            ),
        )

    def _query_resilient(
        self,
        sql: str,
        plan: QueryPlan,
        result: ResultSet,
        event: CacheQuery,
        decision,
        index: int,
    ) -> ProxyResponse:
        """The transfer/accounting stage when a transport is attached.

        Mirrors :meth:`DecisionPipeline.resolve` for the online path:
        failed loads roll back, a serve missing its load degrades to a
        bypass, a dark bypass falls back to the cache when everything
        the query touches is resident, and whatever remains surfaces as
        an ``"unavailable"`` response rather than an exception.
        """
        assert self.transport is not None
        ledger = self.mediator.ledger
        retries_before = self.transport.stats()["retries"]
        retry_bytes_before = ledger.retry_bytes
        retry_cost_before = ledger.retry_cost

        load_bytes = ZERO_BYTES
        load_cost = ZERO_COST
        failed_loads: List[str] = []
        final_result: Optional[ResultSet] = result
        with self._stage("proxy.transfer"):
            for object_id in decision.loads:
                try:
                    size, cost = self.mediator.load_object(object_id)
                except BackendUnavailable:
                    self.policy.invalidate(object_id)
                    failed_loads.append(object_id)
                else:
                    load_bytes = RawBytes(load_bytes + size)
                    load_cost = WeightedCost(load_cost + cost)

            wants_serve = decision.served_from_cache
            if wants_serve and failed_loads:
                needed = {request.object_id for request in event.objects}
                if needed.intersection(failed_loads):
                    wants_serve = False

            if wants_serve:
                bypass_bytes, bypass_cost = ZERO_BYTES, ZERO_COST
                self.mediator.serve_from_cache(result)
                outcome_label = OUTCOME_SERVED
            else:
                try:
                    shipped = self.mediator.bypass(sql, plan, result)
                except BackendUnavailable:
                    bypass_bytes, bypass_cost = ZERO_BYTES, ZERO_COST
                    resident = bool(event.objects) and all(
                        request.object_id in self.policy.store
                        for request in event.objects
                    )
                    if resident:
                        self.mediator.serve_from_cache(result)
                        outcome_label = OUTCOME_SERVED
                    else:
                        outcome_label = OUTCOME_UNAVAILABLE
                        final_result = None
                else:
                    bypass_bytes = shipped.wan_bytes
                    bypass_cost = shipped.wan_cost
                    outcome_label = OUTCOME_BYPASSED

        retry_bytes = RawBytes(ledger.retry_bytes - retry_bytes_before)
        retry_cost = WeightedCost(ledger.retry_cost - retry_cost_before)
        retries = self.transport.stats()["retries"] - retries_before

        self.pipeline.emit_decision(
            index=index,
            source="proxy",
            policy_name=self.policy.name,
            decision=decision,
            accounting=QueryAccounting(
                load_bytes=load_bytes,
                load_cost=load_cost,
                bypass_bytes=bypass_bytes,
                bypass_cost=bypass_cost,
                retry_bytes=retry_bytes,
                retry_cost=retry_cost,
            ),
            sql=sql,
            yield_bytes=event.yield_bytes,
            retries=retries,
            outcome=outcome_label,
        )
        return ProxyResponse(
            result=final_result,
            served_from_cache=decision.served_from_cache,
            loads=decision.loads,
            evictions=decision.evictions,
            wan_bytes=load_bytes + bypass_bytes + retry_bytes,
            outcome=outcome_label,
            retries=retries,
            failed_loads=failed_loads,
        )

    def invalidate(self, object_ids: Iterable[str]) -> List[str]:
        """Handle a server metadata-change notification (Section 6).

        Returns the object ids that were resident and got dropped.
        """
        dropped = [
            object_id
            for object_id in object_ids
            if self.policy.invalidate(object_id)
        ]
        return dropped

    def enable_metrics(
        self, registry: Optional["MetricsRegistry"] = None
    ) -> "MetricsRegistry":
        """Attach a :class:`repro.obs.metrics.MetricsProbe` to this proxy.

        Creates an :class:`Instrumentation` sink if the proxy was built
        without one (counters only — event retention stays opt-in), then
        wires a probe that feeds ``registry`` from every decision,
        including a cache-occupancy timeline read from the policy store.
        Idempotent: calling again returns the existing registry.
        """
        from repro.obs.metrics import MetricsProbe, MetricsRegistry

        if self._metrics_registry is not None:
            return self._metrics_registry
        instrumentation = self.pipeline.instrumentation
        if instrumentation is None:
            instrumentation = Instrumentation(max_events=0)
            self.pipeline.instrumentation = instrumentation
            self.mediator.instrumentation = instrumentation
            if self.transport is not None:
                self.transport.set_counter_hook(instrumentation.count)
        self._metrics_registry = registry or MetricsRegistry()
        instrumentation.add_probe(
            MetricsProbe(
                self._metrics_registry,
                occupancy=lambda: self.policy.store.used_bytes,
            )
        )
        return self._metrics_registry

    def serve_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> "MetricsServer":
        """Start the stdlib HTTP ``/metrics`` endpoint for this proxy.

        Calls :meth:`enable_metrics` if needed, then binds a
        :class:`repro.obs.httpd.MetricsServer` (daemon thread; ``port=0``
        picks a free port).  Returns the running server — use its
        ``url`` property, and ``close()`` when done.  Idempotent.
        """
        from repro.obs.httpd import MetricsServer

        with self._metrics_lock:
            if self._metrics_server is not None:
                return self._metrics_server
            registry = self.enable_metrics()
            server = MetricsServer(registry, host=host, port=port)
            server.start()
            self._metrics_server = server
        return server

    def close_metrics(self) -> None:
        """Stop the metrics endpoint if one is running.

        Idempotent and thread-safe: concurrent or repeated calls (and a
        call before :meth:`serve_metrics` ever ran) are no-ops.  The
        server reference is claimed under a lock so exactly one caller
        performs the actual shutdown.
        """
        with self._metrics_lock:
            server = self._metrics_server
            self._metrics_server = None
        if server is not None:
            server.close()

    def stats(self) -> Dict[str, object]:
        """Operational snapshot: traffic, hit rate, residency."""
        ledger = self.mediator.ledger
        snapshot: Dict[str, object] = {
            "queries": self.queries_handled,
            "hit_rate": round(self.policy.hit_rate, 4),
            "wan_bytes": ledger.wan_bytes,
            "bypass_bytes": ledger.bypass_bytes,
            "load_bytes": ledger.load_bytes,
            "retry_bytes": ledger.retry_bytes,
            "peer_bytes": ledger.peer_bytes,
            "lan_bytes": ledger.cache_bytes,
            "resident_objects": len(self.policy.store),
            "cache_used_bytes": self.policy.store.used_bytes,
            "cache_capacity_bytes": self.policy.capacity_bytes,
        }
        if self.transport is not None:
            snapshot["transport"] = self.transport.stats()
        return snapshot
