"""The bypass-yield proxy: a live cache in front of a federation.

This is the deployable object the paper describes — "we collocate a
caching service with a mediation middleware" (Section 3).  Each query
goes through the full pipeline:

1. plan against the global federation schema;
2. evaluate (the result must be computed whichever path serves it — its
   byte size is the yield);
3. attribute the yield to the referenced cacheable objects;
4. let the policy decide: load objects / serve from cache / bypass;
5. account WAN traffic on the mediator's ledger (loads and bypasses
   cost; cache-served queries ride the LAN).

The offline :class:`~repro.sim.simulator.Simulator` exists for replaying
*prepared* traces cheaply; the proxy is the online path and the two
agree exactly on accounting (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.core.events import CacheQuery, Decision, ObjectRequest
from repro.core.policies.base import CachePolicy
from repro.core.yield_model import (
    attribute_yield_columns,
    attribute_yield_tables,
)
from repro.errors import CacheError
from repro.federation.federation import Federation
from repro.federation.mediator import Mediator
from repro.sqlengine.executor import ResultSet


@dataclass
class ProxyResponse:
    """What the proxy returns per query.

    Attributes:
        result: The materialized result (identical whichever path
            produced it).
        served_from_cache: True when the query was evaluated locally.
        loads: Objects fetched into the cache for this query.
        evictions: Objects evicted to make room.
        wan_bytes: WAN bytes this query added (loads + bypass).
    """

    result: ResultSet
    served_from_cache: bool
    loads: List[str]
    evictions: List[str]
    wan_bytes: int


class BypassYieldProxy:
    """A policy-driven caching front-end for one federation.

    Args:
        federation: The backend servers.
        policy: Any :class:`~repro.core.policies.base.CachePolicy`.
        granularity: ``"table"`` or ``"column"`` cache objects.

    The proxy owns a :class:`~repro.federation.mediator.Mediator`; its
    ``ledger`` carries the network-citizenship accounting.
    """

    def __init__(
        self,
        federation: Federation,
        policy: CachePolicy,
        granularity: str = "table",
    ) -> None:
        if granularity not in ("table", "column"):
            raise CacheError(
                f"granularity must be 'table' or 'column', "
                f"got {granularity!r}"
            )
        self.federation = federation
        self.policy = policy
        self.granularity = granularity
        self.mediator = Mediator(federation)
        self.queries_handled = 0

    @property
    def ledger(self):
        """The WAN traffic ledger (see Figure 1's flows)."""
        return self.mediator.ledger

    def query(self, sql: str) -> ProxyResponse:
        """Serve one query, making the bypass/load decision."""
        plan = self.mediator.plan(sql)
        result = self.mediator.evaluate(sql, plan)
        yield_bytes = result.byte_size

        if self.granularity == "table":
            shares = attribute_yield_tables(plan, yield_bytes)
        else:
            shares = attribute_yield_columns(plan, yield_bytes)

        requests = tuple(
            ObjectRequest(
                object_id=object_id,
                size=self.federation.object_size(object_id),
                fetch_cost=self.federation.fetch_cost(object_id),
                yield_bytes=share,
            )
            for object_id, share in sorted(shares.items())
        )
        event = CacheQuery(
            index=self.queries_handled,
            yield_bytes=yield_bytes,
            bypass_bytes=yield_bytes,
            objects=requests,
            sql=sql,
        )
        decision = self.policy.process(event)
        self.queries_handled += 1

        wan_bytes = 0
        for object_id in decision.loads:
            size, _ = self.mediator.load_object(object_id)
            wan_bytes += size
        if decision.served_from_cache:
            self.mediator.serve_from_cache(result)
        else:
            outcome = self.mediator.bypass(sql, plan, result)
            wan_bytes += outcome.wan_bytes

        return ProxyResponse(
            result=result,
            served_from_cache=decision.served_from_cache,
            loads=decision.loads,
            evictions=decision.evictions,
            wan_bytes=wan_bytes,
        )

    def invalidate(self, object_ids: Iterable[str]) -> List[str]:
        """Handle a server metadata-change notification (Section 6).

        Returns the object ids that were resident and got dropped.
        """
        dropped = [
            object_id
            for object_id in object_ids
            if self.policy.invalidate(object_id)
        ]
        return dropped

    def stats(self) -> Dict[str, object]:
        """Operational snapshot: traffic, hit rate, residency."""
        ledger = self.mediator.ledger
        return {
            "queries": self.queries_handled,
            "hit_rate": round(self.policy.hit_rate, 4),
            "wan_bytes": ledger.wan_bytes,
            "bypass_bytes": ledger.bypass_bytes,
            "load_bytes": ledger.load_bytes,
            "lan_bytes": ledger.cache_bytes,
            "resident_objects": len(self.policy.store),
            "cache_used_bytes": self.policy.store.used_bytes,
            "cache_capacity_bytes": self.policy.capacity_bytes,
        }
