"""Cache policies: the paper's algorithms plus every baseline.

The :data:`POLICY_REGISTRY` maps short names to constructors taking a
capacity in bytes; :func:`make_policy` is the factory the simulator and
benchmarks use.
"""

from typing import Any, Callable, Dict

from repro.core.policies.base import CachePolicy
from repro.core.policies.baselines import (
    GDSPopularityPolicy,
    GreedyDualSizePolicy,
    LFFPolicy,
    LFUPolicy,
    LRUKPolicy,
    LRUPolicy,
    NoCachePolicy,
    SemanticCachePolicy,
    StaticPolicy,
)
from repro.core.policies.online import OnlineBYPolicy, SpaceEffBYPolicy
from repro.core.policies.rate_profile import RateProfilePolicy
from repro.core.policies.static_select import (
    accumulate_object_yields,
    choose_static_objects,
    choose_static_objects_exact,
)
from repro.core.units import AnyRawBytes
from repro.errors import CacheError

POLICY_REGISTRY: Dict[str, Callable[[int], CachePolicy]] = {
    "rate-profile": RateProfilePolicy,
    "online-by": OnlineBYPolicy,
    "space-eff-by": SpaceEffBYPolicy,
    "gds": GreedyDualSizePolicy,
    "gdsp": GDSPopularityPolicy,
    "lru": LRUPolicy,
    "lfu": LFUPolicy,
    "lff": LFFPolicy,
    "lru-k": LRUKPolicy,
    "no-cache": NoCachePolicy,
    "semantic": SemanticCachePolicy,
}


def make_policy(
    name: str, capacity_bytes: AnyRawBytes, **kwargs: Any
) -> CachePolicy:
    """Instantiate a registered policy by name.

    Raises:
        CacheError: for unknown policy names.
    """
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        raise CacheError(
            f"unknown policy {name!r}; known: {sorted(POLICY_REGISTRY)}"
        ) from None
    return factory(capacity_bytes, **kwargs)


__all__ = [
    "CachePolicy",
    "GDSPopularityPolicy",
    "GreedyDualSizePolicy",
    "LFFPolicy",
    "LFUPolicy",
    "LRUKPolicy",
    "LRUPolicy",
    "NoCachePolicy",
    "OnlineBYPolicy",
    "POLICY_REGISTRY",
    "RateProfilePolicy",
    "SemanticCachePolicy",
    "SpaceEffBYPolicy",
    "StaticPolicy",
    "accumulate_object_yields",
    "choose_static_objects",
    "choose_static_objects_exact",
    "make_policy",
]
