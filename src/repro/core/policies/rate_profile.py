"""The Rate-Profile algorithm (Section 4) — workload-driven bypass-yield
caching.

Cached objects carry a **rate profile** (eq. 3)::

    RP_i = sum_j y_ij / ((t - t_i) * s_i)

the realized rate of network savings per byte of cache over the object's
cache lifetime.  Objects outside the cache carry a **load-adjusted rate**
computed over access *episodes* (eqs. 4-6)::

    LARP_i,e(t) = (sum_j y_ij - f_i) / ((t - tS) * s_i)
    LAR_i,e    = max_t LARP_i,e(t)
    LAR_i      = sum_e w_e * LAR_i,e / sum_e w_e

(the amortized reading of eq. 4; see Episode.larp for why)

with recent episodes weighted more heavily.  Episodes split when the
running LARP falls below ``c * LAR_e`` (rate collapsed after a burst) or
after ``k`` queries of silence (Section 4.3; defaults c=0.5, k=1000).

The bypass decision: a missing object is loaded iff enough cached
objects with RP below its LAR can be evicted to make room (load cost is
charged to the LAR; the RP of cached objects deliberately ignores the
sunk load cost so the cache stays conservative about evicting).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

try:  # Vectorized eviction-candidate ranking; plain Python otherwise.
    import numpy as _np
except ImportError:  # pragma: no cover - depends on environment
    _np = None  # type: ignore[assignment]

from repro.core.events import CacheQuery, Decision, ObjectRequest
from repro.core.policies.base import CachePolicy
from repro.core.units import AnyRawBytes
from repro.errors import CacheError


@dataclass
class Episode:
    """One burst of accesses to an out-of-cache object."""

    start_time: int
    yield_sum: float = 0.0
    best_lar: float = float("-inf")  # max_t LARP(t) within the episode
    last_access: int = 0

    def larp(self, now: int, size: int, fetch_cost: float) -> float:
        """Current load-adjusted rate profile (eq. 4).

        We use the amortized reading ``(sum_j y - f) / ((t - tS) * s)``:
        the rate profile "reduced by the load cost" with consistent
        rate units.  (The inline form printed in the paper, ``rate -
        f/s``, subtracts a dimensionless quantity from a rate and
        contradicts the paper's own observation that LARP increases
        monotonically until the load penalty is overcome; the amortized
        form satisfies both.)
        """
        elapsed = max(1, now - self.start_time)
        return (self.yield_sum - fetch_cost) / (elapsed * size)

    def record(
        self, now: int, yield_bytes: float, size: int, fetch_cost: float
    ) -> float:
        """Add an access; returns the updated running LARP."""
        self.yield_sum += yield_bytes
        self.last_access = now
        value = self.larp(now, size, fetch_cost)
        if value > self.best_lar:
            self.best_lar = value
        return value


@dataclass
class OutsideProfile:
    """Episode history for an object not (currently) in the cache."""

    size: int
    fetch_cost: float
    episode_lars: List[float] = field(default_factory=list)
    current: Optional[Episode] = None
    last_access: int = 0

    def close_current(self, max_episodes: int) -> None:
        if self.current is None:
            return
        if self.current.best_lar > float("-inf"):
            self.episode_lars.append(self.current.best_lar)
            if len(self.episode_lars) > max_episodes:
                del self.episode_lars[0]
        self.current = None

    def lar(self, decay: float) -> float:
        """Expected savings rate (eq. 6): episode LARs, recent-weighted."""
        lars = list(self.episode_lars)
        if self.current is not None and self.current.best_lar > float(
            "-inf"
        ):
            lars.append(self.current.best_lar)
        if not lars:
            return float("-inf")
        weighted = 0.0
        total = 0.0
        weight = 1.0
        for value in reversed(lars):  # most recent first
            weighted += weight * value
            total += weight
            weight *= decay
        return weighted / total


@dataclass
class CachedProfile:
    """Rate-profile state for a resident object (eq. 3)."""

    size: int
    fetch_cost: float
    load_time: int
    yield_sum: float = 0.0

    def rate_profile(self, now: int) -> float:
        elapsed = max(1, now - self.load_time)
        return self.yield_sum / (elapsed * self.size)


class RateProfilePolicy(CachePolicy):
    """Workload-driven bypass-yield caching (the paper's Rate-Profile).

    Args:
        capacity_bytes: Cache size.
        episode_cut: The ``c`` of Section 4.3 — episodes end when LARP
            drops below ``c * LAR_e``.
        idle_cut: The ``k`` of Section 4.3 — episodes end after this many
            queries without an access.
        episode_decay: Weight ratio between consecutive episodes in the
            LAR average (recent episodes weigh more).
        max_episodes: Episode LARs retained per object (pruning).
        max_tracked: Out-of-cache objects profiled at once (pruning).
    """

    name = "rate-profile"

    def __init__(
        self,
        capacity_bytes: AnyRawBytes,
        episode_cut: float = 0.5,
        idle_cut: int = 1000,
        episode_decay: float = 0.6,
        max_episodes: int = 8,
        max_tracked: int = 20000,
    ) -> None:
        super().__init__(capacity_bytes)
        if not 0.0 <= episode_cut <= 1.0:
            raise CacheError("episode_cut must be within [0, 1]")
        if idle_cut <= 0:
            raise CacheError("idle_cut must be positive")
        if not 0.0 < episode_decay <= 1.0:
            raise CacheError("episode_decay must be in (0, 1]")
        if max_episodes <= 0 or max_tracked <= 0:
            raise CacheError("pruning limits must be positive")
        self.episode_cut = episode_cut
        self.idle_cut = idle_cut
        self.episode_decay = episode_decay
        self.max_episodes = max_episodes
        self.max_tracked = max_tracked
        self._time = 0
        self._cached: Dict[str, CachedProfile] = {}
        self._outside: Dict[str, OutsideProfile] = {}
        # Flat mirrors of the per-resident rate inputs (yield sum, load
        # time, size), always keyed in ``self._cached`` order, so the
        # per-epoch candidate ranking can be vectorized instead of
        # touching 10^4 profile objects per query.
        self._plan_y: Dict[str, float] = {}
        self._plan_l: Dict[str, float] = {}
        self._plan_s: Dict[str, float] = {}
        # Eviction-candidate cursor: rate profiles vary with time, so
        # ranks are only stable *within* one query epoch.  The ascending
        # (rate, object_id) order is built once per epoch and shared by
        # every missing object in the query; ``_plan_pos`` advances past
        # consumed candidates (evicted victims, protected ids) and
        # rewinds on failed plans.
        self._plan_epoch = -1
        self._plan_pos = 0
        self._plan_rates: Sequence[float] = ()
        self._plan_oids: List[str] = []
        self._plan_order: Optional[Any] = None
        # Equal-rate runs left by the stable argsort, fixed up to the
        # scan's object-id tie-break lazily — only when the cursor
        # actually reaches a run.
        self._plan_run_starts: List[int] = []
        self._plan_run_ends: List[int] = []
        self._plan_run_idx = 0

    # -- introspection (used heavily by tests) --------------------------

    def rate_profile(self, object_id: str) -> float:
        profile = self._cached.get(object_id)
        if profile is None:
            raise CacheError(f"{object_id!r} is not cached")
        return profile.rate_profile(self._time)

    def load_adjusted_rate(self, object_id: str) -> float:
        profile = self._outside.get(object_id)
        if profile is None:
            return float("-inf")
        return profile.lar(self.episode_decay)

    def tracked_outside(self) -> int:
        return len(self._outside)

    # -- decision logic ---------------------------------------------------

    def decide(self, query: CacheQuery) -> Decision:
        self._time += 1
        now = self._time
        missing = [
            req for req in query.objects if req.object_id not in self.store
        ]
        for request in missing:
            self._observe_outside(request, now)

        loads: List[str] = []
        evictions: List[str] = []
        protected = {req.object_id for req in query.objects}
        for request in missing:
            victims = self._plan_load(request, protected)
            if victims is None:
                continue
            for victim in victims:
                self._evict(victim, now)
                evictions.append(victim)
            self._load(request, now)
            loads.append(request.object_id)

        served = all(
            req.object_id in self.store for req in query.objects
        )
        if served:
            for request in query.objects:
                profile = self._cached[request.object_id]
                profile.yield_sum += request.yield_bytes
                self._plan_y[request.object_id] = profile.yield_sum
        return Decision(
            served_from_cache=served, loads=loads, evictions=evictions
        )

    # -- internals ---------------------------------------------------------

    def _observe_outside(self, request: ObjectRequest, now: int) -> None:
        profile = self._outside.get(request.object_id)
        if profile is None:
            if len(self._outside) >= self.max_tracked:
                self._prune_outside()
            profile = OutsideProfile(
                size=request.size, fetch_cost=request.fetch_cost
            )
            self._outside[request.object_id] = profile
        profile.size = request.size
        profile.fetch_cost = request.fetch_cost

        episode = profile.current
        if episode is not None and now - episode.last_access > self.idle_cut:
            # Rule 2: too long silent — the episode is over.
            profile.close_current(self.max_episodes)
            episode = None
        if episode is None:
            episode = Episode(start_time=now - 1, last_access=now)
            profile.current = episode
        larp = episode.record(
            now, request.yield_bytes, request.size, request.fetch_cost
        )
        # Rule 1: the rate collapsed well below the episode's peak.
        if (
            episode.best_lar > 0
            and larp < self.episode_cut * episode.best_lar
        ):
            profile.close_current(self.max_episodes)
            fresh = Episode(start_time=now - 1, last_access=now)
            fresh.record(
                now, request.yield_bytes, request.size, request.fetch_cost
            )
            profile.current = fresh
        profile.last_access = now

    def _plan_load(
        self, request: ObjectRequest, protected: set
    ) -> Optional[List[str]]:
        """Victims to evict so ``request`` can be loaded, or None to
        bypass.

        Loads happen only when the candidate's LAR is positive (expected
        net savings) and every needed victim has a lower current RP.
        """
        if not self.store.fits(request.size):
            return None
        lar = self.load_adjusted_rate(request.object_id)
        if lar <= 0:
            return None
        needed = request.size - self.store.free_bytes
        if needed <= 0:
            return []
        if self._plan_epoch != self._time:
            self._rank_candidates()
        # The cursor walks ascending (rate, object_id) exactly as the
        # per-call sorted scan did: protected ids are skipped (the scan
        # excluded them), ids evicted earlier this query are stale, and
        # the position only sticks when the plan succeeds — victims are
        # then evicted, so nothing consumable is ever skipped over.
        rates = self._plan_rates
        total = len(rates)
        pos = self._plan_pos
        start = pos
        victims: List[str] = []
        freed = 0
        run_starts = self._plan_run_starts
        while pos < total:
            while (
                self._plan_run_idx < len(run_starts)
                and pos >= run_starts[self._plan_run_idx]
            ):
                self._fix_run(self._plan_run_idx)
                self._plan_run_idx += 1
            object_id = self._plan_oid(pos)
            if object_id in protected or object_id not in self._cached:
                pos += 1
                continue
            if rates[pos] >= lar:
                break
            victims.append(object_id)
            freed += self.store.size_of(object_id)
            pos += 1
            if freed >= needed:
                self._plan_pos = pos
                return victims
        # Not enough evictable bytes below the LAR: rewind so later
        # missing objects see the full candidate set.
        self._plan_pos = start
        return None

    def _plan_oid(self, pos: int) -> str:
        if self._plan_order is None:
            return self._plan_oids[pos]
        return self._plan_oids[self._plan_order[pos]]

    def _rank_candidates(self) -> None:
        """Rank this epoch's eviction candidates ascending by rate.

        Sanctioned full scan: runs once per query epoch, not per
        missing object.  The vectorized path computes the same IEEE-754
        doubles as :meth:`CachedProfile.rate_profile` — ``elapsed *
        size`` rounds the exact product once either way — and restores
        the sorted scan's object-id tie-break by reordering equal-rate
        runs.
        """
        self._plan_epoch = self._time
        self._plan_pos = 0
        ids = list(self._cached)
        count = len(ids)
        if _np is None or count < 512:
            entries = sorted(  # repro-lint: allow[RPR005]
                (self._cached[oid].rate_profile(self._time), oid)
                for oid in ids
            )
            self._plan_rates = [entry[0] for entry in entries]
            self._plan_oids = [entry[1] for entry in entries]
            self._plan_order = None
            self._plan_run_starts = []
            self._plan_run_ends = []
            self._plan_run_idx = 0
            return
        yields = _np.fromiter(
            self._plan_y.values(), _np.float64, count=count
        )
        loads = _np.fromiter(
            self._plan_l.values(), _np.float64, count=count
        )
        sizes = _np.fromiter(
            self._plan_s.values(), _np.float64, count=count
        )
        elapsed = _np.maximum(self._time - loads, 1.0)
        rates = yields / (elapsed * sizes)
        order = _np.argsort(rates, kind="stable")
        ranked = rates[order]
        # Stable argsort breaks rate ties by insertion order; the scan
        # this replaces broke them by object id.  Equal doubles are
        # exactly detectable; record the runs and let the cursor fix
        # each one up the first time it gets there (a run the cursor
        # never reaches never needed its tie-break resolved).
        ties = _np.flatnonzero(ranked[1:] == ranked[:-1])
        if ties.size:
            breaks = _np.flatnonzero(_np.diff(ties) > 1)
            first = _np.concatenate(([0], breaks + 1))
            last = _np.concatenate((breaks, [ties.size - 1]))
            self._plan_run_starts = ties[first].tolist()
            self._plan_run_ends = (ties[last] + 1).tolist()
        else:
            self._plan_run_starts = []
            self._plan_run_ends = []
        self._plan_run_idx = 0
        self._plan_rates = ranked
        self._plan_oids = ids
        self._plan_order = order

    def _fix_run(self, run: int) -> None:
        """Reorder one equal-rate run of positions by object id."""
        start = self._plan_run_starts[run]
        stop = self._plan_run_ends[run] + 1
        order = self._plan_order
        assert order is not None
        segment = order[start:stop].tolist()
        segment.sort(key=self._plan_oids.__getitem__)
        order[start:stop] = segment

    def _load(self, request: ObjectRequest, now: int) -> None:
        self.store.add(request.object_id, request.size)
        self._cached[request.object_id] = CachedProfile(
            size=request.size,
            fetch_cost=request.fetch_cost,
            load_time=now,
        )
        self._plan_y[request.object_id] = 0.0
        self._plan_l[request.object_id] = float(now)
        self._plan_s[request.object_id] = float(request.size)
        # Its outside profile pauses while resident; the current episode
        # is closed so a later eviction starts cleanly.
        profile = self._outside.get(request.object_id)
        if profile is not None:
            profile.close_current(self.max_episodes)

    def _evict(self, object_id: str, now: int) -> None:
        self.store.remove(object_id)
        self._cached.pop(object_id, None)
        self._plan_y.pop(object_id, None)
        self._plan_l.pop(object_id, None)
        self._plan_s.pop(object_id, None)

    def _drop(self, object_id: str) -> None:
        self._evict(object_id, self._time)

    def _prune_outside(self) -> None:
        """Drop the stalest tenth of outside profiles.

        ``heapq.nsmallest`` is documented equivalent to
        ``sorted(...)[:n]`` (ties keep iteration order), but runs in
        O(n log drop) instead of sorting all tracked profiles.
        """
        drop = max(1, len(self._outside) // 10)
        stalest = heapq.nsmallest(
            drop,
            self._outside.items(),
            key=lambda item: item[1].last_access,
        )
        for object_id, _ in stalest:
            del self._outside[object_id]
