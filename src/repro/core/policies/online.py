"""OnlineBY and SpaceEffBY (Section 5) — competitive bypass-yield caching.

**OnlineBY** (Figure 2) keeps a BYU accumulator per object.  Each query
adds ``y_ij / s_i`` to the accumulator of every object it references;
when an accumulator reaches 1 (a whole object's worth of yield has
passed), a full-object request is generated for the bypass-object
algorithm ``A_obj``, which applies its own rent-to-buy admission and
Landlord eviction.  The query is served from cache iff its objects are
resident, bypassed otherwise.  With an α-competitive ``A_obj`` the result
is (4α+2)-competitive (Theorem 5.1).

**SpaceEffBY** (Figure 3) replaces the accumulators with randomization:
each reference generates the object request with probability
``y_ij / s_i``.  Expected behaviour matches OnlineBY at O(1) extra space.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.core.events import CacheQuery, Decision, ObjectRequest
from repro.core.object_cache import BypassObjectCache
from repro.core.policies.base import CachePolicy
from repro.core.units import AnyRawBytes
from repro.errors import CacheError


class OnlineBYPolicy(CachePolicy):
    """The deterministic competitive algorithm (Figure 2).

    Args:
        capacity_bytes: Cache size.
        admission: Admission rule for the inner bypass-object cache
            (``"rent-to-buy"`` per the paper, or ``"eager"`` for the
            load-on-first-object-request ablation).
    """

    name = "online-by"

    def __init__(
        self, capacity_bytes: AnyRawBytes, admission: str = "rent-to-buy"
    ) -> None:
        super().__init__(capacity_bytes)
        self.object_cache = BypassObjectCache(
            self.store, admission=admission
        )
        self._byu: Dict[str, float] = {}
        self.object_requests_generated = 0

    def byu_accumulator(self, object_id: str) -> float:
        """Current accumulator value (0 when never referenced)."""
        return self._byu.get(object_id, 0.0)

    def decide(self, query: CacheQuery) -> Decision:
        loads: List[str] = []
        evictions: List[str] = []
        for request in query.objects:
            accumulated = self._byu.get(request.object_id, 0.0)
            accumulated += request.yield_bytes / request.size
            # The epsilon guards against float drift: n yields of s/n
            # bytes must cross the threshold after exactly n queries.
            if accumulated >= 1.0 - 1e-9:
                accumulated = max(0.0, accumulated - 1.0)
                self._generate(request, loads, evictions)
            self._byu[request.object_id] = accumulated
        served = all(
            request.object_id in self.store for request in query.objects
        )
        return Decision(
            served_from_cache=served, loads=loads, evictions=evictions
        )

    def _generate(
        self,
        request: ObjectRequest,
        loads: List[str],
        evictions: List[str],
    ) -> None:
        """Feed one whole-object request to A_obj."""
        self.object_requests_generated += 1
        outcome = self.object_cache.request(
            request.object_id, request.size, request.fetch_cost
        )
        if outcome.loaded:
            loads.append(request.object_id)
        evictions.extend(outcome.evicted)

    def _drop(self, object_id: str) -> None:
        self.object_cache.evict(object_id)
        self._byu.pop(object_id, None)


class SpaceEffBYPolicy(CachePolicy):
    """The randomized minimal-space algorithm (Figure 3).

    Args:
        capacity_bytes: Cache size.
        seed: RNG seed; runs are reproducible for a fixed seed.
    """

    name = "space-eff-by"

    def __init__(self, capacity_bytes: AnyRawBytes, seed: int = 17) -> None:
        super().__init__(capacity_bytes)
        self.object_cache = BypassObjectCache(self.store)
        self._rng = random.Random(seed)
        self.object_requests_generated = 0

    def decide(self, query: CacheQuery) -> Decision:
        loads: List[str] = []
        evictions: List[str] = []
        for request in query.objects:
            probability = min(1.0, request.yield_bytes / request.size)
            if probability > 0 and self._rng.random() < probability:
                self.object_requests_generated += 1
                outcome = self.object_cache.request(
                    request.object_id, request.size, request.fetch_cost
                )
                if outcome.loaded:
                    loads.append(request.object_id)
                evictions.extend(outcome.evicted)
        served = all(
            request.object_id in self.store for request in query.objects
        )
        return Decision(
            served_from_cache=served, loads=loads, evictions=evictions
        )

    def _drop(self, object_id: str) -> None:
        self.object_cache.evict(object_id)
