"""Baseline policies the paper compares against.

* :class:`NoCachePolicy` — SkyQuery as-is; every query bypasses (its
  cumulative cost is the "sequence cost").
* :class:`GreedyDualSizePolicy` — classical *in-line* web caching (GDS):
  every miss loads the object; eviction by the Greedy-Dual-Size utility
  ``H = L + cost/size`` with inflation.  This is the paper's "GDS
  (without bypass)" comparator and performs poorly on database workloads
  because it pays whole-object loads for small-yield queries.
* :class:`GDSPopularityPolicy` — GDSP: GDS with a frequency factor,
  ``H = L + freq * cost/size``.
* :class:`LRUPolicy`, :class:`LFUPolicy`, :class:`LRUKPolicy` — the
  classical page/object-model replacement families, in-line.
* :class:`StaticPolicy` — optimal-static caching: a fixed, offline-chosen
  object set; no loads, no evictions (the paper's sanity-check line).
* :class:`SemanticCachePolicy` — caches whole query results keyed by
  SQL text (exact-match semantic caching); demonstrates why result reuse
  fails on scientific workloads (Section 6.1).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.events import CacheQuery, Decision, ObjectRequest
from repro.core.policies.base import CachePolicy
from repro.core.units import AnyRawBytes
from repro.core.victimheap import ReverseOrder, VictimHeap
from repro.errors import CacheError


class NoCachePolicy(CachePolicy):
    """Always bypass; the federation's behaviour without any cache."""

    name = "no-cache"
    supports_bypass = True

    def __init__(self, capacity_bytes: AnyRawBytes = 1) -> None:
        super().__init__(capacity_bytes)

    def decide(self, query: CacheQuery) -> Decision:
        return Decision(served_from_cache=False)


class _InlineObjectPolicy(CachePolicy):
    """Shared machinery for in-line (no-bypass) object caches.

    On every query the policy tries to make all referenced objects
    resident, loading each miss and evicting by the subclass's utility
    order.  Only objects larger than the whole cache are left uncached
    (those queries bypass out of physical necessity).

    Victim selection is O(log n) amortized: each subclass keeps its
    utility order in a shared :class:`~repro.core.victimheap.VictimHeap`
    (``self._victims``) whose keys encode the exact scan order —
    including tie-breaks — of the full-scan implementations they
    replaced, so decisions are byte-identical.
    """

    supports_bypass = False

    def __init__(self, capacity_bytes: AnyRawBytes) -> None:
        super().__init__(capacity_bytes)
        self._victims = VictimHeap()

    def decide(self, query: CacheQuery) -> Decision:
        loads: List[str] = []
        evictions: List[str] = []
        protected = {req.object_id for req in query.objects}
        for request in query.objects:
            if request.object_id in self.store:
                self._touch(request)
                continue
            if not self.store.fits(request.size):
                continue
            while not self.store.has_room(request.size):
                victim = self._choose_victim(protected)
                if victim is None:
                    break
                self.store.remove(victim)
                self._forget(victim)
                evictions.append(victim)
            if not self.store.has_room(request.size):
                continue
            self.store.add(request.object_id, request.size)
            self._admit(request)
            loads.append(request.object_id)
        served = all(
            request.object_id in self.store for request in query.objects
        )
        return Decision(
            served_from_cache=served, loads=loads, evictions=evictions
        )

    def _touch(self, request: ObjectRequest) -> None:
        raise NotImplementedError

    def _admit(self, request: ObjectRequest) -> None:
        raise NotImplementedError

    def _forget(self, object_id: str) -> None:
        raise NotImplementedError

    def _choose_victim(self, protected: Set[str]) -> Optional[str]:
        return self._victims.select_min(protected)

    def _drop(self, object_id: str) -> None:
        # Invalidation must not age the cache (unlike an eviction, the
        # object did not lose a utility comparison), so bypass _forget's
        # side effects where they exist.
        self.store.remove(object_id)
        self._forget_quietly(object_id)

    def _forget_quietly(self, object_id: str) -> None:
        self._forget(object_id)


class GreedyDualSizePolicy(_InlineObjectPolicy):
    """Greedy-Dual-Size: utility ``H = L + fetch_cost / size``.

    Victim order: ascending ``(H, object_id)`` — the heap key mirrors
    the ``min((value, object_id))`` scan it replaced.
    """

    name = "gds"

    def __init__(self, capacity_bytes: AnyRawBytes) -> None:
        super().__init__(capacity_bytes)
        self._inflation = 0.0
        self._h_values: Dict[str, float] = {}

    def h_value(self, object_id: str) -> float:
        try:
            return self._h_values[object_id]
        except KeyError:
            raise CacheError(f"{object_id!r} is not cached") from None

    def _utility(self, request: ObjectRequest) -> float:
        return self._inflation + request.fetch_cost / request.size

    def _touch(self, request: ObjectRequest) -> None:
        value = self._utility(request)
        self._h_values[request.object_id] = value
        self._victims.set(request.object_id, (value, request.object_id))

    def _admit(self, request: ObjectRequest) -> None:
        self._touch(request)

    def _forget(self, object_id: str) -> None:
        value = self._h_values.pop(object_id, None)
        if value is not None:
            # Greedy-Dual aging: inflation rises to the evicted utility.
            self._inflation = max(self._inflation, value)
        self._victims.discard(object_id)

    def _forget_quietly(self, object_id: str) -> None:
        self._h_values.pop(object_id, None)
        self._victims.discard(object_id)


class GDSPopularityPolicy(GreedyDualSizePolicy):
    """GDSP: GDS weighted by a frequency count across the whole
    reference stream (not just resident objects), as in Jin & Bestavros.
    """

    name = "gdsp"

    def __init__(self, capacity_bytes: AnyRawBytes) -> None:
        super().__init__(capacity_bytes)
        self._frequency: Dict[str, int] = {}

    def decide(self, query: CacheQuery) -> Decision:
        for request in query.objects:
            self._frequency[request.object_id] = (
                self._frequency.get(request.object_id, 0) + 1
            )
        return super().decide(query)

    def _utility(self, request: ObjectRequest) -> float:
        frequency = self._frequency.get(request.object_id, 1)
        return self._inflation + (
            frequency * request.fetch_cost / request.size
        )


class LRUPolicy(_InlineObjectPolicy):
    """Least-recently-used over variable-size objects, in-line.

    Victim order: ascending last-touch sequence number (unique, so no
    tie-break is needed) — identical to walking the recency list from
    its cold end.
    """

    name = "lru"

    def __init__(self, capacity_bytes: AnyRawBytes) -> None:
        super().__init__(capacity_bytes)
        self._clock = 0

    def _touch(self, request: ObjectRequest) -> None:
        self._clock += 1
        self._victims.set(request.object_id, self._clock)

    def _admit(self, request: ObjectRequest) -> None:
        self._touch(request)

    def _forget(self, object_id: str) -> None:
        self._victims.discard(object_id)


class LFUPolicy(_InlineObjectPolicy):
    """Least-frequently-used (cache-lifetime counts), in-line."""

    name = "lfu"

    def __init__(self, capacity_bytes: AnyRawBytes) -> None:
        super().__init__(capacity_bytes)
        self._counts: Dict[str, int] = {}

    def _touch(self, request: ObjectRequest) -> None:
        count = self._counts.get(request.object_id, 0) + 1
        self._counts[request.object_id] = count
        self._victims.set(request.object_id, (count, request.object_id))

    def _admit(self, request: ObjectRequest) -> None:
        self._counts[request.object_id] = 1
        self._victims.set(request.object_id, (1, request.object_id))

    def _forget(self, object_id: str) -> None:
        self._counts.pop(object_id, None)
        self._victims.discard(object_id)


class LFFPolicy(_InlineObjectPolicy):
    """Largest-file-first: evict the biggest resident object.

    One of the simple proxy-database revocation policies the paper's
    related-work section lists (LRU, LFU, LFF).  Biased toward keeping
    many small objects resident regardless of their traffic.

    Victim order: descending ``(size, object_id)`` — the
    :class:`~repro.core.victimheap.ReverseOrder` tie-break reproduces
    the ``max((size, object_id))`` scan exactly.
    """

    name = "lff"

    def _touch(self, request: ObjectRequest) -> None:
        pass

    def _admit(self, request: ObjectRequest) -> None:
        self._victims.set(
            request.object_id,
            (-request.size, ReverseOrder(request.object_id)),
        )

    def _forget(self, object_id: str) -> None:
        self._victims.discard(object_id)


class LRUKPolicy(_InlineObjectPolicy):
    """LRU-K (O'Neil et al.): evict by K-th most recent reference time.

    Objects with fewer than K references sort before all fully-referenced
    objects (their K-distance is infinite), breaking ties by oldest last
    reference.

    Victim order: ascending ``(K-distance key, admission sequence)``.
    The reference scan walked the store in insertion order keeping the
    first strictly-smallest key, so equal keys resolve to the earliest
    admitted object — which is exactly what the per-admission sequence
    number encodes.
    """

    name = "lru-k"

    def __init__(self, capacity_bytes: AnyRawBytes, k: int = 2) -> None:
        super().__init__(capacity_bytes)
        if k <= 0:
            raise CacheError("k must be positive")
        self.k = k
        self._history: Dict[str, List[int]] = {}
        self._clock = 0
        self._admit_seq = 0
        self._admit_order: Dict[str, int] = {}

    def decide(self, query: CacheQuery) -> Decision:
        self._clock += 1
        return super().decide(query)

    def _kdist(self, object_id: str) -> Tuple[int, int]:
        history = self._history.get(object_id, [])
        if len(history) < self.k:
            return (0, history[-1] if history else 0)
        return (1, history[0])

    def _record(self, object_id: str) -> None:
        history = self._history.setdefault(object_id, [])
        history.append(self._clock)
        if len(history) > self.k:
            del history[0]
        self._victims.set(
            object_id, (self._kdist(object_id), self._admit_order[object_id])
        )

    def _touch(self, request: ObjectRequest) -> None:
        self._record(request.object_id)

    def _admit(self, request: ObjectRequest) -> None:
        self._admit_seq += 1
        self._admit_order[request.object_id] = self._admit_seq
        self._record(request.object_id)

    def _forget(self, object_id: str) -> None:
        # Reference history survives eviction (that is LRU-K's point),
        # but the object leaves the victim order until readmission.
        self._victims.discard(object_id)
        self._admit_order.pop(object_id, None)


class StaticPolicy(CachePolicy):
    """Optimal-static caching: a fixed object set chosen offline.

    Queries fully covered by the set are served from cache; everything
    else bypasses.  No loads or evictions ever happen (initial population
    is free by default, matching the paper's use of static caching as a
    performance sanity check).
    """

    name = "static"

    def __init__(
        self,
        capacity_bytes: AnyRawBytes,
        objects: Dict[str, int],
    ) -> None:
        """Args:
            capacity_bytes: Cache size; the set must fit.
            objects: object_id -> size in bytes.
        """
        super().__init__(capacity_bytes)
        for object_id, size in objects.items():
            self.store.add(object_id, size)

    def decide(self, query: CacheQuery) -> Decision:
        served = all(
            request.object_id in self.store for request in query.objects
        )
        return Decision(served_from_cache=served)


class SemanticCachePolicy(CachePolicy):
    """Exact-match semantic (query-result) caching with LRU eviction.

    A query hits only when its exact SQL text was cached earlier — the
    workload-based stand-in for result reuse.  Section 6.1 predicts (and
    our Figure 4 analysis confirms) that scientific workloads give this
    almost no hits.
    """

    name = "semantic"

    def __init__(self, capacity_bytes: AnyRawBytes) -> None:
        super().__init__(capacity_bytes)
        self._order: "OrderedDict[str, None]" = OrderedDict()

    def decide(self, query: CacheQuery) -> Decision:
        key = f"q:{query.sql}"
        if key in self.store:
            self._order.move_to_end(key)
            return Decision(served_from_cache=True)
        size = max(1, query.yield_bytes)
        evictions: List[str] = []
        if self.store.fits(size):
            while not self.store.has_room(size):
                victim, _ = self._order.popitem(last=False)
                self.store.remove(victim)
                evictions.append(victim)
            self.store.add(key, size)
            self._order[key] = None
        # Admitting a result costs no extra WAN traffic (it passed through
        # the mediator anyway) so loads stay empty; the query itself is a
        # bypass.
        return Decision(served_from_cache=False, evictions=evictions)

    def process(self, query: CacheQuery) -> Decision:
        # Semantic hits do not require object residency; skip the
        # object-residency audit in the base class.
        self.queries_seen += 1
        decision = self.decide(query)
        if decision.served_from_cache:
            self.queries_served += 1
        return decision

    def invalidate(self, object_id: str) -> bool:
        """Flush every cached result.

        A result cache cannot map a changed database object back to the
        individual results that depend on it without full provenance
        tracking, so invalidation is conservative: everything goes.
        """
        had_entries = len(self.store) > 0
        self.store.clear()
        self._order.clear()
        return had_entries
