"""Cache-policy interface.

A policy owns a :class:`~repro.core.store.CacheStore` and answers one
question per query: serve it from cache (loading objects first if the
economics justify it) or bypass it to the federation.  The simulator
charges WAN bytes according to the returned :class:`Decision`.
"""

from __future__ import annotations

import abc
from typing import Dict, List, Optional

from repro.core.events import CacheQuery, Decision
from repro.core.store import CacheStore
from repro.core.units import AnyRawBytes
from repro.errors import CacheError


class CachePolicy(abc.ABC):
    """Base class for every caching algorithm in the suite."""

    #: Human-readable algorithm name, overridden by subclasses.
    name: str = "abstract"

    #: Whether the policy can bypass queries (False for in-line caches,
    #: which always try to cache what they serve).
    supports_bypass: bool = True

    def __init__(self, capacity_bytes: AnyRawBytes) -> None:
        self.store = CacheStore(capacity_bytes)
        self.queries_seen = 0
        self.queries_served = 0

    @property
    def capacity_bytes(self) -> int:
        return self.store.capacity_bytes

    def process(self, query: CacheQuery) -> Decision:
        """Handle one query; template method wrapping :meth:`decide`."""
        self.queries_seen += 1
        decision = self.decide(query)
        if decision.served_from_cache:
            self.queries_served += 1
            for request in query.objects:
                if request.object_id not in self.store:
                    raise CacheError(
                        f"{self.name}: claimed cache service but "
                        f"{request.object_id!r} is not resident"
                    )
        return decision

    @abc.abstractmethod
    def decide(self, query: CacheQuery) -> Decision:
        """Policy-specific decision logic."""

    def invalidate(self, object_id: str) -> bool:
        """Drop a cached object whose backing data or metadata changed.

        This is the consistency hook of Section 6: SDSS releases are
        immutable, but the server notifies the mediator of metadata
        changes (re-materialized views, rebuilt indices), and the cache
        must discard affected objects.  Returns True when the object was
        resident and has been dropped.
        """
        if object_id not in self.store:
            return False
        self._drop(object_id)
        return True

    def _drop(self, object_id: str) -> None:
        """Remove one resident object and its policy metadata.

        Subclasses with per-object state override this and must keep the
        store bookkeeping (the base behaviour) intact.
        """
        self.store.remove(object_id)

    @property
    def hit_rate(self) -> float:
        """Fraction of queries served from cache."""
        if self.queries_seen == 0:
            return 0.0
        return self.queries_served / self.queries_seen

    def describe(self) -> Dict[str, object]:
        """Introspection snapshot (used by reports and tests)."""
        return {
            "name": self.name,
            "capacity_bytes": self.capacity_bytes,
            "used_bytes": self.store.used_bytes,
            "resident_objects": len(self.store),
            "queries_seen": self.queries_seen,
            "queries_served": self.queries_served,
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(capacity={self.capacity_bytes}, "
            f"used={self.store.used_bytes})"
        )


def missing_objects(policy: CachePolicy, query: CacheQuery) -> List:
    """The query's object requests not currently resident."""
    return [
        request
        for request in query.objects
        if request.object_id not in policy.store
    ]
