"""Offline object selection for optimal-static caching.

Given a prepared trace, choose the object set that (greedily) maximizes
attributed yield per byte of cache — the populate-once, never-evict
comparator the paper calls *static table caching*.  The greedy knapsack
is within the usual density-greedy bound of optimal and is exact
whenever objects are small relative to capacity (our traces).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.core.units import AnyRawBytes
from repro.errors import CacheError

if TYPE_CHECKING:
    from repro.workload.trace import PreparedQuery


def choose_static_objects(
    object_yields: Dict[str, float],
    object_sizes: Dict[str, int],
    capacity_bytes: AnyRawBytes,
) -> Dict[str, int]:
    """Pick objects by descending yield density until capacity fills.

    Args:
        object_yields: object_id -> total attributed yield over the trace.
        object_sizes: object_id -> size in bytes.
        capacity_bytes: Cache capacity.

    Returns:
        Selected ``{object_id: size}`` fitting within capacity.
    """
    if capacity_bytes <= 0:
        raise CacheError("capacity must be positive")
    ranked: List[Tuple[float, str]] = []
    for object_id, total_yield in object_yields.items():
        size = object_sizes.get(object_id)
        if size is None:
            raise CacheError(f"no size known for {object_id!r}")
        if size <= 0:
            raise CacheError(f"{object_id!r} has non-positive size")
        ranked.append((total_yield / size, object_id))
    ranked.sort(reverse=True)

    chosen: Dict[str, int] = {}
    used = 0
    for density, object_id in ranked:
        if density <= 0:
            break
        size = object_sizes[object_id]
        if used + size <= capacity_bytes:
            chosen[object_id] = size
            used += size
    return chosen


#: Exhaustive selection is exponential; refuse beyond this many objects.
EXACT_SELECTION_LIMIT = 20


def choose_static_objects_exact(
    object_yields: Dict[str, float],
    object_sizes: Dict[str, int],
    capacity_bytes: AnyRawBytes,
) -> Dict[str, int]:
    """Exact knapsack by subset enumeration (small instances only).

    Maximizes total attributed yield subject to capacity.  Intended for
    table-granularity instances (a handful of objects); raises for more
    than :data:`EXACT_SELECTION_LIMIT` candidates.  Note that, like the
    greedy selector, this maximizes *attributed yield mass*, which is the
    right objective when queries mostly touch one object; the benchmark
    harness uses it to bound how much the greedy heuristic leaves on the
    table.
    """
    if capacity_bytes <= 0:
        raise CacheError("capacity must be positive")
    candidates = [
        (object_id, object_sizes[object_id], total_yield)
        for object_id, total_yield in object_yields.items()
        if total_yield > 0
    ]
    for object_id, size, _ in candidates:
        if size <= 0:
            raise CacheError(f"{object_id!r} has non-positive size")
    if len(candidates) > EXACT_SELECTION_LIMIT:
        raise CacheError(
            f"exact selection supports at most {EXACT_SELECTION_LIMIT} "
            f"objects, got {len(candidates)}; use the greedy selector"
        )

    best_yield = -1.0
    best_mask = 0
    count = len(candidates)
    for mask in range(1 << count):
        used = 0
        total = 0.0
        for bit in range(count):
            if mask & (1 << bit):
                used += candidates[bit][1]
                if used > capacity_bytes:
                    break
                total += candidates[bit][2]
        else:
            if used <= capacity_bytes and total > best_yield:
                best_yield = total
                best_mask = mask
    chosen: Dict[str, int] = {}
    for bit in range(count):
        if best_mask & (1 << bit):
            object_id, size, _ = candidates[bit]
            chosen[object_id] = size
    return chosen


def accumulate_object_yields(
    prepared_queries: "Iterable[PreparedQuery]", granularity: str
) -> Dict[str, float]:
    """Sum attributed yields per object over a prepared trace."""
    totals: Dict[str, float] = {}
    for query in prepared_queries:
        for object_id, share in query.object_yields(granularity).items():
            totals[object_id] = totals.get(object_id, 0.0) + share
    return totals
