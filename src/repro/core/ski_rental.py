"""The on-line ski-rental primitive (Section 5.1).

Rent (bypass) while cumulative rental payments stay below the purchase
(load) cost; buy as soon as they match or exceed it.  This classical rule
is 2-competitive, and it is the per-object engine inside the
bypass-object cache: OnlineBY reduces the yield model to it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CacheError


@dataclass
class SkiRental:
    """One rent-to-buy account.

    Attributes:
        buy_cost: Purchase price (the object's fetch cost).
        paid: Cumulative rent paid so far.
        bought: Whether the buy decision has been made.
    """

    buy_cost: float
    paid: float = 0.0
    bought: bool = False

    def __post_init__(self) -> None:
        if self.buy_cost <= 0:
            raise CacheError("buy cost must be positive")

    def should_buy(self) -> bool:
        """True when accumulated rent has reached the purchase price.

        Checked *before* paying for the next trip: the classic rule buys
        for the first trip whose preceding rentals already covered the
        purchase cost, which bounds total spend at twice optimal.
        """
        return not self.bought and self.paid >= self.buy_cost

    def pay_rent(self, amount: float) -> float:
        """Rent for one trip at ``amount``; returns cumulative rent.

        Raises:
            CacheError: negative amounts, or renting after buying.
        """
        if amount < 0:
            raise CacheError("rent must be non-negative")
        if self.bought:
            raise CacheError("cannot rent after buying")
        self.paid += amount
        return self.paid

    def buy(self) -> None:
        if self.bought:
            raise CacheError("already bought")
        self.bought = True

    def reset(self) -> None:
        """Start a fresh account (after the object is evicted again)."""
        self.paid = 0.0
        self.bought = False

    @property
    def competitive_bound(self) -> float:
        """Worst-case ratio of this rule vs. offline optimal: 2."""
        return 2.0
