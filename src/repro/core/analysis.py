"""Competitive analysis utilities: offline bounds and empirical ratios.

Theorem 5.1 bounds OnlineBY at ``(4α + 2)``-competitive against the
offline optimum.  The true capacity-constrained optimum is NP-hard to
compute, but relaxing the capacity constraint decomposes the problem per
object, where the offline optimum has a closed form — and the sum of
per-object optima is a valid *lower bound* on OPT (relaxation only
helps).  Dividing a policy's measured cost by that bound yields an
empirical upper estimate of its competitive ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence

from repro.errors import CacheError

if TYPE_CHECKING:
    from repro.core.policies.base import CachePolicy
    from repro.federation.federation import Federation
    from repro.workload.trace import PreparedTrace


def offline_single_object_opt(
    yields: Sequence[float], fetch_cost: float
) -> float:
    """Offline optimal cost of serving one object's query stream.

    With no capacity pressure the object is loaded at most once (there
    is never a reason to evict), so the optimum is::

        min( sum(all yields),                    # never load
             min_k  sum(yields[:k]) + f )        # bypass k, then load

    Args:
        yields: Per-query bypass costs against the object, in order.
        fetch_cost: Cost ``f`` of loading the object.
    """
    if fetch_cost < 0:
        raise CacheError("fetch cost must be non-negative")
    for value in yields:
        if value < 0:
            raise CacheError("yields must be non-negative")
    return _single_object_opt(yields, fetch_cost)


def _single_object_opt(yields: Sequence[float], fetch_cost: float) -> float:
    # With hindsight and no capacity pressure, loading later than the
    # first query is always dominated (the prefix of bypassed yields
    # only grows), so the offline optimum is the ski-rental one:
    # load immediately (pay f) or never (pay every yield).
    return min(float(fetch_cost), float(sum(yields)))


@dataclass
class CompetitiveReport:
    """Empirical competitive measurement for one policy run.

    Attributes:
        policy_cost: Measured WAN cost (bypass + loads).
        opt_lower_bound: Sum of per-object offline optima (capacity
            relaxed) — a lower bound on the true offline optimum.
        per_object_bounds: The decomposed bounds.
    """

    policy_cost: float
    opt_lower_bound: float
    per_object_bounds: Dict[str, float] = field(default_factory=dict)

    @property
    def empirical_ratio(self) -> float:
        """Upper estimate of the competitive ratio on this input."""
        if self.opt_lower_bound <= 0:
            return float("inf") if self.policy_cost > 0 else 1.0
        return self.policy_cost / self.opt_lower_bound


def opt_lower_bound(
    prepared_queries: Iterable,
    granularity: str,
    object_sizes: Dict[str, int],
    fetch_costs: Dict[str, float],
) -> CompetitiveReport:
    """Relaxed-offline lower bound for a prepared trace.

    Each query's attributed yield shares form the per-object bypass
    streams; each object is then solved offline in isolation.
    """
    streams: Dict[str, List[float]] = {}
    for query in prepared_queries:
        for object_id, share in query.object_yields(granularity).items():
            streams.setdefault(object_id, []).append(share)
    bounds: Dict[str, float] = {}
    for object_id, stream in streams.items():
        if object_id not in fetch_costs:
            raise CacheError(f"no fetch cost for {object_id!r}")
        bounds[object_id] = _single_object_opt(
            stream, fetch_costs[object_id]
        )
    return CompetitiveReport(
        policy_cost=0.0,
        opt_lower_bound=sum(bounds.values()),
        per_object_bounds=bounds,
    )


def measure_competitive_ratio(
    prepared_trace: "PreparedTrace",
    federation: "Federation",
    policy: "CachePolicy",
    granularity: str = "table",
) -> CompetitiveReport:
    """Run ``policy`` over the trace and compare against the bound."""
    from repro.core.pipeline import shared_catalog
    from repro.sim.simulator import Simulator

    catalog = shared_catalog(federation)
    object_ids = set()
    for query in prepared_trace:
        object_ids.update(query.object_yields(granularity))
    sizes = {oid: catalog.size(oid) for oid in object_ids}
    costs = {oid: catalog.fetch_cost(oid) for oid in object_ids}

    report = opt_lower_bound(prepared_trace, granularity, sizes, costs)
    simulator = Simulator(federation, granularity)
    result = simulator.run(prepared_trace, policy, record_series=False)
    report.policy_cost = result.total_bytes
    return report
