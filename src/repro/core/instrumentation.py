"""Observability seam for the decision pipeline.

Every replay — offline (:class:`~repro.sim.simulator.Simulator`) or
online (:class:`~repro.core.proxy.BypassYieldProxy`) — can emit a
structured decision trace without touching policy code: counters,
per-query :class:`DecisionEvent` records, and named stage timers, with
optional stdlib ``logging`` integration and pluggable :class:`Probe`
hooks for external collectors.

The instrumentation object is deliberately cheap: callers hold ``None``
by default and pay nothing; when one is attached, recording a decision
is a dataclass construction plus a few dict updates.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Deque,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

#: Version tag carried by :meth:`Instrumentation.snapshot` payloads so
#: that merge/restore code can reject incompatible shapes.
SNAPSHOT_SCHEMA = 2

#: Counters whose unit cannot be inferred from their name alone.
_KNOWN_COUNTER_UNITS: Dict[str, str] = {
    "wan.weighted_cost": "cost",
    "fleet.wan_bytes": "bytes",
}


def counter_unit(name: str) -> str:
    """Unit of one named counter: ``bytes``, ``cost``, ``seconds`` or
    ``count``.

    Units follow naming conventions (``*_bytes`` counters are bytes,
    ``*_cost`` counters are link-weighted cost units, ``*_seconds`` are
    wall-clock seconds) with a small table of known exceptions.  The
    unit rides along in snapshots so merged/persisted telemetry stays
    self-describing (RPR001's unit-mixing discipline, applied to
    observability output).
    """
    known = _KNOWN_COUNTER_UNITS.get(name)
    if known is not None:
        return known
    tail = name.rsplit(".", 1)[-1]
    if tail.endswith("bytes"):
        return "bytes"
    if tail.endswith("cost"):
        return "cost"
    if tail.endswith("seconds"):
        return "seconds"
    return "count"


@dataclass(frozen=True)
class DecisionEvent:
    """One per-query load/serve/bypass decision, fully accounted.

    Attributes:
        index: Query number (the paper's notion of time).
        source: ``"simulator"`` or ``"proxy"`` — which driver emitted it.
        policy: Name of the deciding policy.
        granularity: ``"table"`` or ``"column"``.
        served_from_cache: True when the query was evaluated locally.
        loads: Object ids fetched into the cache for this query.
        evictions: Object ids evicted to make room.
        load_bytes: WAN bytes spent on loads for this query.
        bypass_bytes: WAN bytes spent bypassing this query (0 on hits).
        weighted_cost: Link-weighted WAN cost this query added.
        sql: Query text (may be empty for synthetic traces).
        yield_bytes: Result size of the query (its yield), whichever
            path served it.  0 when the emitting driver predates the
            field (old traces).
        retries: Transfer attempts beyond the first this query needed
            (0 on fault-free runs).
        retry_bytes: WAN bytes burned by failed transfer attempts and
            discarded partials for this query.
        outcome: How the query was ultimately resolved under faults —
            ``"served"``, ``"bypassed"``, ``"partial"``, or
            ``"unavailable"``.  Empty for fault-free traces, whose
            outcome is implied by ``served_from_cache``.
        tenant: Client that issued the query ("" when the trace is
            untagged).  Per-tenant WAN attribution partitions on this.
        shard: Fleet shard (proxy instance) that decided the query (""
            outside cooperative fleet runs).  Per-shard attribution
            partitions on this.
        peer_bytes: Object bytes a sibling shard supplied instead of
            the backend (0 outside cooperative fleet runs) — regional
            traffic, excluded from :attr:`wan_bytes`.
    """

    index: int
    source: str
    policy: str
    granularity: str
    served_from_cache: bool
    loads: Tuple[str, ...]
    evictions: Tuple[str, ...]
    load_bytes: int
    bypass_bytes: int
    weighted_cost: float
    sql: str = ""
    yield_bytes: int = 0
    retries: int = 0
    retry_bytes: int = 0
    outcome: str = ""
    tenant: str = ""
    shard: str = ""
    peer_bytes: int = 0

    @property
    def wan_bytes(self) -> int:
        """Total WAN bytes this query added (loads + bypass + retry
        waste)."""
        return self.load_bytes + self.bypass_bytes + self.retry_bytes

    def to_json(self) -> Dict[str, object]:
        """JSON-safe dict that :meth:`from_json` restores exactly."""
        data: Dict[str, object] = {
            "index": self.index,
            "source": self.source,
            "policy": self.policy,
            "granularity": self.granularity,
            "served_from_cache": self.served_from_cache,
            "loads": list(self.loads),
            "evictions": list(self.evictions),
            "load_bytes": self.load_bytes,
            "bypass_bytes": self.bypass_bytes,
            "weighted_cost": self.weighted_cost,
            "sql": self.sql,
            "yield_bytes": self.yield_bytes,
            "retries": self.retries,
            "retry_bytes": self.retry_bytes,
            "outcome": self.outcome,
            "tenant": self.tenant,
        }
        # Fleet fields appear only when set, so traces from
        # non-cooperative runs stay byte-identical to pre-fleet output
        # (the repro-report diff gate compares serialized lines).
        if self.shard:
            data["shard"] = self.shard
        if self.peer_bytes:
            data["peer_bytes"] = self.peer_bytes
        return data

    @classmethod
    def from_json(cls, data: Mapping[str, object]) -> "DecisionEvent":
        """Rebuild an event from :meth:`to_json` output."""
        loads = data.get("loads", [])
        evictions = data.get("evictions", [])
        if not isinstance(loads, list) or not isinstance(evictions, list):
            raise ValueError("event loads/evictions must be lists")
        return cls(
            index=int(data["index"]),  # type: ignore[call-overload]
            source=str(data["source"]),
            policy=str(data["policy"]),
            granularity=str(data["granularity"]),
            served_from_cache=bool(data["served_from_cache"]),
            loads=tuple(str(item) for item in loads),
            evictions=tuple(str(item) for item in evictions),
            load_bytes=int(data["load_bytes"]),  # type: ignore[call-overload]
            bypass_bytes=int(data["bypass_bytes"]),  # type: ignore[call-overload]
            weighted_cost=float(data["weighted_cost"]),  # type: ignore[arg-type]
            sql=str(data.get("sql", "")),
            yield_bytes=int(data.get("yield_bytes", 0)),  # type: ignore[call-overload]
            retries=int(data.get("retries", 0)),  # type: ignore[call-overload]
            retry_bytes=int(data.get("retry_bytes", 0)),  # type: ignore[call-overload]
            outcome=str(data.get("outcome", "")),
            tenant=str(data.get("tenant", "")),
            shard=str(data.get("shard", "")),
            peer_bytes=int(data.get("peer_bytes", 0)),  # type: ignore[call-overload]
        )


class Probe:
    """Pluggable hook receiving instrumentation callbacks.

    Subclass and override any subset; the base methods are no-ops so a
    probe only pays for what it watches.
    """

    def on_decision(self, event: DecisionEvent) -> None:
        """Called once per query decision."""

    def on_counter(self, name: str, value: float) -> None:
        """Called on every counter increment with the increment value."""

    def on_stage(self, name: str, seconds: float) -> None:
        """Called when a timed stage finishes."""


class Instrumentation:
    """Counters, decision events, and stage timers for one run.

    Args:
        logger: A :class:`logging.Logger`, a logger name, or None.  When
            set, decisions are logged at DEBUG level.
        max_events: Bound on retained decision events (None keeps all;
            0 disables event retention while keeping counters/timers).
    """

    def __init__(
        self,
        logger: Union[logging.Logger, str, None] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if isinstance(logger, str):
            logger = logging.getLogger(logger)
        self.logger = logger
        self.counters: Dict[str, float] = {}
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self.probes: List[Probe] = []
        self._max_events = max_events
        self.events: Deque[DecisionEvent] = deque(
            maxlen=max_events if max_events not in (None, 0) else None
        )
        self._retain_events = max_events != 0
        #: Total decisions recorded, including any the retention bound
        #: (or ``max_events=0``) dropped — ``events_truncated`` compares
        #: this against ``len(events)``.
        self.events_seen = 0

    @property
    def max_events(self) -> Optional[int]:
        """The retention bound this sink was built with."""
        return self._max_events

    @property
    def events_truncated(self) -> bool:
        """True when some recorded events are no longer retained."""
        return self.events_seen > len(self.events)

    # -- probes ---------------------------------------------------------

    def add_probe(self, probe: Probe) -> Probe:
        """Attach a probe; returns it for chaining."""
        self.probes.append(probe)
        return probe

    # -- counters -------------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0.0) + value
        for probe in self.probes:
            probe.on_counter(name, value)

    # -- stage timers ---------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a named stage; accumulates across calls."""
        start = time.perf_counter()  # repro-lint: allow[RPR002] timers are observability-only
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start  # repro-lint: allow[RPR002] timers are observability-only
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + elapsed
            )
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1
            for probe in self.probes:
                probe.on_stage(name, elapsed)

    # -- decision events ------------------------------------------------

    def record_decision(self, event: DecisionEvent) -> None:
        """Record one per-query decision event."""
        if self._retain_events:
            self.events.append(event)
        self.events_seen += 1
        self.count("decisions")
        if event.served_from_cache:
            self.count("decisions.served")
        else:
            self.count("decisions.bypassed")
        if event.loads:
            self.count("decisions.loads", len(event.loads))
        if event.evictions:
            self.count("decisions.evictions", len(event.evictions))
        self.count("wan.load_bytes", event.load_bytes)
        self.count("wan.bypass_bytes", event.bypass_bytes)
        self.count("wan.weighted_cost", event.weighted_cost)
        if event.retries:
            self.count("decisions.retries", event.retries)
        if event.retry_bytes:
            self.count("wan.retry_bytes", event.retry_bytes)
        if event.outcome:
            self.count(f"decisions.outcome.{event.outcome}")
        # Per-tenant attribution.  Untagged traffic lands in its own
        # bucket so the tenant partition always sums exactly to the
        # aggregate counters above.
        tenant = event.tenant or "untagged"
        self.count(f"tenant.{tenant}.decisions")
        if event.served_from_cache:
            self.count(f"tenant.{tenant}.served")
        self.count(f"tenant.{tenant}.wan_bytes", event.wan_bytes)
        self.count(f"tenant.{tenant}.weighted_cost", event.weighted_cost)
        # Fleet attribution: sibling-supplied bytes and per-shard
        # partitions, recorded only for tagged (cooperative) decisions
        # so non-fleet runs emit exactly the pre-fleet counter set.
        if event.peer_bytes:
            self.count("fleet.peer_bytes", event.peer_bytes)
            self.count("fleet.peer_hits")
        if event.shard:
            shard = event.shard
            self.count(f"fleet.shard.{shard}.decisions")
            if event.served_from_cache:
                self.count(f"fleet.shard.{shard}.served")
            self.count(f"fleet.shard.{shard}.wan_bytes", event.wan_bytes)
            if event.peer_bytes:
                self.count(
                    f"fleet.shard.{shard}.peer_bytes", event.peer_bytes
                )
        if self.logger is not None:
            self.logger.debug(
                "q%d [%s/%s] %s loads=%s evictions=%s wan=%d",
                event.index,
                event.source,
                event.policy,
                "serve" if event.served_from_cache else "bypass",
                list(event.loads),
                list(event.evictions),
                event.wan_bytes,
            )
        for probe in self.probes:
            probe.on_decision(event)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Structured, merge-safe view of everything recorded so far.

        The payload is pure JSON-serializable data: counters annotated
        with their units (see :func:`counter_unit`), stage timers, and
        the event-retention accounting (``events`` retained versus
        ``events_seen`` recorded, plus the resulting truncation flag).
        :meth:`merge_snapshot` consumes exactly this shape, and
        ``reset()`` + ``merge_snapshot(snapshot())`` round-trips.
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": dict(self.counters),
            "counter_units": {
                name: counter_unit(name) for name in self.counters
            },
            "stages": {
                name: {
                    "seconds": seconds,
                    "calls": self.stage_calls.get(name, 0),
                }
                for name, seconds in self.stage_seconds.items()
            },
            "events": len(self.events),
            "events_seen": self.events_seen,
            "events_truncated": self.events_truncated,
        }

    def merge(self, other: "Instrumentation") -> "Instrumentation":
        """Fold another sink's recorded state into this one.

        Counters and stage timers add; retained events append in
        ``other``'s order (this sink's retention bound still applies);
        ``events_seen`` accumulates so truncation stays visible.  Merge
        order is the caller's iteration order, which the parallel
        runners keep deterministic (submission order).  Probes are not
        merged.  Returns ``self`` for chaining.
        """
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, seconds in other.stage_seconds.items():
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + seconds
            )
            self.stage_calls[name] = (
                self.stage_calls.get(name, 0)
                + other.stage_calls.get(name, 0)
            )
        if self._retain_events:
            self.events.extend(other.events)
        self.events_seen += other.events_seen
        return self

    def merge_snapshot(
        self, snapshot: Mapping[str, object]
    ) -> "Instrumentation":
        """Fold a :meth:`snapshot` payload into this sink.

        This is how parallel sweep workers aggregate: each worker ships
        its snapshot (cheap, JSON-safe) back to the parent, which merges
        them in deterministic task order.  Event *bodies* do not cross
        the process boundary — only their count — so ``events_seen``
        grows while retained events do not, and ``events_truncated``
        correctly reports the merged view as partial.
        """
        schema = snapshot.get("schema", SNAPSHOT_SCHEMA)
        if not isinstance(schema, int) or schema > SNAPSHOT_SCHEMA:
            raise ValueError(
                f"cannot merge snapshot with schema {schema!r}; "
                f"this build understands <= {SNAPSHOT_SCHEMA}"
            )
        counters = snapshot.get("counters", {})
        if isinstance(counters, Mapping):
            for name, value in counters.items():
                self.counters[str(name)] = (
                    self.counters.get(str(name), 0.0) + float(value)  # type: ignore[arg-type]
                )
        stages = snapshot.get("stages", {})
        if isinstance(stages, Mapping):
            for name, stage in stages.items():
                if not isinstance(stage, Mapping):
                    continue
                self.stage_seconds[str(name)] = self.stage_seconds.get(
                    str(name), 0.0
                ) + float(stage.get("seconds", 0.0))  # type: ignore[arg-type]
                self.stage_calls[str(name)] = self.stage_calls.get(
                    str(name), 0
                ) + int(stage.get("calls", 0))  # type: ignore[call-overload]
        events_seen = snapshot.get("events_seen", snapshot.get("events", 0))
        self.events_seen += int(events_seen)  # type: ignore[call-overload]
        return self

    @classmethod
    def from_snapshot(
        cls, snapshot: Mapping[str, object]
    ) -> "Instrumentation":
        """Rebuild a sink from a :meth:`snapshot` payload."""
        instrumentation = cls()
        instrumentation.merge_snapshot(snapshot)
        return instrumentation

    def reset(self) -> None:
        """Drop all recorded state (probes stay attached)."""
        self.counters.clear()
        self.stage_seconds.clear()
        self.stage_calls.clear()
        self.events.clear()
        self.events_seen = 0

    def __repr__(self) -> str:
        return (
            f"Instrumentation(counters={len(self.counters)}, "
            f"stages={len(self.stage_seconds)}, events={len(self.events)})"
        )
