"""Observability seam for the decision pipeline.

Every replay — offline (:class:`~repro.sim.simulator.Simulator`) or
online (:class:`~repro.core.proxy.BypassYieldProxy`) — can emit a
structured decision trace without touching policy code: counters,
per-query :class:`DecisionEvent` records, and named stage timers, with
optional stdlib ``logging`` integration and pluggable :class:`Probe`
hooks for external collectors.

The instrumentation object is deliberately cheap: callers hold ``None``
by default and pay nothing; when one is attached, recording a decision
is a dataclass construction plus a few dict updates.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    Deque,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)


@dataclass(frozen=True)
class DecisionEvent:
    """One per-query load/serve/bypass decision, fully accounted.

    Attributes:
        index: Query number (the paper's notion of time).
        source: ``"simulator"`` or ``"proxy"`` — which driver emitted it.
        policy: Name of the deciding policy.
        granularity: ``"table"`` or ``"column"``.
        served_from_cache: True when the query was evaluated locally.
        loads: Object ids fetched into the cache for this query.
        evictions: Object ids evicted to make room.
        load_bytes: WAN bytes spent on loads for this query.
        bypass_bytes: WAN bytes spent bypassing this query (0 on hits).
        weighted_cost: Link-weighted WAN cost this query added.
        sql: Query text (may be empty for synthetic traces).
    """

    index: int
    source: str
    policy: str
    granularity: str
    served_from_cache: bool
    loads: Tuple[str, ...]
    evictions: Tuple[str, ...]
    load_bytes: int
    bypass_bytes: int
    weighted_cost: float
    sql: str = ""

    @property
    def wan_bytes(self) -> int:
        """Total WAN bytes this query added (loads + bypass)."""
        return self.load_bytes + self.bypass_bytes


class Probe:
    """Pluggable hook receiving instrumentation callbacks.

    Subclass and override any subset; the base methods are no-ops so a
    probe only pays for what it watches.
    """

    def on_decision(self, event: DecisionEvent) -> None:
        """Called once per query decision."""

    def on_counter(self, name: str, value: float) -> None:
        """Called on every counter increment with the increment value."""

    def on_stage(self, name: str, seconds: float) -> None:
        """Called when a timed stage finishes."""


class Instrumentation:
    """Counters, decision events, and stage timers for one run.

    Args:
        logger: A :class:`logging.Logger`, a logger name, or None.  When
            set, decisions are logged at DEBUG level.
        max_events: Bound on retained decision events (None keeps all;
            0 disables event retention while keeping counters/timers).
    """

    def __init__(
        self,
        logger: Union[logging.Logger, str, None] = None,
        max_events: Optional[int] = None,
    ) -> None:
        if isinstance(logger, str):
            logger = logging.getLogger(logger)
        self.logger = logger
        self.counters: Dict[str, float] = {}
        self.stage_seconds: Dict[str, float] = {}
        self.stage_calls: Dict[str, int] = {}
        self.probes: List[Probe] = []
        self._max_events = max_events
        self.events: Deque[DecisionEvent] = deque(
            maxlen=max_events if max_events not in (None, 0) else None
        )
        self._retain_events = max_events != 0

    # -- probes ---------------------------------------------------------

    def add_probe(self, probe: Probe) -> Probe:
        """Attach a probe; returns it for chaining."""
        self.probes.append(probe)
        return probe

    # -- counters -------------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Increment counter ``name`` by ``value``."""
        self.counters[name] = self.counters.get(name, 0.0) + value
        for probe in self.probes:
            probe.on_counter(name, value)

    # -- stage timers ---------------------------------------------------

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a named stage; accumulates across calls."""
        start = time.perf_counter()  # repro-lint: allow[RPR002] timers are observability-only
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start  # repro-lint: allow[RPR002] timers are observability-only
            self.stage_seconds[name] = (
                self.stage_seconds.get(name, 0.0) + elapsed
            )
            self.stage_calls[name] = self.stage_calls.get(name, 0) + 1
            for probe in self.probes:
                probe.on_stage(name, elapsed)

    # -- decision events ------------------------------------------------

    def record_decision(self, event: DecisionEvent) -> None:
        """Record one per-query decision event."""
        if self._retain_events:
            self.events.append(event)
        self.count("decisions")
        if event.served_from_cache:
            self.count("decisions.served")
        else:
            self.count("decisions.bypassed")
        if event.loads:
            self.count("decisions.loads", len(event.loads))
        if event.evictions:
            self.count("decisions.evictions", len(event.evictions))
        self.count("wan.load_bytes", event.load_bytes)
        self.count("wan.bypass_bytes", event.bypass_bytes)
        self.count("wan.weighted_cost", event.weighted_cost)
        if self.logger is not None:
            self.logger.debug(
                "q%d [%s/%s] %s loads=%s evictions=%s wan=%d",
                event.index,
                event.source,
                event.policy,
                "serve" if event.served_from_cache else "bypass",
                list(event.loads),
                list(event.evictions),
                event.wan_bytes,
            )
        for probe in self.probes:
            probe.on_decision(event)

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Structured view of everything recorded so far."""
        return {
            "counters": dict(self.counters),
            "stages": {
                name: {
                    "seconds": seconds,
                    "calls": self.stage_calls.get(name, 0),
                }
                for name, seconds in self.stage_seconds.items()
            },
            "events": len(self.events),
        }

    def reset(self) -> None:
        """Drop all recorded state (probes stay attached)."""
        self.counters.clear()
        self.stage_seconds.clear()
        self.stage_calls.clear()
        self.events.clear()

    def __repr__(self) -> str:
        return (
            f"Instrumentation(counters={len(self.counters)}, "
            f"stages={len(self.stage_seconds)}, events={len(self.events)})"
        )
