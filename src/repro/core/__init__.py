"""The paper's contribution: the bypass-yield caching framework.

* :mod:`repro.core.yield_model` — yield attribution rules (Section 6).
* :mod:`repro.core.metrics` — BYHR / BYU (Section 3, eqs. 1-2).
* :mod:`repro.core.ski_rental` — the rent-to-buy primitive (Section 5.1).
* :mod:`repro.core.object_cache` — bypass-object caching ``A_obj``
  (rent-to-buy admission + Landlord eviction).
* :mod:`repro.core.policies` — Rate-Profile (Section 4), OnlineBY and
  SpaceEffBY (Section 5), and every baseline (GDS, GDSP, LRU, LFU,
  LRU-K, static, semantic, no-cache).
* :mod:`repro.core.pipeline` — the decision pipeline shared by the
  offline simulator and the online proxy (query construction, cost
  views, WAN accounting).
* :mod:`repro.core.instrumentation` — counters, decision events, stage
  timers, and pluggable probes for every replay.
* :mod:`repro.core.units` — typed byte/cost units (``RawBytes``,
  ``WeightedCost``, ``Yield``) and the sanctioned ``weigh`` /
  ``unweigh`` conversions, checked by ``repro-lint``.
"""

from repro.core.analysis import (
    CompetitiveReport,
    measure_competitive_ratio,
    offline_single_object_opt,
    opt_lower_bound,
)
from repro.core.events import CacheQuery, Decision, ObjectRequest
from repro.core.instrumentation import (
    DecisionEvent,
    Instrumentation,
    Probe,
)
from repro.core.pipeline import (
    DecisionPipeline,
    ObjectCatalog,
    QueryAccounting,
    shared_catalog,
)
from repro.core.metrics import (
    WorkloadProfiler,
    byte_yield_hit_rate,
    byte_yield_utility,
)
from repro.core.object_cache import BypassObjectCache, ObjectOutcome
from repro.core.proxy import BypassYieldProxy, ProxyResponse
from repro.core.policies import (
    POLICY_REGISTRY,
    CachePolicy,
    GDSPopularityPolicy,
    GreedyDualSizePolicy,
    LFFPolicy,
    LFUPolicy,
    LRUKPolicy,
    LRUPolicy,
    NoCachePolicy,
    OnlineBYPolicy,
    RateProfilePolicy,
    SemanticCachePolicy,
    SpaceEffBYPolicy,
    StaticPolicy,
    accumulate_object_yields,
    choose_static_objects,
    make_policy,
)
from repro.core.ski_rental import SkiRental
from repro.core.store import CacheStore
from repro.core.units import (
    UNIT_WEIGHT,
    ZERO_BYTES,
    ZERO_COST,
    ZERO_YIELD,
    RawBytes,
    WeightedCost,
    Yield,
    per_byte_weight,
    raw_bytes,
    unweigh,
    weigh,
)
from repro.core.yield_model import (
    attribute_yield_columns,
    attribute_yield_tables,
    referenced_columns,
    referenced_object_ids,
)

__all__ = [
    "BypassObjectCache",
    "BypassYieldProxy",
    "CompetitiveReport",
    "CachePolicy",
    "CacheQuery",
    "CacheStore",
    "Decision",
    "DecisionEvent",
    "DecisionPipeline",
    "GDSPopularityPolicy",
    "GreedyDualSizePolicy",
    "LFFPolicy",
    "LFUPolicy",
    "LRUKPolicy",
    "LRUPolicy",
    "Instrumentation",
    "NoCachePolicy",
    "ObjectCatalog",
    "ObjectOutcome",
    "ObjectRequest",
    "OnlineBYPolicy",
    "POLICY_REGISTRY",
    "Probe",
    "ProxyResponse",
    "QueryAccounting",
    "RateProfilePolicy",
    "RawBytes",
    "SemanticCachePolicy",
    "SkiRental",
    "SpaceEffBYPolicy",
    "StaticPolicy",
    "UNIT_WEIGHT",
    "WeightedCost",
    "WorkloadProfiler",
    "Yield",
    "ZERO_BYTES",
    "ZERO_COST",
    "ZERO_YIELD",
    "accumulate_object_yields",
    "attribute_yield_columns",
    "attribute_yield_tables",
    "byte_yield_hit_rate",
    "byte_yield_utility",
    "choose_static_objects",
    "make_policy",
    "measure_competitive_ratio",
    "offline_single_object_opt",
    "opt_lower_bound",
    "per_byte_weight",
    "raw_bytes",
    "referenced_columns",
    "referenced_object_ids",
    "shared_catalog",
    "unweigh",
    "weigh",
]
