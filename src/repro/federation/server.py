"""A federation member: one database server wrapping a catalog + engine."""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import FederationError
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.executor import QueryEngine, ResultSet


class DatabaseServer:
    """One site of the federation.

    Servers evaluate (sub)queries locally — this is the "move the program
    to the data" benefit the bypass path preserves — and serve whole
    objects (tables or columns) to the cache on load requests.
    """

    def __init__(self, name: str, catalog: Catalog) -> None:
        if not name:
            raise FederationError("server name must be non-empty")
        self.name = name
        self.catalog = catalog
        self.engine = QueryEngine(catalog)
        self.queries_executed = 0
        self.bytes_shipped = 0

    def execute(self, sql: str) -> ResultSet:
        """Evaluate a query entirely at this server (the bypass path)."""
        result = self.engine.execute(sql)
        self.queries_executed += 1
        self.bytes_shipped += result.byte_size
        return result

    def record_shipment(self, num_bytes: int, queries: int = 1) -> None:
        """Attribute traffic executed on this server's behalf.

        The mediator calls this when it evaluates a subplan against the
        server's catalog itself, so shipped-byte attribution stays in
        one place regardless of where the evaluation ran.
        """
        self.bytes_shipped += num_bytes
        self.queries_executed += queries

    def object_size(self, object_id: str) -> int:
        """Size in bytes of a cacheable object hosted here."""
        return self.catalog.object_size(object_id)

    def fetch_object(self, object_id: str) -> int:
        """Serve a whole object to the cache; returns bytes shipped.

        The simulator does not copy data (the mediator can already reach
        the shared catalog for evaluation); what matters for the economy
        is the exact byte count, which this returns.
        """
        size = self.catalog.object_size(object_id)
        self.bytes_shipped += size
        return size

    def hosts_table(self, table_name: str) -> bool:
        return self.catalog.has_table(table_name)

    def objects(self, granularity: str) -> List[str]:
        """All cacheable object ids at ``granularity`` hosted here."""
        return self.catalog.objects(granularity)

    def __repr__(self) -> str:
        return (
            f"DatabaseServer({self.name!r}, "
            f"tables={self.catalog.table_names()})"
        )
