"""The mediation middleware: query routing, decomposition, evaluation.

The mediator is where the cache sits (it is collocated with the clients,
so mediator<->client traffic is LAN and free).  It offers the primitives
the bypass-yield cache needs:

* :meth:`Mediator.evaluate` — parse/plan/execute a query against the
  *global* federation view, producing the result (whose byte size is the
  query's yield) without charging any WAN traffic.  Used when the query
  is served from cached objects.
* :meth:`Mediator.bypass` — ship the query to the owning server(s),
  charging the WAN for every result byte.  Cross-server joins are
  decomposed into per-server subqueries whose partial results are shipped
  to the mediator and joined there ("hybrid shipping").

:mod:`repro.service` puts a serving front on this middleware: the
asyncio :class:`~repro.service.server.MediatorService` multiplexes many
tenants' query streams onto one shared cache over one federation, with
the per-federation decision lock serializing policy state and admission
control shedding overload to the bypass arm (DESIGN.md §15).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.units import (
    ZERO_BYTES,
    ZERO_COST,
    RawBytes,
    WeightedCost,
    raw_bytes,
)
from repro.errors import BackendUnavailable, FederationError
from repro.federation.federation import Federation
from repro.federation.network import TrafficLedger
from repro.obs.spans import (
    STAGE_BYPASS,
    STAGE_EXECUTE,
    STAGE_LOAD,
    STAGE_PLAN,
    Tracer,
    live_tracer,
)

if TYPE_CHECKING:  # avoids a repro.core <-> repro.federation cycle
    from repro.core.instrumentation import Instrumentation
    from repro.faults.clock import FaultClock
    from repro.faults.transport import ResilientTransport
from repro.sqlengine.ast_nodes import ColumnRef, column_refs
from repro.sqlengine.executor import ResultSet, execute_plan
from repro.sqlengine.planner import (
    JoinEdge,
    OutputColumn,
    QueryPlan,
    ScopeEntry,
)
from repro.sqlengine.shapes import ShapePlanner


@dataclass
class FederatedResult:
    """Outcome of a bypass execution.

    Attributes:
        result: The final materialized result (yield = ``byte_size``).
        per_server_bytes: WAN bytes each server shipped for this query.
        wan_bytes: Total WAN bytes (sum over servers).
        wan_cost: Link-weighted WAN cost.
    """

    result: ResultSet
    per_server_bytes: Dict[str, int] = field(default_factory=dict)
    wan_bytes: RawBytes = ZERO_BYTES
    wan_cost: WeightedCost = ZERO_COST


class Mediator:
    """Query front-end for one federation.

    Args:
        federation: The servers to mediate for.
        plan_cache_size: Bound on memoized query plans.  Scientific
            workloads rarely repeat exact SQL (Section 6.1), so the
            cache mostly helps the prepare/evaluate double-call per
            query; a bound keeps long-lived mediators from growing
            without limit.
        instrumentation: Optional observability sink
            (:class:`~repro.core.instrumentation.Instrumentation`);
            every WAN-cost-bearing operation (plans, loads, bypasses,
            cache hits) increments its counters.
        transport: Optional resilient transport
            (:class:`~repro.faults.transport.ResilientTransport`).
            When set, every WAN transfer goes through its retry/breaker
            machinery: retry waste lands in the ledger via
            :meth:`TrafficLedger.record_retry`, and transfers that
            exhaust their retries raise
            :class:`~repro.errors.BackendUnavailable`.  Without it the
            network is the paper's always-up model, byte for byte.
        clock: Logical clock the transport reads
            (:class:`~repro.faults.clock.FaultClock`).  Defaults to a
            fresh clock pinned at tick 0; drivers that replay traces
            advance it once per query.
        tracer: Optional span tracer.  Plan-cache lookups, SQL
            execution (with vectorized-vs-row-path scan attribution),
            object loads, and bypass shipments each get a span; a
            disabled tracer is normalized to ``None``.
    """

    def __init__(
        self,
        federation: Federation,
        plan_cache_size: int = 4096,
        instrumentation: Optional["Instrumentation"] = None,
        transport: Optional["ResilientTransport"] = None,
        clock: Optional["FaultClock"] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if plan_cache_size <= 0:
            raise FederationError("plan_cache_size must be positive")
        self.federation = federation
        self._lookup = federation.schema_lookup()
        self.ledger = TrafficLedger()
        self.instrumentation = instrumentation
        self.transport = transport
        if clock is None and transport is not None:
            from repro.faults.clock import FaultClock as _FaultClock

            clock = _FaultClock()
        self.clock = clock
        self.tracer = live_tracer(tracer)
        self._plan_cache: "OrderedDict[str, QueryPlan]" = OrderedDict()
        self._plan_cache_size = plan_cache_size
        self._shapes = ShapePlanner(self._lookup)

    def _count(self, name: str, value: float = 1.0) -> None:
        if self.instrumentation is not None:
            self.instrumentation.count(name, value)

    def _tick(self) -> int:
        return self.clock.tick if self.clock is not None else 0

    def _ship(
        self, server_name: str, num_bytes: int, operation: str, object_id: str = ""
    ) -> float:
        """Push ``num_bytes`` through the transport; returns the cost
        multiplier of the successful attempt.

        Retry waste is charged to the ledger immediately — those bytes
        crossed the WAN whether or not the transfer ultimately lands.
        Raises :class:`BackendUnavailable` when the transfer exhausts
        its retries or the breaker refuses it.
        """
        assert self.transport is not None
        weight = self.federation.network.link(server_name).weight
        outcome = self.transport.send(
            server_name, num_bytes, self._tick(), weight
        )
        if outcome.wasted_bytes:
            self.ledger.record_retry(
                server_name, outcome.wasted_bytes, outcome.wasted_cost
            )
            self._count("mediator.retry_bytes", outcome.wasted_bytes)
        if outcome.retries:
            self._count("mediator.retries", outcome.retries)
        if not outcome.ok:
            raise BackendUnavailable(
                server_name,
                operation=operation,
                object_id=object_id,
                attempts=outcome.attempts,
            )
        return outcome.cost_multiplier

    def plan(self, sql: str) -> QueryPlan:
        """Parse and plan against the global federation schema (cached).

        Two cache levels: an exact-SQL LRU (helps the prepare/evaluate
        double-call per query) over a shape-keyed template cache
        (:class:`~repro.sqlengine.shapes.ShapePlanner`), which makes
        planning sublinear in trace length on template-heavy workloads
        where exact SQL almost never repeats.
        """
        tracer = self.tracer
        span = tracer.start(STAGE_PLAN) if tracer is not None else None
        cached = self._plan_cache.get(sql)
        if cached is None:
            shape_hits_before = self._shapes.shape_hits
            cached = self._shapes.plan(sql)
            self._plan_cache[sql] = cached
            if len(self._plan_cache) > self._plan_cache_size:
                self._plan_cache.popitem(last=False)
            self._count("mediator.plan_misses")
            cache_level = (
                "shape"
                if self._shapes.shape_hits > shape_hits_before
                else "miss"
            )
        else:
            self._plan_cache.move_to_end(sql)
            self._count("mediator.plan_hits")
            cache_level = "exact"
        if tracer is not None and span is not None:
            tracer.finish(span, cache=cache_level)
        return cached

    def evaluate(self, sql: str, plan: Optional[QueryPlan] = None) -> ResultSet:
        """Execute the query on the global view with no WAN accounting.

        This is the data path for cache-served queries: the yield must be
        computed (it is shipped to the client over the LAN) but no WAN
        bytes move.
        """
        if plan is None:
            plan = self.plan(sql)
        tracer = self.tracer
        if tracer is None:
            return execute_plan(plan, self.federation)
        from repro.sqlengine.executor import set_scan_observer

        scans = {"index": 0, "vectorized": 0, "rowpath": 0}

        def observe(table_name: str, path: str) -> None:
            scans[path] += 1

        span = tracer.start(STAGE_EXECUTE)
        previous = set_scan_observer(observe)
        try:
            result = execute_plan(plan, self.federation)
        finally:
            set_scan_observer(previous)
        tracer.finish(
            span,
            yield_bytes=result.byte_size,
            index_scans=scans["index"],
            vectorized_scans=scans["vectorized"],
            rowpath_scans=scans["rowpath"],
        )
        return result

    def servers_for_plan(self, plan: QueryPlan) -> List[str]:
        """Names of the distinct servers a plan's tables live on."""
        names: List[str] = []
        for entry in plan.scope:
            server = self.federation.server_for_table(entry.table_name)
            if server.name not in names:
                names.append(server.name)
        return names

    def bypass(
        self,
        sql: str,
        plan: Optional[QueryPlan] = None,
        result: Optional[ResultSet] = None,
    ) -> FederatedResult:
        """Ship the query past the cache, charging the WAN.

        A single-server query runs entirely at that server; the WAN
        carries exactly the result bytes.  A cross-server query is
        decomposed: each server evaluates its local portion (filters and
        local joins applied — the data-reduction benefit) and ships the
        partial result; the mediator joins the partials.
        """
        if plan is None:
            plan = self.plan(sql)
        tracer = self.tracer
        span = (
            tracer.start(STAGE_BYPASS) if tracer is not None else None
        )
        try:
            outcome = self._bypass_inner(sql, plan, result)
        except BackendUnavailable:
            if tracer is not None and span is not None:
                tracer.finish(span, unavailable=True)
            raise
        if tracer is not None and span is not None:
            tracer.finish(
                span,
                bytes_moved=int(outcome.wan_bytes),
                servers=len(outcome.per_server_bytes),
            )
        return outcome

    def _bypass_inner(
        self,
        sql: str,
        plan: QueryPlan,
        result: Optional[ResultSet],
    ) -> FederatedResult:
        servers = self.servers_for_plan(plan)
        if result is None:
            result = execute_plan(plan, self.federation)

        per_server: Dict[str, int] = {}
        if len(servers) == 1:
            per_server[servers[0]] = result.byte_size
        elif any(entry.join_kind == "left" for entry in plan.scope):
            raise FederationError(
                "cross-server LEFT JOIN decomposition is not supported; "
                "host the preserved and nullable sides on one server"
            )
        else:
            for name in servers:
                per_server[name] = self._subquery_bytes(plan, name)

        multipliers: Dict[str, float] = {}
        if self.transport is not None:
            for name, num_bytes in per_server.items():
                try:
                    multipliers[name] = self._ship(name, num_bytes, "bypass")
                except BackendUnavailable:
                    # Partials already shipped by earlier servers were
                    # discarded: real WAN traffic that bought nothing.
                    for done, factor in multipliers.items():
                        shipped = per_server[done]
                        waste = self.federation.network.cost(done, shipped)
                        self.ledger.record_retry(
                            done, shipped, WeightedCost(waste * factor)
                        )
                        self._count("mediator.retry_bytes", shipped)
                    raise

        wan_bytes = ZERO_BYTES
        wan_cost = ZERO_COST
        for name, num_bytes in per_server.items():
            cost = self.federation.network.cost(name, num_bytes)
            if multipliers.get(name, 1.0) != 1.0:
                cost = WeightedCost(cost * multipliers[name])
            self.ledger.record_bypass(name, num_bytes, cost)
            wan_bytes = RawBytes(wan_bytes + num_bytes)
            wan_cost = WeightedCost(wan_cost + cost)
        self._count("mediator.bypasses")
        self._count("mediator.bypass_bytes", wan_bytes)
        self._count("mediator.bypass_cost", wan_cost)
        return FederatedResult(
            result=result,
            per_server_bytes=per_server,
            wan_bytes=wan_bytes,
            wan_cost=wan_cost,
        )

    def load_object(self, object_id: str) -> Tuple[RawBytes, WeightedCost]:
        """Fetch a whole object into the cache; returns (bytes, cost)."""
        tracer = self.tracer
        server = self.federation.server_for_object(object_id)
        span = None
        if tracer is not None:
            span = tracer.start(
                STAGE_LOAD, object=object_id, server=server.name
            )
        try:
            size = raw_bytes(server.fetch_object(object_id))
            cost = self.federation.network.cost(server.name, size)
            if self.transport is not None:
                multiplier = self._ship(
                    server.name, size, "load", object_id
                )
                if multiplier != 1.0:
                    cost = WeightedCost(cost * multiplier)
        except BackendUnavailable:
            if tracer is not None and span is not None:
                tracer.finish(span, unavailable=True)
            raise
        self.ledger.record_load(server.name, size, cost)
        self._count("mediator.loads")
        self._count("mediator.load_bytes", size)
        self._count("mediator.load_cost", cost)
        if tracer is not None and span is not None:
            tracer.finish(span, bytes_moved=int(size))
        return size, cost

    def load_from_peer(
        self, object_id: str, provider: str
    ) -> Tuple[RawBytes, WeightedCost]:
        """Receive a whole object from sibling proxy ``provider``.

        The fleet counterpart of :meth:`load_object`: the bytes arrive
        over the peer link class (``peer_weight`` per byte) and land in
        the ledger's peer counters instead of the WAN load totals —
        a sibling hit is regional traffic, not backend traffic.
        """
        size = raw_bytes(self.federation.object_size(object_id))
        cost = self.federation.network.peer_cost(size)
        self.ledger.record_peer(provider, size, cost)
        self._count("mediator.peer_loads")
        self._count("mediator.peer_bytes", size)
        self._count("mediator.peer_cost", cost)
        return size, cost

    def serve_from_cache(self, result: ResultSet) -> None:
        """Account a cache-served result (LAN only)."""
        self.ledger.record_cache_hit(result.byte_size)
        self._count("mediator.cache_hits")
        self._count("mediator.lan_bytes", result.byte_size)

    # ------------------------------------------------------------------
    # Cross-server decomposition
    # ------------------------------------------------------------------

    def _subquery_bytes(self, plan: QueryPlan, server_name: str) -> int:
        """Bytes server ``server_name`` ships for its part of ``plan``.

        The server evaluates a subplan over its own tables: local
        predicates and same-server join edges apply, and only the columns
        the mediator needs (outputs, residual predicates, cross-server
        join keys) are projected.
        """
        server = self.federation.server(server_name)
        local_entries = [
            entry
            for entry in plan.scope
            if self.federation.server_for_table(entry.table_name).name
            == server_name
        ]
        local_bindings = {entry.binding.lower() for entry in local_entries}

        local_edges: List[JoinEdge] = []
        cross_edges: List[JoinEdge] = []
        for edge in plan.join_edges:
            left_local = edge.left_binding.lower() in local_bindings
            right_local = edge.right_binding.lower() in local_bindings
            if left_local and right_local:
                local_edges.append(edge)
            elif left_local or right_local:
                cross_edges.append(edge)

        needed = self._needed_columns(
            plan, local_bindings, cross_edges
        )
        outputs: List[OutputColumn] = []
        binding_schema = {
            entry.binding.lower(): entry for entry in local_entries
        }
        for binding, column in sorted(needed):
            entry = binding_schema[binding]
            col = entry.schema.column(column)
            outputs.append(
                OutputColumn(
                    name=f"{entry.binding}_{col.name}",
                    expr=ColumnRef(column=col.name, table=entry.binding),
                    width=col.width,
                    source=(entry.table_name, col.name),
                )
            )
        subplan = QueryPlan(
            statement=plan.statement,
            scope=local_entries,
            local_predicates={
                entry.binding: plan.local_predicates.get(entry.binding, [])
                for entry in local_entries
            },
            join_edges=local_edges,
            residual_predicates=[],
            outputs=outputs,
            has_aggregates=False,
        )
        partial = _execute_subplan(subplan, server.catalog)
        server.record_shipment(partial.byte_size)
        return partial.byte_size

    def _needed_columns(
        self,
        plan: QueryPlan,
        local_bindings: Set[str],
        cross_edges: List[JoinEdge],
    ) -> Set[Tuple[str, str]]:
        """(binding, column) pairs the mediator needs from these bindings."""
        bindings = {entry.binding.lower(): entry for entry in plan.scope}

        def owner(ref: ColumnRef) -> Optional[str]:
            if ref.table is not None:
                entry = bindings.get(ref.table.lower())
                return entry.binding.lower() if entry else None
            candidates = [
                entry.binding.lower()
                for entry in plan.scope
                if ref.column in entry.schema
            ]
            return candidates[0] if len(candidates) == 1 else None

        needed: Set[Tuple[str, str]] = set()
        exprs = [out.expr for out in plan.outputs]
        exprs.extend(plan.residual_predicates)
        exprs.extend(plan.group_by)
        if plan.statement.having is not None:
            exprs.append(plan.statement.having)
        for item in plan.statement.order_by:
            exprs.append(item.expr)
        for expr in exprs:
            for ref in column_refs(expr):
                binding = owner(ref)
                if binding in local_bindings:
                    needed.add((binding, ref.column.lower()))
        for edge in cross_edges:
            if edge.left_binding.lower() in local_bindings:
                needed.add(
                    (edge.left_binding.lower(), edge.left_column.lower())
                )
            if edge.right_binding.lower() in local_bindings:
                needed.add(
                    (edge.right_binding.lower(), edge.right_column.lower())
                )
        return needed


def _execute_subplan(subplan: QueryPlan, catalog) -> ResultSet:
    """Run a projection-only subplan (no aggregates/order/limit applied —
    those happen at the mediator after the join)."""
    from repro.sqlengine.executor import (  # local import avoids a cycle
        _join_all,
        _project,
        ResultColumn,
    )

    rows, layout = _join_all(subplan, catalog)
    projected = _project(rows, layout, subplan.outputs)
    columns = [
        ResultColumn(name=out.name, width=out.width, source=out.source)
        for out in subplan.outputs
    ]
    return ResultSet(columns=columns, rows=projected)
