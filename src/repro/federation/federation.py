"""Federation assembly: servers, table routing, and global schema lookup."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.errors import FederationError
from repro.federation.network import NetworkModel
from repro.federation.server import DatabaseServer
from repro.sqlengine.catalog import Catalog
from repro.sqlengine.planner import SchemaLookup
from repro.sqlengine.schema import TableSchema
from repro.sqlengine.storage import Table


class Federation:
    """A SkyQuery-like federation: named servers, each owning tables.

    The federation object doubles as a *global table provider* (``table``
    method) so the mediator can evaluate cross-server joins, and as a
    schema lookup for the planner.
    """

    def __init__(self, network: Optional[NetworkModel] = None) -> None:
        self.network = network if network is not None else NetworkModel()
        self._servers: Dict[str, DatabaseServer] = {}
        self._table_owner: Dict[str, str] = {}

    # -- construction ---------------------------------------------------

    def add_server(
        self, server: DatabaseServer, link_weight: Optional[float] = None
    ) -> None:
        """Register a server; its tables must not collide with existing
        ones (the federation namespace is flat, as in SkyQuery)."""
        if server.name in self._servers:
            raise FederationError(f"server {server.name!r} already exists")
        for table_name in server.catalog.table_names():
            key = table_name.lower()
            if key in self._table_owner:
                owner = self._table_owner[key]
                raise FederationError(
                    f"table {table_name!r} already provided by {owner!r}"
                )
        self._servers[server.name] = server
        for table_name in server.catalog.table_names():
            self._table_owner[table_name.lower()] = server.name
        if link_weight is not None:
            self.network.set_link(server.name, link_weight)

    @classmethod
    def single_site(
        cls, catalog: Catalog, server_name: str = "sdss"
    ) -> "Federation":
        """Convenience: a one-server federation (the paper's trace source
        is the single largest SkyQuery node)."""
        federation = cls()
        federation.add_server(DatabaseServer(server_name, catalog))
        return federation

    # -- lookup ---------------------------------------------------------

    @property
    def servers(self) -> List[DatabaseServer]:
        return list(self._servers.values())

    def server(self, name: str) -> DatabaseServer:
        try:
            return self._servers[name]
        except KeyError:
            raise FederationError(f"no server named {name!r}") from None

    def server_for_table(self, table_name: str) -> DatabaseServer:
        owner = self._table_owner.get(table_name.lower())
        if owner is None:
            raise FederationError(f"no server hosts table {table_name!r}")
        return self._servers[owner]

    def server_for_object(self, object_id: str) -> DatabaseServer:
        table_name, _, _ = object_id.partition(".")
        return self.server_for_table(table_name)

    # -- global table provider / schema lookup ---------------------------

    def table(self, name: str) -> Table:
        """Route a table lookup to its owning server's catalog."""
        return self.server_for_table(name).catalog.table(name)

    def tables(self) -> List[Table]:
        result: List[Table] = []
        for server in self._servers.values():
            result.extend(server.catalog.tables())
        return result

    def schema_lookup(self) -> SchemaLookup:
        tables: Dict[str, TableSchema] = {}
        for server in self._servers.values():
            for table in server.catalog.tables():
                tables[table.name] = table.schema
        return SchemaLookup(tables)

    # -- object metadata --------------------------------------------------

    def object_size(self, object_id: str) -> int:
        """Exact byte size of a cacheable object anywhere in the
        federation."""
        return self.server_for_object(object_id).object_size(object_id)

    def fetch_cost(self, object_id: str) -> float:
        """Weighted WAN cost of loading ``object_id`` into the cache."""
        server = self.server_for_object(object_id)
        size = server.object_size(object_id)
        return self.network.cost(server.name, size)

    def objects(self, granularity: str) -> List[str]:
        """All cacheable object ids at ``granularity`` across servers."""
        ids: List[str] = []
        for server in self._servers.values():
            ids.extend(server.objects(granularity))
        return ids

    def total_database_bytes(self) -> int:
        """Combined size of every table in the federation."""
        return sum(
            server.catalog.total_size_bytes()
            for server in self._servers.values()
        )

    def __repr__(self) -> str:
        return f"Federation(servers={sorted(self._servers)})"
