"""SkyQuery-like federation simulator with exact WAN byte accounting.

* :class:`~repro.federation.server.DatabaseServer` — one site (catalog +
  query engine).
* :class:`~repro.federation.federation.Federation` — server registry,
  table routing, global schema, object-size metadata.
* :class:`~repro.federation.mediator.Mediator` — query front-end where the
  cache sits; evaluates, bypasses (with cross-server decomposition), and
  loads objects while keeping a :class:`~repro.federation.network.
  TrafficLedger`.
* :class:`~repro.federation.network.NetworkModel` — per-server link
  weights for non-uniform networks (drives BYHR vs BYU).
"""

from repro.federation.federation import Federation
from repro.federation.mediator import FederatedResult, Mediator
from repro.federation.network import NetworkLink, NetworkModel, TrafficLedger
from repro.federation.server import DatabaseServer

__all__ = [
    "DatabaseServer",
    "FederatedResult",
    "Federation",
    "Mediator",
    "NetworkLink",
    "NetworkModel",
    "TrafficLedger",
]
