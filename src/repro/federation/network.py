"""Network cost model and traffic accounting.

The bypass-yield economy prices everything in *WAN bytes*: bypass results
shipped from servers to clients (``D_S``), and object loads into the cache
(``D_L``).  Cache-to-client traffic (``D_C``) rides the LAN and is tracked
but never charged (Section 3 of the paper: "The local area network is not
a shared resource...  LAN traffic does not factor into network
citizenship").

Per-server link weights model non-uniform networks: shipping ``b`` bytes
from server ``s`` costs ``b * weight(s)``.  With all weights equal to 1
(the default) costs are plain byte counts and BYHR degenerates to BYU.

Links come in two classes.  ``backend`` links (the default) are the WAN
paths to the federation's database servers.  ``peer`` links model the
regional interconnect between sibling proxies in a sharded fleet: a
cache miss satisfied by a sibling ships over a peer link at
``peer_weight`` per byte instead of paying the full backend fetch.
Peer traffic is accounted separately (:attr:`TrafficLedger.peer_bytes`)
and never counts toward :attr:`TrafficLedger.wan_bytes` — the paper's
network-citizenship quantity stays backend-only.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.units import (
    UNIT_WEIGHT,
    ZERO_BYTES,
    ZERO_COST,
    RawBytes,
    WeightedCost,
    weigh,
)
from repro.errors import FederationError


#: Valid :attr:`NetworkLink.kind` values.
LINK_KINDS = ("backend", "peer")

#: Default cost multiplier for inter-proxy (peer) transfers.  Sibling
#: proxies share a regional network an order of magnitude cheaper than
#: the backend WAN (the LBNL in-network caching measurements).
DEFAULT_PEER_WEIGHT = 0.25


@dataclass(frozen=True)
class NetworkLink:
    """WAN link from one server to the mediator/client site.

    Attributes:
        server: Server name.
        weight: Cost multiplier per byte (relative link expense). A slow
            or congested link has weight > 1.
        kind: ``"backend"`` (server -> proxy WAN path, the default) or
            ``"peer"`` (proxy -> proxy transfer path in a fleet).
    """

    server: str
    weight: float = 1.0
    kind: str = "backend"

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise FederationError(
                f"link weight for {self.server!r} must be positive"
            )
        if self.kind not in LINK_KINDS:
            raise FederationError(
                f"link kind must be one of {LINK_KINDS}, got {self.kind!r}"
            )

    def cost(self, num_bytes: int) -> WeightedCost:
        """Weighted cost of shipping ``num_bytes`` over this link."""
        if num_bytes < 0:
            raise FederationError("cannot ship a negative number of bytes")
        return weigh(num_bytes, self.weight)


class NetworkModel:
    """Registry of per-server WAN links with a default weight.

    Also owns the fleet's single ``peer`` link class: every sibling
    proxy pair shares one ``peer_weight`` multiplier (the regional
    interconnect is symmetric and uniform — per-pair peer weights would
    be a different model, not a different constant).
    """

    def __init__(
        self,
        default_weight: float = 1.0,
        peer_weight: float = DEFAULT_PEER_WEIGHT,
    ) -> None:
        if default_weight <= 0:
            raise FederationError("default link weight must be positive")
        if peer_weight <= 0:
            raise FederationError("peer link weight must be positive")
        self._default_weight = default_weight
        self._peer_weight = peer_weight
        self._links: Dict[str, NetworkLink] = {}

    def set_link(self, server: str, weight: float) -> None:
        self._links[server] = NetworkLink(server=server, weight=weight)

    def link(self, server: str) -> NetworkLink:
        existing = self._links.get(server)
        if existing is not None:
            return existing
        return NetworkLink(server=server, weight=self._default_weight)

    def cost(self, server: str, num_bytes: int) -> WeightedCost:
        """Weighted WAN cost of shipping ``num_bytes`` from ``server``."""
        return self.link(server).cost(num_bytes)

    @property
    def peer_weight(self) -> float:
        """Cost multiplier per byte on sibling-to-sibling transfers."""
        return self._peer_weight

    def set_peer_weight(self, weight: float) -> None:
        if weight <= 0:
            raise FederationError("peer link weight must be positive")
        self._peer_weight = weight

    def peer_link(self, provider: str) -> NetworkLink:
        """The peer-class link from sibling proxy ``provider``."""
        return NetworkLink(
            server=provider, weight=self._peer_weight, kind="peer"
        )

    def peer_cost(self, num_bytes: int) -> WeightedCost:
        """Weighted cost of shipping ``num_bytes`` between siblings."""
        if num_bytes < 0:
            raise FederationError("cannot ship a negative number of bytes")
        return weigh(num_bytes, self._peer_weight)

    @property
    def is_uniform(self) -> bool:
        """True when every registered link shares the default weight."""
        return all(
            link.weight == self._default_weight
            for link in self._links.values()
        )


@dataclass
class TrafficLedger:
    """Running totals of the network flows of Figure 1.

    All quantities are raw bytes; weighted costs are produced on demand by
    combining with a :class:`NetworkModel`.

    Attributes:
        bypass_bytes: ``D_S`` — results shipped server -> client past the
            cache.
        load_bytes: ``D_L`` — object bytes fetched into the cache.
        cache_bytes: ``D_C`` — result bytes served out of the cache (LAN).
        retry_bytes: WAN bytes shipped by failed transfer attempts and
            then retransmitted — real traffic that bought nothing.
        peer_bytes: Object bytes received from sibling proxies over
            peer links (fleet cooperation) — regional traffic, tracked
            but excluded from :attr:`wan_bytes`.
    """

    bypass_bytes: RawBytes = ZERO_BYTES
    load_bytes: RawBytes = ZERO_BYTES
    cache_bytes: RawBytes = ZERO_BYTES
    retry_bytes: RawBytes = ZERO_BYTES
    peer_bytes: RawBytes = ZERO_BYTES
    bypass_cost: WeightedCost = ZERO_COST
    load_cost: WeightedCost = ZERO_COST
    retry_cost: WeightedCost = ZERO_COST
    peer_cost: WeightedCost = ZERO_COST
    per_server_bypass: Dict[str, int] = field(default_factory=dict)
    per_server_load: Dict[str, int] = field(default_factory=dict)
    per_server_retry: Dict[str, int] = field(default_factory=dict)
    per_server_peer: Dict[str, int] = field(default_factory=dict)

    def record_bypass(
        self, server: str, num_bytes: int, cost: Optional[float] = None
    ) -> None:
        """Account a bypass query result shipped from ``server``."""
        if num_bytes < 0:
            raise FederationError("bypass bytes must be non-negative")
        charged = (
            weigh(num_bytes, UNIT_WEIGHT)
            if cost is None
            else WeightedCost(cost)
        )
        self.bypass_bytes = RawBytes(self.bypass_bytes + num_bytes)
        self.bypass_cost = WeightedCost(self.bypass_cost + charged)
        self.per_server_bypass[server] = (
            self.per_server_bypass.get(server, 0) + num_bytes
        )

    def record_load(
        self, server: str, num_bytes: int, cost: Optional[float] = None
    ) -> None:
        """Account an object load from ``server`` into the cache."""
        if num_bytes < 0:
            raise FederationError("load bytes must be non-negative")
        charged = (
            weigh(num_bytes, UNIT_WEIGHT)
            if cost is None
            else WeightedCost(cost)
        )
        self.load_bytes = RawBytes(self.load_bytes + num_bytes)
        self.load_cost = WeightedCost(self.load_cost + charged)
        self.per_server_load[server] = (
            self.per_server_load.get(server, 0) + num_bytes
        )

    def record_cache_hit(self, num_bytes: int) -> None:
        """Account result bytes served from the cache over the LAN."""
        if num_bytes < 0:
            raise FederationError("cache bytes must be non-negative")
        self.cache_bytes = RawBytes(self.cache_bytes + num_bytes)

    def record_retry(
        self, server: str, num_bytes: int, cost: Optional[float] = None
    ) -> None:
        """Account bytes burned by failed transfer attempts to ``server``.

        Retransmitted payloads crossed the WAN like any other traffic;
        they count toward the totals the paper minimizes even though
        the application never saw them.
        """
        if num_bytes < 0:
            raise FederationError("retry bytes must be non-negative")
        charged = (
            weigh(num_bytes, UNIT_WEIGHT)
            if cost is None
            else WeightedCost(cost)
        )
        self.retry_bytes = RawBytes(self.retry_bytes + num_bytes)
        self.retry_cost = WeightedCost(self.retry_cost + charged)
        self.per_server_retry[server] = (
            self.per_server_retry.get(server, 0) + num_bytes
        )

    def record_peer(
        self, provider: str, num_bytes: int, cost: Optional[float] = None
    ) -> None:
        """Account object bytes received from sibling proxy ``provider``.

        Peer transfers ride the fleet's regional interconnect, not the
        backend WAN: they are tracked (and priced at the peer weight
        when no explicit cost is given) but never added to
        :attr:`wan_bytes` — replacing a backend load with a peer
        transfer is exactly how a cooperative fleet reduces the total
        the paper minimizes.
        """
        if num_bytes < 0:
            raise FederationError("peer bytes must be non-negative")
        charged = (
            weigh(num_bytes, UNIT_WEIGHT)
            if cost is None
            else WeightedCost(cost)
        )
        self.peer_bytes = RawBytes(self.peer_bytes + num_bytes)
        self.peer_cost = WeightedCost(self.peer_cost + charged)
        self.per_server_peer[provider] = (
            self.per_server_peer.get(provider, 0) + num_bytes
        )

    @property
    def wan_bytes(self) -> RawBytes:
        """Total WAN traffic: the quantity the paper minimizes.

        Retransmitted bytes are WAN traffic too — a lossy network makes
        every policy look worse, which is exactly the point of the
        resilience experiments.
        """
        return RawBytes(self.bypass_bytes + self.load_bytes + self.retry_bytes)

    @property
    def wan_cost(self) -> WeightedCost:
        """Total weighted WAN cost (equals :attr:`wan_bytes` on uniform
        networks)."""
        return WeightedCost(self.bypass_cost + self.load_cost + self.retry_cost)

    @property
    def application_bytes(self) -> int:
        """``D_A = D_S + D_C`` — bytes the client application received,
        identical across caching configurations for the same workload."""
        return self.bypass_bytes + self.cache_bytes

    def snapshot(self) -> "TrafficLedger":
        """An independent copy of the current totals."""
        return TrafficLedger(
            bypass_bytes=self.bypass_bytes,
            load_bytes=self.load_bytes,
            cache_bytes=self.cache_bytes,
            retry_bytes=self.retry_bytes,
            peer_bytes=self.peer_bytes,
            bypass_cost=self.bypass_cost,
            load_cost=self.load_cost,
            retry_cost=self.retry_cost,
            peer_cost=self.peer_cost,
            per_server_bypass=dict(self.per_server_bypass),
            per_server_load=dict(self.per_server_load),
            per_server_retry=dict(self.per_server_retry),
            per_server_peer=dict(self.per_server_peer),
        )

    def restore(self, snapshot: "TrafficLedger") -> None:
        """Roll totals back to a previously captured :meth:`snapshot`.

        The sanctioned way for drivers (e.g. trace preparation's trial
        replay) to undo traffic they never meant to charge.
        """
        self.bypass_bytes = snapshot.bypass_bytes
        self.load_bytes = snapshot.load_bytes
        self.cache_bytes = snapshot.cache_bytes
        self.retry_bytes = snapshot.retry_bytes
        self.peer_bytes = snapshot.peer_bytes
        self.bypass_cost = snapshot.bypass_cost
        self.load_cost = snapshot.load_cost
        self.retry_cost = snapshot.retry_cost
        self.peer_cost = snapshot.peer_cost
        self.per_server_bypass = dict(snapshot.per_server_bypass)
        self.per_server_load = dict(snapshot.per_server_load)
        self.per_server_retry = dict(snapshot.per_server_retry)
        self.per_server_peer = dict(snapshot.per_server_peer)

    def reset(self) -> None:
        self.bypass_bytes = ZERO_BYTES
        self.load_bytes = ZERO_BYTES
        self.cache_bytes = ZERO_BYTES
        self.retry_bytes = ZERO_BYTES
        self.peer_bytes = ZERO_BYTES
        self.bypass_cost = ZERO_COST
        self.load_cost = ZERO_COST
        self.retry_cost = ZERO_COST
        self.peer_cost = ZERO_COST
        self.per_server_bypass.clear()
        self.per_server_load.clear()
        self.per_server_retry.clear()
        self.per_server_peer.clear()
