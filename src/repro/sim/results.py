"""Simulation result containers: cost breakdowns and time series."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:
    from repro.core.events import Decision
    from repro.core.instrumentation import DecisionEvent
    from repro.core.pipeline import QueryAccounting, ResolvedQuery


@dataclass
class CostBreakdown:
    """The Tables 1-2 decomposition of WAN traffic.

    Attributes:
        bypass_bytes: Results shipped past the cache ("Bypass Cost").
        load_bytes: Object loads into the cache ("Fetch Cost").
        retry_bytes: Bytes burned by failed transfer attempts and
            discarded partials (0 on fault-free runs).
        peer_bytes: Object bytes supplied by sibling fleet shards over
            peer links (0 outside cooperative fleet runs).  Regional
            traffic — tracked here, excluded from :attr:`total_bytes`,
            which stays the backend-WAN quantity the paper minimizes.
    """

    bypass_bytes: float = 0.0
    load_bytes: float = 0.0
    retry_bytes: float = 0.0
    peer_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.bypass_bytes + self.load_bytes + self.retry_bytes

    def charge(self, accounting: "QueryAccounting") -> None:
        """Accumulate one query's WAN charges into the breakdown.

        The only sanctioned mutation point: drivers must route per-query
        byte totals through here rather than writing the fields ad hoc
        (``repro-lint`` RPR004 enforces this).
        """
        self.bypass_bytes += accounting.bypass_bytes
        self.load_bytes += accounting.load_bytes
        self.retry_bytes += accounting.retry_bytes
        self.peer_bytes += accounting.peer_bytes

    def as_gb(self, bytes_per_gb: float = 1e9) -> Dict[str, float]:
        """The table row, scaled to GB-like units for presentation."""
        return {
            "bypass": self.bypass_bytes / bytes_per_gb,
            "fetch": self.load_bytes / bytes_per_gb,
            "retry": self.retry_bytes / bytes_per_gb,
            "peer": self.peer_bytes / bytes_per_gb,
            "total": self.total_bytes / bytes_per_gb,
        }


@dataclass
class SimulationResult:
    """Outcome of running one policy over one prepared trace.

    Attributes:
        policy_name: Algorithm identifier.
        granularity: ``"table"`` or ``"column"``.
        capacity_bytes: Cache size used.
        queries: Number of queries simulated.
        breakdown: Bypass/fetch/total WAN bytes.
        weighted_cost: Link-weighted WAN cost (equals total bytes on
            uniform networks).
        cumulative_bytes: Cumulative WAN bytes after each recorded query
            — the Figures 7-8 series.
        series_stride: Query distance between consecutive points of
            ``cumulative_bytes`` (1 when every query is recorded; > 1
            under sampled recording).
        served_queries: Queries served from cache.
        loads: Number of object loads.
        evictions: Number of evictions.
        retries: Transfer attempts beyond the first across the whole
            run (0 on fault-free runs).
        failed_loads: Loads that exhausted their retries and were
            rolled back out of the cache.
        partial_queries: Queries answered with partial results because
            some backends were dark.
        unavailable_queries: Queries that could not be answered at all
            (every path dark, nothing resident).
        peer_hits: Object loads satisfied by a sibling fleet shard over
            a peer link instead of the backend (0 outside cooperative
            fleet runs); the bytes live in ``breakdown.peer_bytes``.
        sequence_bytes: The no-cache cost of the same trace (context for
            ratios).
        worker_pid: Process id that produced this result when it came
            from a parallel runner (None for in-process runs).
        telemetry: The worker's
            :meth:`~repro.core.instrumentation.Instrumentation.snapshot`
            when the run executed in a parallel worker (None for
            in-process runs, whose events flow into the caller's sink
            directly).  Parents merge these in deterministic task order
            via ``Instrumentation.merge_snapshot``.
    """

    policy_name: str
    granularity: str
    capacity_bytes: int
    queries: int = 0
    breakdown: CostBreakdown = field(default_factory=CostBreakdown)
    weighted_cost: float = 0.0
    cumulative_bytes: List[float] = field(default_factory=list)
    series_stride: int = 1
    served_queries: int = 0
    loads: int = 0
    evictions: int = 0
    retries: int = 0
    failed_loads: int = 0
    partial_queries: int = 0
    unavailable_queries: int = 0
    peer_hits: int = 0
    sequence_bytes: float = 0.0
    worker_pid: Optional[int] = None
    telemetry: Optional[Dict[str, object]] = None

    @property
    def total_bytes(self) -> float:
        return self.breakdown.total_bytes

    @property
    def hit_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.served_queries / self.queries

    @property
    def availability(self) -> float:
        """Fraction of queries that got an answer (full or partial)."""
        if self.queries == 0:
            return 1.0
        return 1.0 - self.unavailable_queries / self.queries

    @property
    def savings_factor(self) -> float:
        """How many times cheaper than running without a cache."""
        if self.total_bytes == 0:
            return float("inf")
        return self.sequence_bytes / self.total_bytes

    def charge(
        self,
        accounting: "QueryAccounting",
        decision: "Decision",
        peer_hits: int = 0,
    ) -> None:
        """Accumulate one (decision, accounting) pair into the result.

        Byte totals land in the breakdown, the weighted cost and the
        load/eviction/hit counters on the result itself — keeping every
        per-query write inside the accounting classes (RPR004).
        ``peer_hits`` counts this query's loads that a sibling fleet
        shard supplied (cooperative replays only).
        """
        self.breakdown.charge(accounting)
        self.weighted_cost += accounting.weighted_cost
        self.loads += len(decision.loads)
        self.evictions += len(decision.evictions)
        self.peer_hits += peer_hits
        if decision.served_from_cache:
            self.served_queries += 1

    def charge_resolved(self, resolved: "ResolvedQuery") -> None:
        """Accumulate one fault-aware :class:`ResolvedQuery`.

        The sanctioned mutation point for the resilient replay loop
        (RPR004): hit/availability counters follow the query's actual
        ``outcome`` — a serve degraded to "unavailable" by a dark
        backend is not a hit, whatever the policy intended.
        """
        self.breakdown.charge(resolved.accounting)
        self.weighted_cost += resolved.accounting.weighted_cost
        self.loads += len(resolved.decision.loads) - len(resolved.failed_loads)
        self.evictions += len(resolved.decision.evictions)
        self.retries += resolved.retries
        self.failed_loads += len(resolved.failed_loads)
        if resolved.outcome == "served":
            self.served_queries += 1
        elif resolved.outcome == "partial":
            self.partial_queries += 1
        elif resolved.outcome == "unavailable":
            self.unavailable_queries += 1

    def charge_event(self, event: "DecisionEvent") -> None:
        """Accumulate one persisted :class:`DecisionEvent`.

        The trace-replay path (``repro-report`` rebuilding a result
        from a JSONL trace) goes through here, keeping RPR004's
        single-mutation-point discipline.  The event stores only the
        *total* weighted cost, so it is charged as load cost with zero
        bypass cost — the breakdown's weighted split is not
        reconstructable from a trace, but every total is exact.
        """
        from repro.core.pipeline import QueryAccounting
        from repro.core.units import (
            ZERO_COST,
            RawBytes,
            WeightedCost,
        )

        accounting = QueryAccounting(
            load_bytes=RawBytes(event.load_bytes),
            load_cost=WeightedCost(event.weighted_cost),
            bypass_bytes=RawBytes(event.bypass_bytes),
            bypass_cost=ZERO_COST,
            retry_bytes=RawBytes(event.retry_bytes),
            retry_cost=ZERO_COST,
            peer_bytes=RawBytes(event.peer_bytes),
            peer_cost=ZERO_COST,
        )
        self.breakdown.charge(accounting)
        self.weighted_cost += event.weighted_cost
        self.loads += len(event.loads)
        self.evictions += len(event.evictions)
        self.retries += event.retries
        if event.outcome == "partial":
            self.partial_queries += 1
        elif event.outcome == "unavailable":
            self.unavailable_queries += 1
        if event.outcome == "served" or (
            not event.outcome and event.served_from_cache
        ):
            self.served_queries += 1
        self.queries += 1

    def summary(self) -> Dict[str, object]:
        return {
            "policy": self.policy_name,
            "granularity": self.granularity,
            "capacity_bytes": self.capacity_bytes,
            "queries": self.queries,
            "bypass_bytes": self.breakdown.bypass_bytes,
            "fetch_bytes": self.breakdown.load_bytes,
            "total_bytes": self.total_bytes,
            "hit_rate": round(self.hit_rate, 4),
            "loads": self.loads,
            "evictions": self.evictions,
            "retries": self.retries,
            "retry_bytes": self.breakdown.retry_bytes,
            "failed_loads": self.failed_loads,
            "peer_hits": self.peer_hits,
            "peer_bytes": self.breakdown.peer_bytes,
            "availability": round(self.availability, 4),
            "savings_factor": (
                round(self.savings_factor, 2)
                if self.total_bytes
                else float("inf")
            ),
        }


@dataclass
class SweepPoint:
    """One (cache size, policy) cell of a Figures 9-10 sweep."""

    policy_name: str
    cache_fraction: float
    capacity_bytes: int
    total_bytes: float


@dataclass
class SweepResult:
    """A full cache-size sweep across policies."""

    granularity: str
    database_bytes: int
    points: List[SweepPoint] = field(default_factory=list)

    def series(self, policy_name: str) -> List[SweepPoint]:
        return [
            point
            for point in self.points
            if point.policy_name == policy_name
        ]

    def policies(self) -> List[str]:
        names: List[str] = []
        for point in self.points:
            if point.policy_name not in names:
                names.append(point.policy_name)
        return names
