"""Trace-driven cache simulation.

The simulator replays a prepared trace against one policy and charges
WAN traffic exactly as Section 3 prescribes: bypassed queries cost their
(decomposed) result bytes, loads cost whole-object bytes, cache-served
queries cost nothing on the WAN.  Object sizes and link weights come
from the federation.

Query construction and cost accounting live in
:class:`~repro.core.pipeline.DecisionPipeline`, shared verbatim with the
online :class:`~repro.core.proxy.BypassYieldProxy` — the two paths agree
byte-for-byte by construction (and by test).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Union

# Re-exported for backwards compatibility: ObjectCatalog historically
# lived here before the pipeline layer was extracted.
from repro.core.events import CacheQuery
from repro.core.instrumentation import Instrumentation
from repro.core.pipeline import (
    CompiledTrace,
    DecisionPipeline,
    ObjectCatalog,
)
from repro.core.policies.base import CachePolicy
from repro.federation.federation import Federation
from repro.obs.spans import (
    STAGE_ACCOUNT,
    STAGE_DECIDE,
    STAGE_QUERY,
    Tracer,
)
from repro.sim.results import SimulationResult
from repro.sim.streaming import SampledSeries
from repro.workload.stream import QueryStream
from repro.workload.trace import PreparedQuery, PreparedTrace

if TYPE_CHECKING:
    from repro.faults.transport import ResilientTransport

__all__ = ["ObjectCatalog", "Simulator", "SAMPLED_SERIES_POINTS"]

#: Target number of retained points when ``record_series="sampled"``.
SAMPLED_SERIES_POINTS = 512


class Simulator:
    """Replays prepared traces through cache policies."""

    def __init__(
        self,
        federation: Federation,
        granularity: str = "table",
        policy_sees_weights: bool = True,
        pipeline: Optional[DecisionPipeline] = None,
        instrumentation: Optional[Instrumentation] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        """Args:
            federation: Object metadata, link weights, servers.
            granularity: ``"table"`` or ``"column"``.
            policy_sees_weights: When True (default) policies receive
                link-weighted fetch costs (the BYHR view); when False
                they see raw byte sizes (the BYU simplification).  WAN
                charges are always weighted — the flag only changes what
                the policy knows, enabling the BYHR-vs-BYU ablation.
            pipeline: Optional pre-built decision pipeline (shared with
                other drivers); by default one is constructed over the
                federation's shared object catalog.
            instrumentation: Optional observability sink; per-query
                decision events and stage counters are emitted through
                it (ignored when ``pipeline`` is supplied — the
                pipeline's own sink wins).
            tracer: Optional span tracer threaded into the decision
                path (also ignored when ``pipeline`` is supplied).
                Disabled tracers are normalized away; the replay loops
                pay one ``is None`` test per query when tracing is off.
        """
        if pipeline is None:
            pipeline = DecisionPipeline(
                federation,
                granularity,
                policy_sees_weights,
                instrumentation=instrumentation,
                tracer=tracer,
            )
        self.pipeline = pipeline
        self.federation = pipeline.federation
        self.granularity = pipeline.granularity
        self.policy_sees_weights = pipeline.policy_sees_weights
        self.objects = pipeline.catalog

    @property
    def instrumentation(self) -> Optional[Instrumentation]:
        return self.pipeline.instrumentation

    def build_query(self, prepared: PreparedQuery, index: int) -> CacheQuery:
        """Convert one prepared query into the policy-facing event."""
        return self.pipeline.query_from_prepared(prepared, index)

    def run(
        self,
        trace: Union[PreparedTrace, CompiledTrace],
        policy: CachePolicy,
        record_series: Union[bool, str] = True,
        transport: Optional["ResilientTransport"] = None,
        partial_results: bool = False,
    ) -> SimulationResult:
        """Replay ``trace`` through ``policy``, returning full accounting.

        Args:
            trace: The prepared workload, or a stream already compiled
                by :meth:`DecisionPipeline.compile_trace` under this
                simulator's (granularity, cost view).  Prepared traces
                are compiled on entry — memoized, so repeat runs over
                the same trace skip query construction entirely.
            policy: Any cache policy.
            record_series: ``True`` records the cumulative WAN series
                after every query (the Figures 7-8 data); ``False``
                records none; ``"sampled"`` records roughly
                :data:`SAMPLED_SERIES_POINTS` evenly-strided points
                (plus the final one), bounding memory on long traces.
                The stride is stored as ``result.series_stride``.
            transport: Optional resilient transport
                (:class:`~repro.faults.transport.ResilientTransport`)
                placing the WAN behind retries, breakers, and a fault
                schedule.  ``None`` (the default) replays the paper's
                always-up network on the exact fault-free loop; the
                transport should be freshly built per run — breakers
                carry state across queries.
            partial_results: Under faults, answer multi-server queries
                from the reachable servers only instead of failing the
                whole query (degraded-mode serving).
        """
        pipeline = self.pipeline
        compiled = pipeline.compile_trace(trace)
        total = len(compiled.events)
        stride = 1
        if record_series == "sampled":
            stride = max(1, total // SAMPLED_SERIES_POINTS)
        result = SimulationResult(
            policy_name=policy.name,
            granularity=self.granularity,
            capacity_bytes=policy.capacity_bytes,
            sequence_bytes=float(compiled.sequence_bytes),
            series_stride=stride,
        )
        breakdown = result.breakdown
        cumulative = result.cumulative_bytes
        # Hoisted so the replay loop pays nothing per query when no
        # instrumentation sink is attached.
        emit = pipeline.instrumentation is not None
        tracer = pipeline.tracer

        if transport is not None:
            return self._run_resilient(
                compiled, policy, result, transport, partial_results,
                record_series, stride,
            )

        for index, event in enumerate(compiled.events):
            query = event.query
            if tracer is not None:
                root = tracer.start(
                    STAGE_QUERY, index=index, tenant=event.tenant
                )
                with tracer.span(STAGE_DECIDE, index=index):
                    decision = policy.process(query)
                with tracer.span(STAGE_ACCOUNT, index=index):
                    accounting = pipeline.account(
                        decision,
                        bypass_bytes=event.bypass_bytes,
                        servers=event.servers,
                    )
                tracer.finish(
                    root,
                    bytes_moved=int(accounting.wan_bytes),
                    served=decision.served_from_cache,
                )
            else:
                decision = policy.process(query)
                accounting = pipeline.account(
                    decision,
                    bypass_bytes=event.bypass_bytes,
                    servers=event.servers,
                )

            result.charge(accounting, decision)
            if record_series and (
                (index + 1) % stride == 0 or index == total - 1
            ):
                cumulative.append(breakdown.total_bytes)  # repro-lint: allow[RPR007] classic recorder; scale path samples via SampledSeries
            if emit:
                pipeline.emit_decision(
                    index=index,
                    source="simulator",
                    policy_name=policy.name,
                    decision=decision,
                    accounting=accounting,
                    sql=query.sql,
                    yield_bytes=query.yield_bytes,
                    tenant=event.tenant,
                )

        result.queries = total
        return result

    def run_stream(
        self,
        stream: Union[QueryStream, Iterable[PreparedQuery]],
        policy: CachePolicy,
        record_series: Union[bool, str] = "sampled",
        transport: Optional["ResilientTransport"] = None,
        partial_results: bool = False,
        sequence_bytes: Optional[int] = None,
    ) -> SimulationResult:
        """Replay a prepared-query stream without materializing it.

        The constant-memory counterpart of :meth:`run`: queries are
        lowered one at a time through
        :meth:`~repro.core.pipeline.DecisionPipeline.iter_compiled`,
        charged incrementally into the result, and dropped.  Nothing —
        not the trace, not the compiled events, not the full series —
        is ever held in full, so peak memory is independent of trace
        length.  Decisions and WAN totals are byte-identical to
        :meth:`run` over the same queries (the streaming golden-
        equivalence suite pins this down); only the cumulative series
        may differ in resolution, because a stream of unknown length
        records through an adaptive-stride :class:`SampledSeries`
        (``record_series="sampled"``, the default at scale) instead of
        a fixed precomputed stride.

        Args:
            stream: A re-iterable :class:`~repro.workload.stream.QueryStream`
                or any iterable of prepared queries (single-pass
                iterators are fine — this method takes one pass).
            policy: Any cache policy.
            record_series: ``"sampled"`` (default) keeps a bounded
                adaptive-stride series; ``True`` records every query
                (memory grows with trace length — small traces only);
                ``False`` records none.
            transport: Optional resilient transport, as in :meth:`run`.
            partial_results: As in :meth:`run`.
            sequence_bytes: The trace's no-cache total, when known up
                front (stream metadata supplies it for chunked traces);
                otherwise it is accumulated during the pass.
        """
        pipeline = self.pipeline
        known_sequence: Optional[int] = sequence_bytes
        if known_sequence is None and isinstance(stream, QueryStream):
            known_sequence = stream.sequence_bytes
        result = SimulationResult(
            policy_name=policy.name,
            granularity=self.granularity,
            capacity_bytes=policy.capacity_bytes,
        )
        breakdown = result.breakdown
        cumulative = result.cumulative_bytes
        series = SampledSeries() if record_series == "sampled" else None
        emit = pipeline.instrumentation is not None
        tracer = pipeline.tracer
        total = 0
        accumulated_sequence = 0

        for index, event in enumerate(pipeline.iter_compiled(stream)):
            accumulated_sequence += event.bypass_bytes
            root = None
            if tracer is not None:
                root = tracer.start(
                    STAGE_QUERY, index=index, tenant=event.tenant
                )
            if transport is None:
                if tracer is not None:
                    with tracer.span(STAGE_DECIDE, index=index):
                        decision = policy.process(event.query)
                    with tracer.span(STAGE_ACCOUNT, index=index):
                        accounting = pipeline.account(
                            decision,
                            bypass_bytes=event.bypass_bytes,
                            servers=event.servers,
                        )
                else:
                    decision = policy.process(event.query)
                    accounting = pipeline.account(
                        decision,
                        bypass_bytes=event.bypass_bytes,
                        servers=event.servers,
                    )
                result.charge(accounting, decision)
                retries = 0
                outcome = ""
            else:
                resolved = pipeline.resolve(
                    event,
                    policy,
                    transport,
                    tick=index,
                    partial_results=partial_results,
                )
                result.charge_resolved(resolved)
                decision = resolved.decision
                accounting = resolved.accounting
                retries = resolved.retries
                outcome = resolved.outcome
            if tracer is not None and root is not None:
                tracer.finish(
                    root,
                    bytes_moved=int(accounting.wan_bytes),
                    served=decision.served_from_cache,
                )
            if series is not None:
                series.observe(breakdown.total_bytes)
            elif record_series is True:
                # Full recording: explicit small-trace opt-in, the
                # stream path's one unbounded structure.
                cumulative.append(breakdown.total_bytes)  # repro-lint: allow[RPR007] classic recorder; scale path samples via SampledSeries
            if emit:
                pipeline.emit_decision(
                    index=index,
                    source="simulator",
                    policy_name=policy.name,
                    decision=decision,
                    accounting=accounting,
                    sql=event.query.sql,
                    yield_bytes=event.query.yield_bytes,
                    retries=retries,
                    outcome=outcome,
                    tenant=event.tenant,
                )
            total += 1

        result.queries = total
        result.sequence_bytes = float(
            known_sequence
            if known_sequence is not None
            else accumulated_sequence
        )
        if series is not None:
            result.cumulative_bytes = series.points()
            result.series_stride = series.stride
        return result

    def _run_resilient(
        self,
        compiled: CompiledTrace,
        policy: CachePolicy,
        result: SimulationResult,
        transport: "ResilientTransport",
        partial_results: bool,
        record_series: Union[bool, str],
        stride: int,
    ) -> SimulationResult:
        """The fault-aware replay loop (one logical tick per query).

        Kept separate from the fault-free loop so the latter stays
        byte-identical to the seed behavior; with an empty schedule
        this loop converges to the same totals anyway (the no-fault
        identity), which the golden-equivalence suite pins down.
        """
        pipeline = self.pipeline
        total = len(compiled.events)
        breakdown = result.breakdown
        cumulative = result.cumulative_bytes
        emit = pipeline.instrumentation is not None
        tracer = pipeline.tracer

        for index, event in enumerate(compiled.events):
            root = None
            if tracer is not None:
                root = tracer.start(
                    STAGE_QUERY, index=index, tenant=event.tenant
                )
            resolved = pipeline.resolve(
                event,
                policy,
                transport,
                tick=index,
                partial_results=partial_results,
            )
            if tracer is not None and root is not None:
                tracer.finish(
                    root,
                    bytes_moved=int(resolved.accounting.wan_bytes),
                    outcome=resolved.outcome,
                )
            result.charge_resolved(resolved)
            if record_series and (
                (index + 1) % stride == 0 or index == total - 1
            ):
                cumulative.append(breakdown.total_bytes)  # repro-lint: allow[RPR007] classic recorder; scale path samples via SampledSeries
            if emit:
                pipeline.emit_decision(
                    index=index,
                    source="simulator",
                    policy_name=policy.name,
                    decision=resolved.decision,
                    accounting=resolved.accounting,
                    sql=event.query.sql,
                    yield_bytes=event.query.yield_bytes,
                    retries=resolved.retries,
                    outcome=resolved.outcome,
                    tenant=event.tenant,
                )

        result.queries = total
        return result
