"""Trace-driven cache simulation.

The simulator replays a prepared trace against one policy and charges
WAN traffic exactly as Section 3 prescribes: bypassed queries cost their
(decomposed) result bytes, loads cost whole-object bytes, cache-served
queries cost nothing on the WAN.  Object sizes and link weights come
from the federation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.events import CacheQuery, ObjectRequest
from repro.core.policies.base import CachePolicy
from repro.errors import CacheError
from repro.federation.federation import Federation
from repro.sim.results import CostBreakdown, SimulationResult
from repro.workload.trace import PreparedQuery, PreparedTrace


class ObjectCatalog:
    """Memoized object metadata (sizes, fetch costs, owning servers)."""

    def __init__(self, federation: Federation) -> None:
        self._federation = federation
        self._sizes: Dict[str, int] = {}
        self._costs: Dict[str, float] = {}
        self._servers: Dict[str, str] = {}

    def size(self, object_id: str) -> int:
        cached = self._sizes.get(object_id)
        if cached is None:
            cached = self._federation.object_size(object_id)
            self._sizes[object_id] = cached
        return cached

    def fetch_cost(self, object_id: str) -> float:
        cached = self._costs.get(object_id)
        if cached is None:
            cached = self._federation.fetch_cost(object_id)
            self._costs[object_id] = cached
        return cached

    def server(self, object_id: str) -> str:
        cached = self._servers.get(object_id)
        if cached is None:
            cached = self._federation.server_for_object(object_id).name
            self._servers[object_id] = cached
        return cached


class Simulator:
    """Replays prepared traces through cache policies."""

    def __init__(
        self,
        federation: Federation,
        granularity: str = "table",
        policy_sees_weights: bool = True,
    ) -> None:
        """Args:
            federation: Object metadata, link weights, servers.
            granularity: ``"table"`` or ``"column"``.
            policy_sees_weights: When True (default) policies receive
                link-weighted fetch costs (the BYHR view); when False
                they see raw byte sizes (the BYU simplification).  WAN
                charges are always weighted — the flag only changes what
                the policy knows, enabling the BYHR-vs-BYU ablation.
        """
        if granularity not in ("table", "column"):
            raise CacheError(
                f"granularity must be 'table' or 'column', "
                f"got {granularity!r}"
            )
        self.federation = federation
        self.granularity = granularity
        self.policy_sees_weights = policy_sees_weights
        self.objects = ObjectCatalog(federation)

    def build_query(self, prepared: PreparedQuery, index: int) -> CacheQuery:
        """Convert one prepared query into the policy-facing event."""
        requests: List[ObjectRequest] = []
        for object_id, share in sorted(
            prepared.object_yields(self.granularity).items()
        ):
            size = self.objects.size(object_id)
            if self.policy_sees_weights:
                # BYHR view: both the load price and the per-query
                # savings are expressed in link-weighted cost units, so
                # an object behind an expensive link is *more* valuable
                # to cache (eq. 1's f factor), not less.
                fetch_cost = self.objects.fetch_cost(object_id)
                weight = fetch_cost / size
                shown_yield = share * weight
            else:
                fetch_cost = float(size)
                shown_yield = share
            requests.append(
                ObjectRequest(
                    object_id=object_id,
                    size=size,
                    fetch_cost=fetch_cost,
                    yield_bytes=shown_yield,
                )
            )
        return CacheQuery(
            index=index,
            yield_bytes=prepared.yield_bytes,
            bypass_bytes=prepared.bypass_bytes,
            objects=tuple(requests),
            sql=prepared.sql,
        )

    def run(
        self,
        trace: PreparedTrace,
        policy: CachePolicy,
        record_series: bool = True,
    ) -> SimulationResult:
        """Replay ``trace`` through ``policy``, returning full accounting.
        """
        result = SimulationResult(
            policy_name=policy.name,
            granularity=self.granularity,
            capacity_bytes=policy.capacity_bytes,
            sequence_bytes=float(trace.sequence_bytes),
        )
        breakdown = result.breakdown
        weighted = 0.0
        cumulative: List[float] = []

        for index, prepared in enumerate(trace):
            query = self.build_query(prepared, index)
            decision = policy.process(query)

            for object_id in decision.loads:
                size = self.objects.size(object_id)
                breakdown.load_bytes += size
                weighted += self.objects.fetch_cost(object_id)
            result.loads += len(decision.loads)
            result.evictions += len(decision.evictions)

            if decision.served_from_cache:
                result.served_queries += 1
            else:
                breakdown.bypass_bytes += prepared.bypass_bytes
                weighted += self._bypass_cost(prepared)
            if record_series:
                cumulative.append(breakdown.total_bytes)

        result.queries = len(trace)
        result.weighted_cost = weighted
        result.cumulative_bytes = cumulative
        return result

    def _bypass_cost(self, prepared: PreparedQuery) -> float:
        """Link-weighted bypass cost of one query."""
        if not prepared.servers:
            return float(prepared.bypass_bytes)
        if len(prepared.servers) == 1:
            return self.federation.network.cost(
                prepared.servers[0], prepared.bypass_bytes
            )
        # Multi-server: weight by the mean of the involved links (the
        # prepared trace stores only the total decomposed bytes).
        weights = [
            self.federation.network.link(server).weight
            for server in prepared.servers
        ]
        mean_weight = sum(weights) / len(weights)
        return prepared.bypass_bytes * mean_weight
