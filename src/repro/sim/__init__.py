"""Trace-driven simulation and experiment orchestration.

* :class:`~repro.sim.simulator.Simulator` — replay a prepared trace
  through one policy with exact WAN accounting (a thin driver over
  :class:`~repro.core.pipeline.DecisionPipeline`).
* :mod:`repro.sim.runner` — policy comparisons and cache-size sweeps,
  optionally fanned out over worker processes.
* :mod:`repro.sim.multi` — fleet simulation: independent caches by
  default, cooperative consistent-hash sharding via
  ``simulate_fleet(cooperative=True)`` (see :mod:`repro.fleet`).
* :mod:`repro.sim.results` — cost breakdowns, series, sweep containers.
* :mod:`repro.sim.reporting` — plain-text tables, ASCII charts, and
  instrumentation rendering.
"""

from repro.sim.multi import ClientSite, FleetResult, simulate_fleet
from repro.sim.results import (
    CostBreakdown,
    SimulationResult,
    SweepPoint,
    SweepResult,
)
from repro.sim.runner import (
    DEFAULT_POLICIES,
    build_fleet,
    build_policy,
    compare_policies,
    run_single,
    run_sweep,
    sweep_cache_sizes,
)
from repro.sim.simulator import ObjectCatalog, Simulator

__all__ = [
    "ClientSite",
    "CostBreakdown",
    "FleetResult",
    "DEFAULT_POLICIES",
    "ObjectCatalog",
    "SimulationResult",
    "Simulator",
    "SweepPoint",
    "SweepResult",
    "build_fleet",
    "build_policy",
    "compare_policies",
    "run_single",
    "run_sweep",
    "simulate_fleet",
    "sweep_cache_sizes",
]
