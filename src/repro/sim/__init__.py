"""Trace-driven simulation and experiment orchestration.

* :class:`~repro.sim.simulator.Simulator` — replay a prepared trace
  through one policy with exact WAN accounting.
* :mod:`repro.sim.runner` — policy comparisons and cache-size sweeps.
* :mod:`repro.sim.results` — cost breakdowns, series, sweep containers.
* :mod:`repro.sim.reporting` — plain-text tables and ASCII charts.
"""

from repro.sim.multi import ClientSite, FleetResult, simulate_fleet
from repro.sim.results import (
    CostBreakdown,
    SimulationResult,
    SweepPoint,
    SweepResult,
)
from repro.sim.runner import (
    DEFAULT_POLICIES,
    build_policy,
    compare_policies,
    run_single,
    sweep_cache_sizes,
)
from repro.sim.simulator import ObjectCatalog, Simulator

__all__ = [
    "ClientSite",
    "CostBreakdown",
    "FleetResult",
    "DEFAULT_POLICIES",
    "ObjectCatalog",
    "SimulationResult",
    "Simulator",
    "SweepPoint",
    "SweepResult",
    "build_policy",
    "compare_policies",
    "run_single",
    "simulate_fleet",
    "sweep_cache_sizes",
]
