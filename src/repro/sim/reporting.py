"""Plain-text rendering of experiment output: tables and ASCII charts.

The benchmark harness prints the same rows and series the paper's tables
and figures report; these helpers keep that presentation consistent.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.instrumentation import DecisionEvent, Instrumentation
from repro.sim.results import SimulationResult, SweepResult


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned plain-text table."""
    columns = [list(map(_cell, column)) for column in zip(*rows)] if rows \
        else [[] for _ in headers]
    widths = []
    for i, header in enumerate(headers):
        cells = columns[i] if i < len(columns) else []
        widths.append(max([len(header)] + [len(c) for c in cells]))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                _cell(value).ljust(width)
                for value, width in zip(row, widths)
            )
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0.00"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def _faulted(results: Dict[str, SimulationResult]) -> bool:
    """Whether any result shows fault-layer activity worth a column."""
    return any(
        result.retries
        or result.breakdown.retry_bytes
        or result.unavailable_queries
        or result.partial_queries
        for result in results.values()
    )


def breakdown_rows(
    results: Dict[str, SimulationResult],
    unit: float = 1e6,
) -> List[List[object]]:
    """Rows of a Tables 1-2 style cost breakdown (unit default: MB).

    On faulted runs two extra columns appear: retry waste (the WAN
    bytes failed attempts burned — part of the total) and availability.
    Fault-free runs keep the paper's exact three-column table.
    """
    show_faults = _faulted(results)
    rows: List[List[object]] = []
    for name, result in results.items():
        row: List[object] = [
            name,
            result.breakdown.bypass_bytes / unit,
            result.breakdown.load_bytes / unit,
        ]
        if show_faults:
            row.append(result.breakdown.retry_bytes / unit)
        row.append(result.total_bytes / unit)
        if show_faults:
            row.append(f"{result.availability:.4f}")
        rows.append(row)
    return rows


def format_breakdown(
    results: Dict[str, SimulationResult],
    title: str,
    sequence_bytes: float,
    unit: float = 1e6,
    unit_name: str = "MB",
) -> str:
    """The full Tables 1-2 presentation."""
    header = (
        f"{title}\n"
        f"sequence cost: {sequence_bytes / unit:.2f} {unit_name}"
    )
    headers = ["algorithm", f"bypass ({unit_name})", f"fetch ({unit_name})"]
    if _faulted(results):
        headers += [f"retry ({unit_name})", f"total ({unit_name})", "avail"]
    else:
        headers.append(f"total ({unit_name})")
    table = format_table(headers, breakdown_rows(results, unit))
    return f"{header}\n{table}"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 68,
    height: int = 18,
    log_y: bool = False,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series as an ASCII scatter/line chart.

    Each series is drawn with its own marker character; the legend maps
    markers back to names.  ``log_y`` reproduces the paper's log-scale
    cost axes (Figures 9-10).
    """
    markers = "*o+x#@%&$~"
    points_by_marker: List[Tuple[str, str, Sequence[Tuple[float, float]]]] = []
    for i, (name, points) in enumerate(series.items()):
        points_by_marker.append((markers[i % len(markers)], name, points))

    all_points = [
        point for _, _, points in points_by_marker for point in points
    ]
    if not all_points:
        return f"{title}\n(no data)"

    xs = [p[0] for p in all_points]
    ys = [p[1] for p in all_points]

    def transform_y(value: float) -> float:
        if log_y:
            return math.log10(max(value, 1e-12))
        return value

    x_min, x_max = min(xs), max(xs)
    y_values = [transform_y(y) for y in ys]
    y_min, y_max = min(y_values), max(y_values)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, _, points in points_by_marker:
        for x, y in points:
            col = int((x - x_min) / x_span * (width - 1))
            row = int((transform_y(y) - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = f"{10 ** y_max:.3g}" if log_y else f"{y_max:.3g}"
    bottom_label = f"{10 ** y_min:.3g}" if log_y else f"{y_min:.3g}"
    lines.append(f"{y_label} (top={top_label}, bottom={bottom_label})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:.3g} .. {x_max:.3g}")
    legend = ", ".join(
        f"{marker}={name}" for marker, name, _ in points_by_marker
    )
    lines.append(f" legend: {legend}")
    return "\n".join(lines)


def format_instrumentation(
    instrumentation: Instrumentation, title: str = "instrumentation"
) -> str:
    """Counters and stage timers of one run as aligned tables."""
    sections: List[str] = []
    counter_rows = [
        [name, value]
        for name, value in sorted(instrumentation.counters.items())
    ]
    sections.append(
        format_table(
            ["counter", "value"], counter_rows, title=title
        )
    )
    if instrumentation.stage_seconds:
        stage_rows = [
            [
                name,
                instrumentation.stage_calls.get(name, 0),
                seconds * 1e3,
                (
                    seconds * 1e3
                    / max(1, instrumentation.stage_calls.get(name, 0))
                ),
            ]
            for name, seconds in sorted(
                instrumentation.stage_seconds.items()
            )
        ]
        sections.append(
            format_table(
                ["stage", "calls", "total (ms)", "mean (ms)"],
                stage_rows,
                title="stage timers",
            )
        )
    return "\n\n".join(sections)


def format_decision_trace(
    events: Iterable[DecisionEvent],
    limit: int = 20,
    title: str = "decision trace",
) -> str:
    """The per-query decision log as a table (most recent ``limit``)."""
    tail = (
        list(events)[-limit:] if limit else list(events)  # repro-lint: allow[RPR007] report rendering reads the caller's bounded event buffer
    )
    rows = [
        [
            event.index,
            event.source,
            event.policy,
            "serve" if event.served_from_cache else "bypass",
            len(event.loads),
            len(event.evictions),
            event.wan_bytes,
            event.weighted_cost,
        ]
        for event in tail
    ]
    return format_table(
        [
            "query", "source", "policy", "decision",
            "loads", "evictions", "wan bytes", "weighted cost",
        ],
        rows,
        title=title,
    )


def sweep_chart(sweep: SweepResult, title: str) -> str:
    """Figures 9-10: total cost vs cache fraction, log-scale y."""
    series: Dict[str, List[Tuple[float, float]]] = {}
    for name in sweep.policies():
        series[name] = [
            (point.cache_fraction * 100, max(point.total_bytes, 1.0))
            for point in sweep.series(name)
        ]
    return ascii_chart(
        series,
        log_y=True,
        title=title,
        x_label="% cache (of DB size)",
        y_label="total WAN bytes, log scale",
    )


def cost_series_chart(
    results: Dict[str, SimulationResult],
    title: str,
    stride: int = 0,
) -> str:
    """Figures 7-8: cumulative WAN bytes vs query number.

    Honors each result's ``series_stride`` so sampled series keep their
    true query-number axis.
    """
    series: Dict[str, List[Tuple[float, float]]] = {}
    for name, result in results.items():
        values = result.cumulative_bytes
        if not values:
            continue
        recorded = result.series_stride or 1
        step = stride or max(1, len(values) // 60)
        series[name] = [
            (float(i * recorded), values[i])
            for i in range(0, len(values), step)
        ]
    return ascii_chart(
        series,
        log_y=False,
        title=title,
        x_label="query number",
        y_label="cumulative WAN bytes",
    )
