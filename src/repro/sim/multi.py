"""Multi-client federation simulation.

Section 3: "Because each cache acts independently, the global problem
can be reduced to individual caches."  This module models a federation
serving many client sites, each with its own mediator cache and its own
workload, and reports the *global* WAN totals — the network-citizenship
quantity the paper optimizes.

Because the caches are independent, the fleet is embarrassingly
parallel: ``simulate_fleet(parallel=True)`` replays each client site in
its own worker process and aggregates identical results in client
order.

``simulate_fleet(cooperative=True)`` instead treats the client sites as
*shards* of one cooperative cache hierarchy (``repro.fleet``): a local
miss consults the consistent-hash ring owner before paying backend
cost, and sibling hits ship over cheap peer links.  With one shard (or
``cooperative=False``) the two modes are byte-identical.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.instrumentation import Instrumentation
from repro.core.pipeline import CompiledTrace, DecisionPipeline
from repro.core.policies.base import CachePolicy
from repro.core.units import RawBytes, WeightedCost, raw_bytes
from repro.errors import CacheError
from repro.federation.federation import Federation
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator
from repro.workload.trace import PreparedTrace

if TYPE_CHECKING:
    from repro.faults.schedule import FaultSchedule
    from repro.fleet.ring import ConsistentHashRing


@dataclass
class ClientSite:
    """One client community: a workload plus its own cache policy."""

    name: str
    trace: PreparedTrace
    policy: CachePolicy


@dataclass
class FleetResult:
    """Aggregated outcome across every client site.

    Attributes:
        per_client: Each site's individual simulation result.
        total_bytes: Global WAN traffic (the sum — caches independent).
        sequence_bytes: Global traffic had no site cached anything.
    """

    per_client: Dict[str, SimulationResult] = field(default_factory=dict)

    @property
    def total_bytes(self) -> RawBytes:
        """Global WAN bytes, in the typed unit every accounting surface
        uses (per-site totals are integral; the sum is restored to
        :class:`~repro.core.units.RawBytes` rather than left a float).
        """
        return raw_bytes(
            round(sum(r.total_bytes for r in self.per_client.values()))
        )

    @property
    def sequence_bytes(self) -> RawBytes:
        return raw_bytes(
            round(
                sum(r.sequence_bytes for r in self.per_client.values())
            )
        )

    @property
    def savings_factor(self) -> float:
        total = self.total_bytes
        if total == 0:
            return float("inf")
        return self.sequence_bytes / total

    @property
    def mean_hit_rate(self) -> float:
        if not self.per_client:
            return 0.0
        return sum(
            r.hit_rate for r in self.per_client.values()
        ) / len(self.per_client)

    @property
    def weighted_cost(self) -> WeightedCost:
        """Global link-weighted WAN cost across all sites."""
        return WeightedCost(
            sum(r.weighted_cost for r in self.per_client.values())
        )

    @property
    def peer_bytes(self) -> RawBytes:
        """Bytes shipped shard-to-shard over peer links (cooperative
        runs; zero for independent fleets)."""
        return raw_bytes(
            round(
                sum(
                    r.breakdown.peer_bytes
                    for r in self.per_client.values()
                )
            )
        )

    @property
    def peer_hits(self) -> int:
        """Object loads satisfied by a sibling shard."""
        return sum(r.peer_hits for r in self.per_client.values())

    def summary(self) -> Dict[str, object]:
        """Fleet-level aggregation snapshot."""
        return {
            "clients": len(self.per_client),
            "total_bytes": self.total_bytes,
            "sequence_bytes": self.sequence_bytes,
            "weighted_cost": self.weighted_cost,
            "peer_bytes": self.peer_bytes,
            "peer_hits": self.peer_hits,
            "mean_hit_rate": round(self.mean_hit_rate, 4),
            "savings_factor": (
                round(self.savings_factor, 2)
                if self.total_bytes
                else float("inf")
            ),
        }


#: Per-worker shared state for the parallel fleet path.
_FLEET_CONTEXT: Dict[str, object] = {}


def _init_fleet_worker(
    federation: Federation,
    granularity: str,
    policy_sees_weights: bool,
    record_series: Union[bool, str],
) -> None:
    _FLEET_CONTEXT["args"] = (
        federation, granularity, policy_sees_weights, record_series
    )


def _run_fleet_task(
    task: Tuple[str, CompiledTrace, CachePolicy]
) -> SimulationResult:
    _, compiled, policy = task
    federation, granularity, policy_sees_weights, record_series = (
        _FLEET_CONTEXT["args"]
    )
    # Counters-only sink; the snapshot rides home on the result so the
    # parent can aggregate fleet telemetry in client order.
    telemetry = Instrumentation(max_events=0)
    simulator = Simulator(
        federation,
        granularity,
        policy_sees_weights,
        instrumentation=telemetry,
    )
    result = simulator.run(compiled, policy, record_series=record_series)
    result.worker_pid = os.getpid()
    result.telemetry = telemetry.snapshot()
    return result


def simulate_fleet(
    federation: Federation,
    clients: Sequence[ClientSite],
    granularity: str = "table",
    policy_sees_weights: bool = True,
    record_series: Union[bool, str] = False,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    instrumentation: Optional[Instrumentation] = None,
    cooperative: bool = False,
    ring: Optional["ConsistentHashRing"] = None,
    ring_seed: int = 0,
    probe_all_siblings: bool = False,
    faults: Optional["FaultSchedule"] = None,
) -> FleetResult:
    """Run every client's workload through its own cache.

    By default caches are independent (no coordination — out of the
    paper's scope), so the simulation is exact per site and the global
    total is their sum.  With ``parallel=True`` each site replays in a
    separate worker process (falling back to serial when the platform
    cannot spawn a pool); note that the caller's ``client.policy``
    objects are then *not* mutated — per-site state lives in the
    returned results.

    With ``cooperative=True`` the sites become shards of one
    cooperative cache hierarchy (see :mod:`repro.fleet.cooperative`): a
    local miss probes the consistent-hash ``ring`` owner of each missed
    object (every sibling when ``probe_all_siblings``) and sibling hits
    ship over peer links instead of the backend WAN.  Cooperative
    replays are serial — sibling probes read live cache state — and an
    optional ``faults`` schedule keyed by *shard names* darkens
    siblings per tick.  A single-shard cooperative run is byte-identical
    to the independent path (golden equivalence, tested).

    Telemetry is never dropped: parallel workers record counters into
    their own sink and ship the snapshot back on each result, and when
    ``instrumentation`` is supplied those snapshots merge into it in
    client order (serial runs emit into it directly).
    """
    if not clients:
        raise CacheError("simulate_fleet needs at least one client")
    names = [client.name for client in clients]
    if len(set(names)) != len(names):
        raise CacheError("client names must be unique")

    if cooperative:
        # Local import: repro.fleet layers on repro.sim, not the other
        # way around, so the independent path never pays the import.
        from repro.fleet.cooperative import run_cooperative

        cooperative_outcomes = run_cooperative(
            federation,
            clients,
            granularity=granularity,
            policy_sees_weights=policy_sees_weights,
            record_series=record_series,
            instrumentation=instrumentation,
            ring=ring,
            ring_seed=ring_seed,
            probe_all_siblings=probe_all_siblings,
            faults=faults,
        )
        return _aggregate(clients, cooperative_outcomes, instrumentation)

    outcomes: Optional[List[SimulationResult]] = None
    if parallel and len(clients) > 1:
        workers = max_workers or (os.cpu_count() or 1)
        workers = max(1, min(workers, len(clients)))
        if workers > 1:
            # Compile every client's stream once in the parent; workers
            # receive the pickle-cheap compiled form instead of
            # re-attributing yields per site.
            pipeline = DecisionPipeline(
                federation, granularity, policy_sees_weights
            )
            tasks = [
                (
                    client.name,
                    pipeline.compile_trace(client.trace),
                    client.policy,
                )
                for client in clients
            ]
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_fleet_worker,
                    initargs=(
                        federation,
                        granularity,
                        policy_sees_weights,
                        record_series,
                    ),
                ) as pool:
                    outcomes = list(pool.map(_run_fleet_task, tasks))
            except (BrokenProcessPool, pickle.PicklingError, OSError):
                outcomes = None  # fall back to serial below
    if outcomes is None:
        simulator = Simulator(
            federation,
            granularity,
            policy_sees_weights,
            instrumentation=instrumentation,
        )
        outcomes = [
            simulator.run(
                client.trace, client.policy, record_series=record_series
            )
            for client in clients
        ]

    return _aggregate(clients, outcomes, instrumentation)


def _aggregate(
    clients: Sequence[ClientSite],
    outcomes: Sequence[SimulationResult],
    instrumentation: Optional[Instrumentation],
) -> FleetResult:
    """Assemble per-site results into the fleet view, in client order."""
    result = FleetResult()
    for client, outcome in zip(clients, outcomes):
        result.per_client[client.name] = outcome
    if instrumentation is not None:
        for outcome in outcomes:
            if outcome.telemetry is not None:
                instrumentation.merge_snapshot(outcome.telemetry)
        instrumentation.count("fleet.clients", len(clients))
        instrumentation.count("fleet.wan_bytes", result.total_bytes)
    return result
