"""Multi-client federation simulation.

Section 3: "Because each cache acts independently, the global problem
can be reduced to individual caches."  This module models a federation
serving many client sites, each with its own mediator cache and its own
workload, and reports the *global* WAN totals — the network-citizenship
quantity the paper optimizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.policies.base import CachePolicy
from repro.errors import CacheError
from repro.federation.federation import Federation
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator
from repro.workload.trace import PreparedTrace


@dataclass
class ClientSite:
    """One client community: a workload plus its own cache policy."""

    name: str
    trace: PreparedTrace
    policy: CachePolicy


@dataclass
class FleetResult:
    """Aggregated outcome across every client site.

    Attributes:
        per_client: Each site's individual simulation result.
        total_bytes: Global WAN traffic (the sum — caches independent).
        sequence_bytes: Global traffic had no site cached anything.
    """

    per_client: Dict[str, SimulationResult] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return sum(r.total_bytes for r in self.per_client.values())

    @property
    def sequence_bytes(self) -> float:
        return sum(r.sequence_bytes for r in self.per_client.values())

    @property
    def savings_factor(self) -> float:
        total = self.total_bytes
        if total == 0:
            return float("inf")
        return self.sequence_bytes / total

    @property
    def mean_hit_rate(self) -> float:
        if not self.per_client:
            return 0.0
        return sum(
            r.hit_rate for r in self.per_client.values()
        ) / len(self.per_client)


def simulate_fleet(
    federation: Federation,
    clients: Sequence[ClientSite],
    granularity: str = "table",
) -> FleetResult:
    """Run every client's workload through its own cache.

    Caches are independent (no coordination — out of the paper's
    scope), so the simulation is exact per site and the global total is
    their sum.
    """
    if not clients:
        raise CacheError("simulate_fleet needs at least one client")
    names = [client.name for client in clients]
    if len(set(names)) != len(names):
        raise CacheError("client names must be unique")
    simulator = Simulator(federation, granularity)
    result = FleetResult()
    for client in clients:
        result.per_client[client.name] = simulator.run(
            client.trace, client.policy, record_series=False
        )
    return result
