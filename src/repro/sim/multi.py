"""Multi-client federation simulation.

Section 3: "Because each cache acts independently, the global problem
can be reduced to individual caches."  This module models a federation
serving many client sites, each with its own mediator cache and its own
workload, and reports the *global* WAN totals — the network-citizenship
quantity the paper optimizes.

Because the caches are independent, the fleet is embarrassingly
parallel: ``simulate_fleet(parallel=True)`` replays each client site in
its own worker process and aggregates identical results in client
order.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.instrumentation import Instrumentation
from repro.core.pipeline import CompiledTrace, DecisionPipeline
from repro.core.policies.base import CachePolicy
from repro.errors import CacheError
from repro.federation.federation import Federation
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator
from repro.workload.trace import PreparedTrace


@dataclass
class ClientSite:
    """One client community: a workload plus its own cache policy."""

    name: str
    trace: PreparedTrace
    policy: CachePolicy


@dataclass
class FleetResult:
    """Aggregated outcome across every client site.

    Attributes:
        per_client: Each site's individual simulation result.
        total_bytes: Global WAN traffic (the sum — caches independent).
        sequence_bytes: Global traffic had no site cached anything.
    """

    per_client: Dict[str, SimulationResult] = field(default_factory=dict)

    @property
    def total_bytes(self) -> float:
        return sum(r.total_bytes for r in self.per_client.values())

    @property
    def sequence_bytes(self) -> float:
        return sum(r.sequence_bytes for r in self.per_client.values())

    @property
    def savings_factor(self) -> float:
        total = self.total_bytes
        if total == 0:
            return float("inf")
        return self.sequence_bytes / total

    @property
    def mean_hit_rate(self) -> float:
        if not self.per_client:
            return 0.0
        return sum(
            r.hit_rate for r in self.per_client.values()
        ) / len(self.per_client)

    @property
    def weighted_cost(self) -> float:
        """Global link-weighted WAN cost across all sites."""
        return sum(r.weighted_cost for r in self.per_client.values())

    def summary(self) -> Dict[str, object]:
        """Fleet-level aggregation snapshot."""
        return {
            "clients": len(self.per_client),
            "total_bytes": self.total_bytes,
            "sequence_bytes": self.sequence_bytes,
            "weighted_cost": self.weighted_cost,
            "mean_hit_rate": round(self.mean_hit_rate, 4),
            "savings_factor": (
                round(self.savings_factor, 2)
                if self.total_bytes
                else float("inf")
            ),
        }


#: Per-worker shared state for the parallel fleet path.
_FLEET_CONTEXT: Dict[str, object] = {}


def _init_fleet_worker(
    federation: Federation,
    granularity: str,
    policy_sees_weights: bool,
    record_series: Union[bool, str],
) -> None:
    _FLEET_CONTEXT["args"] = (
        federation, granularity, policy_sees_weights, record_series
    )


def _run_fleet_task(
    task: Tuple[str, CompiledTrace, CachePolicy]
) -> SimulationResult:
    _, compiled, policy = task
    federation, granularity, policy_sees_weights, record_series = (
        _FLEET_CONTEXT["args"]
    )
    # Counters-only sink; the snapshot rides home on the result so the
    # parent can aggregate fleet telemetry in client order.
    telemetry = Instrumentation(max_events=0)
    simulator = Simulator(
        federation,
        granularity,
        policy_sees_weights,
        instrumentation=telemetry,
    )
    result = simulator.run(compiled, policy, record_series=record_series)
    result.worker_pid = os.getpid()
    result.telemetry = telemetry.snapshot()
    return result


def simulate_fleet(
    federation: Federation,
    clients: Sequence[ClientSite],
    granularity: str = "table",
    policy_sees_weights: bool = True,
    record_series: Union[bool, str] = False,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    instrumentation: Optional[Instrumentation] = None,
) -> FleetResult:
    """Run every client's workload through its own cache.

    Caches are independent (no coordination — out of the paper's
    scope), so the simulation is exact per site and the global total is
    their sum.  With ``parallel=True`` each site replays in a separate
    worker process (falling back to serial when the platform cannot
    spawn a pool); note that the caller's ``client.policy`` objects are
    then *not* mutated — per-site state lives in the returned results.

    Telemetry is never dropped: parallel workers record counters into
    their own sink and ship the snapshot back on each result, and when
    ``instrumentation`` is supplied those snapshots merge into it in
    client order (serial runs emit into it directly).
    """
    if not clients:
        raise CacheError("simulate_fleet needs at least one client")
    names = [client.name for client in clients]
    if len(set(names)) != len(names):
        raise CacheError("client names must be unique")

    outcomes: Optional[List[SimulationResult]] = None
    if parallel and len(clients) > 1:
        workers = max_workers or (os.cpu_count() or 1)
        workers = max(1, min(workers, len(clients)))
        if workers > 1:
            # Compile every client's stream once in the parent; workers
            # receive the pickle-cheap compiled form instead of
            # re-attributing yields per site.
            pipeline = DecisionPipeline(
                federation, granularity, policy_sees_weights
            )
            tasks = [
                (
                    client.name,
                    pipeline.compile_trace(client.trace),
                    client.policy,
                )
                for client in clients
            ]
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_fleet_worker,
                    initargs=(
                        federation,
                        granularity,
                        policy_sees_weights,
                        record_series,
                    ),
                ) as pool:
                    outcomes = list(pool.map(_run_fleet_task, tasks))
            except (BrokenProcessPool, pickle.PicklingError, OSError):
                outcomes = None  # fall back to serial below
    if outcomes is None:
        simulator = Simulator(
            federation,
            granularity,
            policy_sees_weights,
            instrumentation=instrumentation,
        )
        outcomes = [
            simulator.run(
                client.trace, client.policy, record_series=record_series
            )
            for client in clients
        ]

    result = FleetResult()
    for client, outcome in zip(clients, outcomes):
        result.per_client[client.name] = outcome
    if instrumentation is not None:
        for outcome in outcomes:
            if outcome.telemetry is not None:
                instrumentation.merge_snapshot(outcome.telemetry)
        instrumentation.count("fleet.clients", len(clients))
        instrumentation.count("fleet.wan_bytes", result.total_bytes)
    return result
