"""Bounded-memory accounting helpers for streaming replays.

The classic replay knows the trace length up front and records its
cumulative-WAN series at a fixed stride.  A streaming replay does not
know the length, so :class:`SampledSeries` keeps the series bounded by
*stride doubling*: record every query at first, and whenever the buffer
fills, drop every other point and double the stride.  The result is
always between ``max_points / 2`` and ``max_points`` evenly-strided
points covering the whole run — constant memory for any trace length,
and deterministic (the same inputs produce the same series).
"""

from __future__ import annotations

from typing import List

from repro.errors import CacheError

#: Default retained-point bound; twice the classic sampled target so the
#: downsampled stream resolution brackets the batch one.
DEFAULT_MAX_POINTS = 1024


class SampledSeries:
    """A cumulative series with a hard point bound and adaptive stride.

    Values are observed once per query; every ``stride``-th observation
    is retained.  When retention would exceed ``max_points``, the series
    halves itself (keeping every second point, which lands exactly on
    the doubled-stride boundaries) and doubles the stride.  Memory is
    O(``max_points``) however many queries stream through.
    """

    def __init__(self, max_points: int = DEFAULT_MAX_POINTS) -> None:
        if max_points < 2:
            raise CacheError("max_points must be at least 2")
        self._max_points = max_points
        # Bounded by max_points — halved in place whenever full, so this
        # never grows with trace length.
        self._points: List[float] = []
        self._stride = 1
        self._since_last = 0
        self._last_value = 0.0
        self._observed = 0

    @property
    def stride(self) -> int:
        """Queries between consecutive retained points."""
        return self._stride

    @property
    def observed(self) -> int:
        """Total observations so far."""
        return self._observed

    def observe(self, value: float) -> None:
        """Record one per-query cumulative value."""
        self._observed += 1
        self._last_value = value
        self._since_last += 1
        if self._since_last < self._stride:
            return
        self._since_last = 0
        self._points.append(value)
        if len(self._points) > self._max_points:
            self._halve()

    def _halve(self) -> None:
        # Keep odd indices: point i sits at query (i + 1) * stride, so
        # indices 1, 3, 5, … land exactly on the doubled-stride
        # boundaries 2s, 4s, 6s, …
        dropped_tail = len(self._points) % 2 == 1
        self._points = self._points[1::2]
        if dropped_tail:
            # The dropped final point's queries now count toward the
            # next (doubled) boundary.
            self._since_last = self._stride
        self._stride *= 2

    def points(self) -> List[float]:
        """The retained series, final value always included.

        The trailing partial stride (if any) contributes one final
        point so the series always ends at the run's closing total —
        matching the classic recorder's ``index == total - 1`` append.
        """
        points = list(self._points)
        if self._observed and (self._since_last or not points):
            points.append(self._last_value)
        return points
