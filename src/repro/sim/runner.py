"""Experiment orchestration: policy comparisons and cache-size sweeps."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.policies import (
    StaticPolicy,
    accumulate_object_yields,
    choose_static_objects,
    make_policy,
)
from repro.core.policies.base import CachePolicy
from repro.errors import CacheError
from repro.federation.federation import Federation
from repro.sim.results import SimulationResult, SweepPoint, SweepResult
from repro.sim.simulator import ObjectCatalog, Simulator
from repro.workload.trace import PreparedTrace

#: The algorithm line-up of Figures 7-10.
DEFAULT_POLICIES = (
    "rate-profile",
    "online-by",
    "space-eff-by",
    "gds",
    "static",
    "no-cache",
)


def build_policy(
    name: str,
    capacity_bytes: int,
    trace: PreparedTrace,
    federation: Federation,
    granularity: str,
    **kwargs,
) -> CachePolicy:
    """Instantiate a policy, handling the offline setup of ``static``."""
    if name == "static":
        yields = accumulate_object_yields(trace, granularity)
        catalog = ObjectCatalog(federation)
        sizes = {object_id: catalog.size(object_id) for object_id in yields}
        chosen = choose_static_objects(yields, sizes, capacity_bytes)
        return StaticPolicy(capacity_bytes, chosen)
    return make_policy(name, capacity_bytes, **kwargs)


def run_single(
    trace: PreparedTrace,
    federation: Federation,
    policy_name: str,
    capacity_bytes: int,
    granularity: str = "table",
    record_series: bool = True,
    **kwargs,
) -> SimulationResult:
    """Run one policy over one trace."""
    simulator = Simulator(federation, granularity)
    policy = build_policy(
        policy_name, capacity_bytes, trace, federation, granularity,
        **kwargs,
    )
    return simulator.run(trace, policy, record_series=record_series)


def compare_policies(
    trace: PreparedTrace,
    federation: Federation,
    capacity_bytes: int,
    granularity: str = "table",
    policies: Sequence[str] = DEFAULT_POLICIES,
    record_series: bool = True,
) -> Dict[str, SimulationResult]:
    """Run several policies at one cache size (Figures 7-8, Tables 1-2)."""
    results: Dict[str, SimulationResult] = {}
    for name in policies:
        results[name] = run_single(
            trace,
            federation,
            name,
            capacity_bytes,
            granularity,
            record_series=record_series,
        )
    return results


def sweep_cache_sizes(
    trace: PreparedTrace,
    federation: Federation,
    granularity: str = "table",
    fractions: Sequence[float] = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0
    ),
    policies: Sequence[str] = (
        "rate-profile", "online-by", "space-eff-by", "gds", "static"
    ),
) -> SweepResult:
    """Total cost vs cache size, 10%-100% of the DB (Figures 9-10)."""
    database_bytes = federation.total_database_bytes()
    sweep = SweepResult(
        granularity=granularity, database_bytes=database_bytes
    )
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise CacheError(
                f"cache fraction must be in (0, 1], got {fraction}"
            )
        capacity = max(1, int(database_bytes * fraction))
        for name in policies:
            result = run_single(
                trace,
                federation,
                name,
                capacity,
                granularity,
                record_series=False,
            )
            sweep.points.append(
                SweepPoint(
                    policy_name=name,
                    cache_fraction=fraction,
                    capacity_bytes=capacity,
                    total_bytes=result.total_bytes,
                )
            )
    return sweep
