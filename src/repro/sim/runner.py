"""Experiment orchestration: policy comparisons and cache-size sweeps.

The sweep surface (policies × cache sizes × traces) is embarrassingly
parallel — every cell is an independent replay of an immutable prepared
trace.  :func:`run_sweep` and :func:`compare_policies` therefore accept
``parallel=True`` to fan the cells out over a
:class:`concurrent.futures.ProcessPoolExecutor`; results are returned in
deterministic (submission) order and are identical to serial mode, so
the flag is purely a wall-clock knob.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.instrumentation import Instrumentation
from repro.core.pipeline import (
    CompiledTrace,
    DecisionPipeline,
    shared_catalog,
)
from repro.core.policies import (
    StaticPolicy,
    accumulate_object_yields,
    choose_static_objects,
    make_policy,
)
from repro.core.policies.base import CachePolicy
from repro.errors import CacheError
from repro.faults import FaultEngine, FaultSchedule, ResilientTransport
from repro.federation.federation import Federation
from repro.obs.spans import Tracer
from repro.sim.results import SimulationResult, SweepPoint, SweepResult
from repro.sim.simulator import Simulator
from repro.workload.stream import QueryStream
from repro.workload.trace import PreparedTrace

if TYPE_CHECKING:
    from repro.sim.multi import ClientSite

#: The algorithm line-up of Figures 7-10.
DEFAULT_POLICIES = (
    "rate-profile",
    "online-by",
    "space-eff-by",
    "gds",
    "static",
    "no-cache",
)


def build_policy(
    name: str,
    capacity_bytes: int,
    trace: Union[PreparedTrace, CompiledTrace, QueryStream],
    federation: Federation,
    granularity: str,
    **kwargs,
) -> CachePolicy:
    """Instantiate a policy, handling the offline setup of ``static``.

    The static policy's offline selection needs the *raw* per-object
    yield totals; a compiled trace carries them precomputed
    (``object_totals``), and a query stream supplies them from its
    manifest metadata when it has any (chunked traces do; a bare
    generated stream would need a counting pass and raises instead).
    """
    if name == "static":
        if isinstance(trace, CompiledTrace):
            yields = dict(trace.object_totals)
        elif isinstance(trace, QueryStream):
            totals = trace.object_totals(granularity)
            if totals is None:
                raise CacheError(
                    f"stream {trace.name!r} carries no object totals; "
                    "the static policy needs them up front — use a "
                    "chunked trace or a materialized stream"
                )
            yields = totals
        else:
            yields = accumulate_object_yields(trace, granularity)
        catalog = shared_catalog(federation)
        sizes = {object_id: catalog.size(object_id) for object_id in yields}
        chosen = choose_static_objects(yields, sizes, capacity_bytes)
        return StaticPolicy(capacity_bytes, chosen)
    return make_policy(name, capacity_bytes, **kwargs)


def build_transport(
    faults: FaultSchedule,
    instrumentation: Optional[Instrumentation] = None,
) -> ResilientTransport:
    """A fresh per-run transport over ``faults``.

    Breakers and request ids are per-transport state, so every run
    (every sweep cell) gets its own instance — that is what makes
    serial and parallel execution agree under faults.  When an
    instrumentation sink is given, transport and breaker counters
    (``transport.*``, ``breaker.*``) flow into it.
    """
    hook = instrumentation.count if instrumentation is not None else None
    return ResilientTransport(FaultEngine(faults), on_counter=hook)


def run_single(
    trace: Union[PreparedTrace, CompiledTrace],
    federation: Federation,
    policy_name: str,
    capacity_bytes: int,
    granularity: str = "table",
    record_series: Union[bool, str] = True,
    policy_sees_weights: bool = True,
    instrumentation: Optional[Instrumentation] = None,
    faults: Optional[FaultSchedule] = None,
    partial_results: bool = False,
    tracer: Optional["Tracer"] = None,
    **kwargs,
) -> SimulationResult:
    """Run one policy over one trace.

    With ``faults``, the replay runs behind a fresh
    :class:`~repro.faults.transport.ResilientTransport` over the
    schedule; per-server observed-downtime counters land in the
    instrumentation sink after the run.  With ``tracer``, the decision
    path (and, under faults, every transport attempt) emits spans.
    """
    simulator = Simulator(
        federation,
        granularity,
        policy_sees_weights,
        instrumentation=instrumentation,
        tracer=tracer,
    )
    policy = build_policy(
        policy_name, capacity_bytes, trace, federation, granularity,
        **kwargs,
    )
    if faults is None:
        return simulator.run(trace, policy, record_series=record_series)
    transport = build_transport(faults, instrumentation)
    if tracer is not None:
        transport.attach_tracer(tracer)
    result = simulator.run(
        trace,
        policy,
        record_series=record_series,
        transport=transport,
        partial_results=partial_results,
    )
    if instrumentation is not None:
        downtime = transport.engine.downtime_by_server()
        for server, ticks in sorted(downtime.items()):
            instrumentation.count(f"faults.downtime_ticks.{server}", ticks)
    return result


def build_fleet(
    trace: PreparedTrace,
    shards: int,
    policy_name: str,
    capacity_bytes: int,
    federation: Federation,
    granularity: str = "table",
    prefix: str = "shard",
    **kwargs,
) -> List["ClientSite"]:
    """Split one workload across ``shards`` proxies with own policies.

    Round-robins the trace into per-shard subsequences (overlapping
    object universe — the regime where cooperation pays) and builds an
    independent ``policy_name`` instance of ``capacity_bytes`` for each,
    ready for :func:`repro.sim.multi.simulate_fleet` in either mode.
    Static policies select from their *own shard's* yield totals, just
    as a real deployment would only see its own traffic.
    """
    from repro.fleet.cooperative import split_trace
    from repro.sim.multi import ClientSite

    clients: List[ClientSite] = []
    for shard_trace in split_trace(trace, shards, prefix=prefix):
        policy = build_policy(
            policy_name,
            capacity_bytes,
            shard_trace,
            federation,
            granularity,
            **kwargs,
        )
        clients.append(  # repro-lint: allow[RPR007] bounded by shard count
            ClientSite(
                name=shard_trace.name.rsplit(".", 1)[-1],
                trace=shard_trace,
                policy=policy,
            )
        )
    return clients


# ---------------------------------------------------------------------------
# Process-parallel execution
# ---------------------------------------------------------------------------

#: Per-worker shared state, installed once by the pool initializer so
#: the (large) trace and federation cross the process boundary once per
#: worker instead of once per task.
_WORKER_CONTEXT: Dict[str, object] = {}


def _init_worker(
    trace: CompiledTrace,
    federation: Federation,
    granularity: str,
    record_series: Union[bool, str],
    policy_sees_weights: bool,
    faults: Optional[FaultSchedule] = None,
    partial_results: bool = False,
) -> None:
    _WORKER_CONTEXT["args"] = (
        trace, federation, granularity, record_series, policy_sees_weights,
        faults, partial_results,
    )


def _run_task(task: Tuple[str, int]) -> SimulationResult:
    policy_name, capacity = task
    (
        trace, federation, granularity, record_series, policy_sees_weights,
        faults, partial_results,
    ) = _WORKER_CONTEXT["args"]
    # Counters-only sink: event bodies stay in the worker, the snapshot
    # (cheap, JSON-safe) rides back on the result for the parent to
    # merge in deterministic task order.
    telemetry = Instrumentation(max_events=0)
    result = run_single(
        trace,
        federation,
        policy_name,
        capacity,
        granularity,
        record_series=record_series,
        policy_sees_weights=policy_sees_weights,
        instrumentation=telemetry,
        faults=faults,
        partial_results=partial_results,
    )
    result.worker_pid = os.getpid()
    result.telemetry = telemetry.snapshot()
    return result


def merge_worker_telemetry(
    instrumentation: Optional[Instrumentation],
    outcomes: Sequence[SimulationResult],
) -> None:
    """Fold worker telemetry snapshots into the caller's sink.

    Merged in the given (deterministic submission) order, so parallel
    aggregation is reproducible run to run.  Results without telemetry
    (serial in-process runs, whose events already flowed into the sink)
    are skipped.
    """
    if instrumentation is None:
        return
    for outcome in outcomes:
        if outcome.telemetry is not None:
            instrumentation.merge_snapshot(outcome.telemetry)


def _run_cells(
    tasks: Sequence[Tuple[str, int]],
    trace: Union[PreparedTrace, CompiledTrace],
    federation: Federation,
    granularity: str,
    record_series: Union[bool, str],
    policy_sees_weights: bool,
    parallel: bool,
    max_workers: Optional[int],
    instrumentation: Optional[Instrumentation] = None,
    faults: Optional[FaultSchedule] = None,
    partial_results: bool = False,
) -> List[SimulationResult]:
    """Run (policy, capacity) cells, optionally across processes.

    Results come back in task order either way, so parallel and serial
    execution are interchangeable.  If the platform cannot run a
    process pool (no fork/spawn, unpicklable state), we fall back to
    serial execution rather than failing the experiment.

    When ``instrumentation`` is supplied, serial cells emit into it
    directly; parallel cells record counters in their worker process
    and the snapshots are merged back in task order (events stay
    worker-local — only counter/stage aggregates cross the boundary).

    The trace is compiled once here — serial cells share the memoized
    stream, parallel workers receive the compiled form in their
    initializer — so query construction happens once per sweep rather
    than once per cell.
    """
    compiled = DecisionPipeline(
        federation, granularity, policy_sees_weights
    ).compile_trace(trace)
    if parallel and len(tasks) > 1:
        workers = max_workers or (os.cpu_count() or 1)
        workers = max(1, min(workers, len(tasks)))
        if workers > 1:
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(
                        compiled,
                        federation,
                        granularity,
                        record_series,
                        policy_sees_weights,
                        faults,
                        partial_results,
                    ),
                ) as pool:
                    outcomes = list(pool.map(_run_task, tasks))
            except (BrokenProcessPool, pickle.PicklingError, OSError):
                pass  # fall back to in-process execution below
            else:
                merge_worker_telemetry(instrumentation, outcomes)
                return outcomes
    return [
        run_single(
            compiled,
            federation,
            name,
            capacity,
            granularity,
            record_series=record_series,
            policy_sees_weights=policy_sees_weights,
            instrumentation=instrumentation,
            faults=faults,
            partial_results=partial_results,
        )
        for name, capacity in tasks
    ]


def compare_policies(
    trace: PreparedTrace,
    federation: Federation,
    capacity_bytes: int,
    granularity: str = "table",
    policies: Sequence[str] = DEFAULT_POLICIES,
    record_series: Union[bool, str] = True,
    policy_sees_weights: bool = True,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    instrumentation: Optional[Instrumentation] = None,
    faults: Optional[FaultSchedule] = None,
    partial_results: bool = False,
) -> Dict[str, SimulationResult]:
    """Run several policies at one cache size (Figures 7-8, Tables 1-2).

    With ``instrumentation``, telemetry aggregates across every cell —
    including parallel workers, whose counter snapshots merge back in
    deterministic policy order.  With ``faults``, every cell replays
    behind its own fresh transport over the same schedule, so the
    comparison stays apples-to-apples and serial == parallel.
    """
    tasks = [(name, capacity_bytes) for name in policies]
    outcomes = _run_cells(
        tasks,
        trace,
        federation,
        granularity,
        record_series,
        policy_sees_weights,
        parallel,
        max_workers,
        instrumentation=instrumentation,
        faults=faults,
        partial_results=partial_results,
    )
    return {name: result for name, result in zip(policies, outcomes)}


def run_sweep(
    trace: PreparedTrace,
    federation: Federation,
    granularity: str = "table",
    fractions: Sequence[float] = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0
    ),
    policies: Sequence[str] = (
        "rate-profile", "online-by", "space-eff-by", "gds", "static"
    ),
    policy_sees_weights: bool = True,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    instrumentation: Optional[Instrumentation] = None,
    faults: Optional[FaultSchedule] = None,
    partial_results: bool = False,
) -> SweepResult:
    """Total cost vs cache size, 10%-100% of the DB (Figures 9-10).

    With ``parallel=True`` the (fraction × policy) grid fans out over a
    process pool; the returned points are ordered exactly as in serial
    mode (fractions outer, policies inner).  Worker telemetry snapshots
    merge into ``instrumentation`` in that same order.
    """
    database_bytes = federation.total_database_bytes()
    sweep = SweepResult(
        granularity=granularity, database_bytes=database_bytes
    )
    tasks: List[Tuple[str, int]] = []
    cells: List[Tuple[str, float, int]] = []
    for fraction in fractions:
        if not 0.0 < fraction <= 1.0:
            raise CacheError(
                f"cache fraction must be in (0, 1], got {fraction}"
            )
        capacity = max(1, int(database_bytes * fraction))
        for name in policies:
            tasks.append((name, capacity))
            cells.append((name, fraction, capacity))
    outcomes = _run_cells(
        tasks,
        trace,
        federation,
        granularity,
        False,
        policy_sees_weights,
        parallel,
        max_workers,
        instrumentation=instrumentation,
        faults=faults,
        partial_results=partial_results,
    )
    for (name, fraction, capacity), result in zip(cells, outcomes):
        sweep.points.append(
            SweepPoint(
                policy_name=name,
                cache_fraction=fraction,
                capacity_bytes=capacity,
                total_bytes=result.total_bytes,
            )
        )
    return sweep


def sweep_cache_sizes(
    trace: PreparedTrace,
    federation: Federation,
    granularity: str = "table",
    fractions: Sequence[float] = (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0
    ),
    policies: Sequence[str] = (
        "rate-profile", "online-by", "space-eff-by", "gds", "static"
    ),
    **kwargs,
) -> SweepResult:
    """Backwards-compatible alias for :func:`run_sweep`."""
    return run_sweep(
        trace,
        federation,
        granularity=granularity,
        fractions=fractions,
        policies=policies,
        **kwargs,
    )
