"""CLI: constant-memory streamed replay with a deterministic report.

Usage::

    python -m repro.sim.scale_run --flavor edr -n 10000 \\
        --yields estimated --policy online-by --capacity 40000000 \\
        -o report.json --max-peak-mb 600

    python -m repro.sim.scale_run --chunked traces/edr-1m \\
        --policy online-by --capacity 40000000 -o report.json

Generates (or reads) a prepared-query stream and replays it through one
policy with streaming accounting: the trace is never materialized, the
cumulative series is kept bounded by adaptive sampling, and peak memory
stays flat however long the trace is.

The JSON report is **byte-deterministic**: same seed, same knobs → the
same file, byte for byte.  That is what the CI scale-smoke job asserts
by running this twice and diffing.  Anything nondeterministic (wall
time, peak memory) goes to stderr only; ``--max-peak-mb`` turns the
tracemalloc peak into an exit-code ceiling without ever entering the
report.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path
from typing import List, Optional

from repro.core.policies import POLICY_REGISTRY
from repro.core.yield_model import YIELD_MODES, make_yield_source
from repro.federation.federation import Federation
from repro.federation.mediator import Mediator
from repro.federation.server import DatabaseServer
from repro.sim.runner import build_policy
from repro.sim.simulator import Simulator
from repro.workload.chunks import ChunkedTrace
from repro.workload.generator import TraceConfig
from repro.workload.sdss_schema import (
    PROFILES,
    ScaleProfile,
    build_first_catalog,
    build_sdss_catalog,
)
from repro.workload.stream import GeneratedStream, QueryStream

#: Report format tag; bump on incompatible change.
REPORT_FORMAT = "repro-scale-report/1"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.scale_run",
        description="Streamed constant-memory replay of a large trace.",
    )
    parser.add_argument(
        "--flavor", default="edr", help="trace flavor (generated mode)"
    )
    parser.add_argument(
        "-n", "--num-queries", type=int, default=10_000,
        help="trace length (generated mode; up to 10^6)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed (defaults to the flavor's canonical seed)",
    )
    parser.add_argument(
        "--profile", default="small", choices=sorted(PROFILES),
        help="database scale profile",
    )
    parser.add_argument(
        "--yields", default="estimated", choices=list(YIELD_MODES),
        help="yield source for generated streams",
    )
    parser.add_argument(
        "--chunked", metavar="DIR", default=None,
        help="replay an existing chunked trace instead of generating",
    )
    parser.add_argument(
        "--policy", default="online-by",
        choices=sorted(POLICY_REGISTRY) + ["static"],
        help="cache policy to replay through",
    )
    parser.add_argument(
        "--capacity", type=int, default=40_000_000,
        help="cache capacity in bytes",
    )
    parser.add_argument(
        "--granularity", default="table", choices=("table", "column"),
        help="caching granularity",
    )
    parser.add_argument(
        "--byu", action="store_true",
        help="use the BYU (raw-byte) cost view instead of BYHR",
    )
    parser.add_argument(
        "--max-peak-mb", type=float, default=None,
        help="fail (exit 3) if the replay's tracemalloc peak exceeds "
        "this many MB (enables tracemalloc, which slows the replay "
        "several-fold — throughput numbers on stderr are then "
        "conservative)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="report path (JSON); stdout when omitted",
    )
    return parser


def _build_mediator(profile: ScaleProfile) -> Mediator:
    federation = Federation.single_site(build_sdss_catalog(profile), "sdss")
    federation.add_server(
        DatabaseServer("first", build_first_catalog(profile))
    )
    return Mediator(federation)


def run_scale(args: argparse.Namespace) -> int:
    profile = PROFILES[args.profile]
    mediator = _build_mediator(profile)
    federation = mediator.federation

    stream: QueryStream
    if args.chunked is not None:
        stream = ChunkedTrace(Path(args.chunked))
        source_mode = "chunked"
    else:
        config = TraceConfig(
            num_queries=args.num_queries,
            flavor=args.flavor,
            seed=args.seed,
        )
        source = make_yield_source(args.yields, mediator=mediator)
        stream = GeneratedStream(config, mediator, source, profile)
        source_mode = args.yields

    simulator = Simulator(
        federation,
        granularity=args.granularity,
        policy_sees_weights=not args.byu,
    )
    policy = build_policy(
        args.policy, args.capacity, stream, federation, args.granularity
    )

    trace_memory = args.max_peak_mb is not None
    if trace_memory:
        tracemalloc.start()
    started = time.perf_counter()  # repro-lint: allow[RPR002] stderr-only timing
    result = simulator.run_stream(stream, policy, record_series="sampled")
    elapsed = time.perf_counter() - started  # repro-lint: allow[RPR002] stderr-only timing
    peak_bytes = 0
    if trace_memory:
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()

    report = {
        "format": REPORT_FORMAT,
        "trace": {
            "name": stream.name,
            "fingerprint": stream.fingerprint,
            "num_queries": result.queries,
            "yields": source_mode,
            "profile": args.profile,
        },
        "run": {
            "policy": args.policy,
            "capacity_bytes": args.capacity,
            "granularity": args.granularity,
            "policy_sees_weights": not args.byu,
        },
        "summary": result.summary(),
        "series": {
            "stride": result.series_stride,
            "cumulative_bytes": result.cumulative_bytes,
        },
    }
    payload = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if args.output is None:
        sys.stdout.write(payload)
    else:
        Path(args.output).write_text(payload, encoding="utf-8")

    peak_mb = peak_bytes / 1e6
    throughput = result.queries / elapsed if elapsed > 0 else float("inf")
    peak_note = (
        f", tracemalloc peak {peak_mb:.1f} MB" if trace_memory else ""
    )
    print(
        f"replayed {result.queries} queries in {elapsed:.2f}s "
        f"({throughput:,.0f} q/s){peak_note}",
        file=sys.stderr,
    )
    if args.max_peak_mb is not None and peak_mb > args.max_peak_mb:
        print(
            f"peak memory {peak_mb:.1f} MB exceeds ceiling "
            f"{args.max_peak_mb:.1f} MB",
            file=sys.stderr,
        )
        return 3
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return run_scale(args)


if __name__ == "__main__":
    sys.exit(main())
