"""Estimator fidelity: what do estimated yields cost the cache?

The bypass decision needs only result *sizes*; a production mediator
estimates them from catalog statistics instead of executing queries.
This harness quantifies what that substitution changes:

* :func:`yield_errors` — per-template relative error of estimated vs
  exact yields (the estimator's accuracy profile);
* :func:`decision_flip_rate` — replay the exact and estimated traces
  through twin policies in lockstep and count the queries where the
  *decision* (serve from cache vs bypass) differs.  Estimation error
  only matters where it crosses a decision boundary; this is the
  end-to-end metric the scale experiments report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.core.pipeline import DecisionPipeline
from repro.core.policies.base import CachePolicy
from repro.errors import CacheError
from repro.federation.federation import Federation
from repro.workload.trace import PreparedTrace


@dataclass(frozen=True)
class TemplateError:
    """Estimated-vs-exact yield accuracy for one query template."""

    template: str
    queries: int
    mean_relative_error: float
    max_relative_error: float


@dataclass
class FidelityReport:
    """Decision-level agreement between exact and estimated yields.

    Attributes:
        queries: Queries compared.
        flips: Queries whose serve/bypass decision differed.
        flip_rate: ``flips / queries`` (0.0 on empty traces).
        exact_total_bytes: WAN total of the exact replay.
        estimated_total_bytes: WAN total of the estimated replay
            **re-priced at exact bypass bytes** — the decisions come
            from estimated yields, but the traffic a decision actually
            generates is what the real result sizes would have cost.
        template_errors: Per-template yield accuracy, sorted by name.
    """

    queries: int = 0
    flips: int = 0
    exact_total_bytes: float = 0.0
    estimated_total_bytes: float = 0.0
    template_errors: List[TemplateError] = field(default_factory=list)

    @property
    def flip_rate(self) -> float:
        if self.queries == 0:
            return 0.0
        return self.flips / self.queries

    @property
    def wan_penalty(self) -> float:
        """Estimated-decision WAN total relative to exact (1.0 = parity)."""
        if self.exact_total_bytes == 0:
            return 1.0
        return self.estimated_total_bytes / self.exact_total_bytes


def yield_errors(
    exact: PreparedTrace, estimated: PreparedTrace
) -> List[TemplateError]:
    """Per-template relative error of estimated yields.

    Relative error for one query is ``|est - exact| / max(exact, 1)``
    (the floor dodges division by zero on empty results).
    """
    _check_aligned(exact, estimated)
    sums: Dict[str, Tuple[int, float, float]] = {}
    for have, guessed in zip(exact.queries, estimated.queries):
        error = abs(guessed.yield_bytes - have.yield_bytes) / max(
            have.yield_bytes, 1
        )
        count, total, worst = sums.get(have.template, (0, 0.0, 0.0))
        sums[have.template] = (  # repro-lint: allow[RPR007] keyed by template, bounded by template count
            count + 1, total + error, max(worst, error)
        )
    return [
        TemplateError(
            template=template,
            queries=count,
            mean_relative_error=total / count,
            max_relative_error=worst,
        )
        for template, (count, total, worst) in sorted(sums.items())
    ]


def decision_flip_rate(
    federation: Federation,
    exact: PreparedTrace,
    estimated: PreparedTrace,
    policy_factory: Callable[[], CachePolicy],
    granularity: str = "table",
    policy_sees_weights: bool = True,
) -> FidelityReport:
    """Lockstep replay: exact vs estimated yields through twin policies.

    Both replicas see the same query sequence; one sees exact yields,
    the other estimated ones.  Each policy evolves its own cache state,
    so flips compound realistically — an early mis-load shifts every
    later decision it shadows, exactly as it would in production.  WAN
    charges on *both* sides are priced at the exact bypass bytes, so
    the totals isolate the decision quality from the estimation error
    itself.
    """
    _check_aligned(exact, estimated)
    pipeline = DecisionPipeline(
        federation, granularity, policy_sees_weights
    )
    exact_policy = policy_factory()
    estimated_policy = policy_factory()
    report = FidelityReport(
        template_errors=yield_errors(exact, estimated)
    )
    for index, (have, guessed) in enumerate(
        zip(exact.queries, estimated.queries)
    ):
        exact_query = pipeline.query_from_prepared(have, index)
        estimated_query = pipeline.query_from_prepared(guessed, index)
        exact_decision = exact_policy.process(exact_query)
        estimated_decision = estimated_policy.process(estimated_query)
        if (
            exact_decision.served_from_cache
            != estimated_decision.served_from_cache
        ):
            report.flips += 1
        # Both sides pay real-world prices: the exact bypass bytes.
        exact_accounting = pipeline.account(
            exact_decision,
            bypass_bytes=have.bypass_bytes,
            servers=tuple(have.servers),
        )
        estimated_accounting = pipeline.account(
            estimated_decision,
            bypass_bytes=have.bypass_bytes,
            servers=tuple(have.servers),
        )
        report.exact_total_bytes += exact_accounting.wan_bytes
        report.estimated_total_bytes += estimated_accounting.wan_bytes
        report.queries += 1
    return report


def _check_aligned(
    exact: PreparedTrace, estimated: PreparedTrace
) -> None:
    if len(exact) != len(estimated):
        raise CacheError(
            f"trace length mismatch: exact has {len(exact)} queries, "
            f"estimated has {len(estimated)}"
        )
    for have, guessed in zip(exact.queries, estimated.queries):
        if have.sql != guessed.sql:
            raise CacheError(
                f"query {have.index} differs between traces; fidelity "
                "comparison needs the same workload on both sides"
            )
