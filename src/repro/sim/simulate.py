"""CLI: replay a prepared trace through one or more cache policies.

Usage::

    python -m repro.workload.make_trace -n 2000 --prepare -o edr.jsonl
    python -m repro.sim.simulate --trace edr.jsonl.prepared.jsonl \\
        --policy rate-profile --policy gds --capacity-frac 0.3

The federation is rebuilt from the named scale profile (prepared traces
carry yields and attributions but not object sizes), so the profile must
match the one the trace was prepared against.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.policies import POLICY_REGISTRY
from repro.errors import ConfigurationError
from repro.experiments.common import parse_worker_count
from repro.federation.federation import Federation
from repro.federation.mediator import Mediator
from repro.federation.server import DatabaseServer
from repro.sim.reporting import format_breakdown
from repro.sim.runner import compare_policies
from repro.workload.sdss_schema import (
    PROFILES,
    build_first_catalog,
    build_sdss_catalog,
)
from repro.workload.trace import PreparedTrace

KNOWN_POLICIES = tuple(sorted(POLICY_REGISTRY)) + ("static",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.simulate",
        description="Replay a prepared trace through cache policies.",
    )
    parser.add_argument(
        "--trace", required=True, help="prepared trace (JSONL)"
    )
    parser.add_argument(
        "--profile", default="small", choices=sorted(PROFILES),
        help="scale profile the trace was prepared against",
    )
    parser.add_argument(
        "--policy", action="append", choices=KNOWN_POLICIES,
        help="policy to run (repeatable; default: the paper line-up)",
    )
    parser.add_argument(
        "--granularity", default="table", choices=("table", "column"),
    )
    parser.add_argument(
        "--capacity-frac", type=float, default=0.3,
        help="cache size as a fraction of the database",
    )
    parser.add_argument(
        "--parallel", nargs="?", const="auto", default=None,
        metavar="WORKERS",
        help=(
            "replay policies in parallel worker processes; optionally "
            "give a positive worker count (0/false/no/off forces serial)"
        ),
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.policy:
        policies = tuple(args.policy)
    else:
        policies = (
            "rate-profile", "online-by", "space-eff-by", "gds",
            "static", "no-cache",
        )
    if not 0.0 < args.capacity_frac <= 1.0:
        print("capacity-frac must be in (0, 1]", file=sys.stderr)
        return 2

    # --parallel absent -> serial; bare --parallel -> default pool;
    # --parallel N -> pinned pool, validated like REPRO_PARALLEL.
    parallel = args.parallel is not None
    max_workers: Optional[int] = None
    if parallel and args.parallel != "auto":
        try:
            workers = parse_worker_count(args.parallel, source="--parallel")
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if workers == 0:
            parallel = False
        else:
            max_workers = workers

    try:
        prepared = PreparedTrace.load(args.trace)
    except FileNotFoundError:
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    profile = PROFILES[args.profile]
    federation = Federation.single_site(build_sdss_catalog(profile), "sdss")
    federation.add_server(
        DatabaseServer("first", build_first_catalog(profile))
    )
    capacity = max(
        1, int(federation.total_database_bytes() * args.capacity_frac)
    )

    results = compare_policies(
        prepared,
        federation,
        capacity,
        args.granularity,
        policies=policies,
        record_series=False,
        parallel=parallel,
        max_workers=max_workers,
    )
    print(
        format_breakdown(
            results,
            title=(
                f"{prepared.name}: {len(prepared)} queries, "
                f"{args.granularity} caching, cache "
                f"{args.capacity_frac:.0%} of DB ({capacity:,} B)"
            ),
            sequence_bytes=float(prepared.sequence_bytes),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
