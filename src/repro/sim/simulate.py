"""CLI: replay a prepared trace through one or more cache policies.

Usage::

    python -m repro.workload.make_trace -n 2000 --prepare -o edr.jsonl
    python -m repro.sim.simulate --trace edr.jsonl.prepared.jsonl \\
        --policy rate-profile --policy gds --capacity-frac 0.3

The federation is rebuilt from the named scale profile (prepared traces
carry yields and attributions but not object sizes), so the profile must
match the one the trace was prepared against.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.instrumentation import Instrumentation
from repro.core.policies import POLICY_REGISTRY
from repro.errors import ConfigurationError, FaultError
from repro.experiments.common import parse_worker_count
from repro.faults import FaultSchedule, parse_fault_seed
from repro.federation.federation import Federation
from repro.federation.mediator import Mediator
from repro.federation.server import DatabaseServer
from repro.sim.reporting import format_breakdown
from repro.sim.results import SimulationResult
from repro.sim.runner import compare_policies, run_single
from repro.workload.sdss_schema import (
    PROFILES,
    build_first_catalog,
    build_sdss_catalog,
)
from repro.workload.trace import PreparedTrace

KNOWN_POLICIES = tuple(sorted(POLICY_REGISTRY)) + ("static",)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.simulate",
        description="Replay a prepared trace through cache policies.",
    )
    parser.add_argument(
        "--trace", required=True, help="prepared trace (JSONL)"
    )
    parser.add_argument(
        "--profile", default="small", choices=sorted(PROFILES),
        help="scale profile the trace was prepared against",
    )
    parser.add_argument(
        "--policy", action="append", choices=KNOWN_POLICIES,
        help="policy to run (repeatable; default: the paper line-up)",
    )
    parser.add_argument(
        "--granularity", default="table", choices=("table", "column"),
    )
    parser.add_argument(
        "--capacity-frac", type=float, default=0.3,
        help="cache size as a fraction of the database",
    )
    parser.add_argument(
        "--parallel", nargs="?", const="auto", default=None,
        metavar="WORKERS",
        help=(
            "replay policies in parallel worker processes; optionally "
            "give a positive worker count (0/false/no/off forces serial)"
        ),
    )
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help=(
            "write one JSONL decision trace per policy "
            "(DIR/trace-<policy>.jsonl, with a run-manifest header) for "
            "repro-report; forces serial replay"
        ),
    )
    parser.add_argument(
        "--faults", default=None, metavar="SCHEDULE",
        help=(
            "JSON fault schedule (see repro.faults.FaultSchedule) to "
            "inject: replays behind the resilient transport with "
            "retries, breakers, and retry-traffic accounting"
        ),
    )
    parser.add_argument(
        "--fault-seed", default=None, metavar="SEED",
        help=(
            "override the schedule's deterministic seed with a "
            "non-negative integer (requires --faults)"
        ),
    )
    parser.add_argument(
        "--partial-results", action="store_true",
        help=(
            "under faults, answer multi-server queries from the "
            "reachable servers instead of failing the whole query"
        ),
    )
    parser.add_argument(
        "--serve", action="store_true",
        help=(
            "replay through the mediator service path (admission "
            "control + shared-cache concurrency discipline) instead "
            "of the simulator loop; --serve-tenants 1 is the serial "
            "mode that matches the simulator byte for byte"
        ),
    )
    parser.add_argument(
        "--serve-tenants", default="1", metavar="N",
        help="fan the trace out across N simulated tenants (--serve)",
    )
    parser.add_argument(
        "--serve-seed", default="0", metavar="SEED",
        help="tenant-interleave seed (--serve)",
    )
    parser.add_argument(
        "--port", default="0", metavar="PORT",
        help=(
            "with --serve and a single policy: keep the service's "
            "HTTP endpoint (/healthz, /metrics, /slo) up on PORT "
            "after the replay, until POST /shutdown"
        ),
    )
    parser.add_argument(
        "--max-inflight", default="8", metavar="N",
        help="concurrent decision workers (--serve)",
    )
    parser.add_argument(
        "--tenant-rate", default="0", metavar="RATE",
        help=(
            "per-tenant admitted queries per arrival tick (--serve; "
            "0/off/none/unlimited disables rate limiting)"
        ),
    )
    parser.add_argument(
        "--queue-depth", default="64", metavar="N",
        help="per-tenant backlog before shedding to bypass (--serve)",
    )
    return parser


def _run_with_traces(
    prepared,
    federation,
    capacity: int,
    granularity: str,
    policies,
    trace_dir: Path,
    faults: Optional[FaultSchedule] = None,
    partial_results: bool = False,
) -> Dict[str, SimulationResult]:
    """Serial per-policy replay, streaming each run to a JSONL trace.

    Decision events must stay in-process to reach the
    :class:`~repro.obs.trace_io.TraceWriter` probe, so this path never
    fans out to workers.  Each policy gets its own counters-only sink
    (``max_events=0`` — the probe sees every event without retention)
    and its own ``trace-<policy>.jsonl`` under ``trace_dir``.
    """
    from repro.obs.manifest import RunManifest, wall_clock_timestamp
    from repro.obs.trace_io import TraceWriter

    trace_dir.mkdir(parents=True, exist_ok=True)
    results: Dict[str, SimulationResult] = {}
    for name in policies:
        manifest = RunManifest(
            workload=prepared.name,
            policy=name,
            granularity=granularity,
            capacity_bytes=capacity,
            source="simulator",
            created_at=wall_clock_timestamp(),
        )
        sink = Instrumentation(max_events=0)
        path = trace_dir / f"trace-{name}.jsonl"
        with TraceWriter(path, manifest) as writer:
            sink.add_probe(writer)
            results[name] = run_single(
                prepared,
                federation,
                name,
                capacity,
                granularity,
                record_series=False,
                instrumentation=sink,
                faults=faults,
                partial_results=partial_results,
            )
        print(f"wrote {writer.events_written} events to {path}")
    return results


def _run_service(
    prepared,
    federation,
    capacity: int,
    granularity: str,
    policies,
    tenants: int,
    seed: int,
    config,
    trace_dir: Optional[Path] = None,
) -> Dict[str, SimulationResult]:
    """Replay each policy through an in-process mediator service.

    All policies share one event loop (the per-federation decision
    lock binds to the loop it first awaits on), each gets a fresh
    service over the shared federation.  ``tenants == 1`` drives
    serially in trace order — the mode the golden-equivalence suite
    pins against ``run_stream``.  With a nonzero ``config.port`` (one
    policy only) the service's HTTP endpoint stays up after the replay
    until ``POST /shutdown``.
    """
    import asyncio

    from repro.obs.manifest import RunManifest, wall_clock_timestamp
    from repro.obs.trace_io import TraceWriter
    from repro.service.loadgen import drive_service, fan_out
    from repro.service.server import MediatorService
    from repro.sim.runner import build_policy
    from repro.workload.stream import MaterializedStream

    if trace_dir is not None:
        trace_dir.mkdir(parents=True, exist_ok=True)

    async def run_all() -> Dict[str, SimulationResult]:
        results: Dict[str, SimulationResult] = {}
        for name in policies:
            sink = Instrumentation(max_events=0)
            writer = None
            if trace_dir is not None:
                manifest = RunManifest(
                    workload=prepared.name,
                    policy=name,
                    granularity=granularity,
                    capacity_bytes=capacity,
                    source="service",
                    created_at=wall_clock_timestamp(),
                )
                path = trace_dir / f"trace-{name}.jsonl"
                writer = TraceWriter(path, manifest)
                sink.add_probe(writer)
            policy = build_policy(
                name, capacity, prepared, federation, granularity
            )
            service = MediatorService(
                federation,
                policy,
                config=config,
                granularity=granularity,
                instrumentation=sink,
            )
            stream = fan_out(
                MaterializedStream(prepared), tenants, seed
            )
            await drive_service(
                service, stream, serial=(tenants == 1)
            )
            if config.port != 0:
                await service.start()
                print(f"serving on {service.url}", flush=True)
                await service.serve_until_shutdown()
            await service.close()
            if writer is not None:
                writer.close()
                print(
                    f"wrote {writer.events_written} events to "
                    f"{writer.path}"
                )
            results[name] = service.result()
        return results

    return asyncio.run(run_all())


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.policy:
        policies = tuple(args.policy)
    else:
        policies = (
            "rate-profile", "online-by", "space-eff-by", "gds",
            "static", "no-cache",
        )
    if not 0.0 < args.capacity_frac <= 1.0:
        print("capacity-frac must be in (0, 1]", file=sys.stderr)
        return 2

    # --serve knobs are validated up front (before the trace loads),
    # so garbage exits 2 cheaply, exactly like --parallel.
    service_config = None
    serve_tenants = 1
    serve_seed = 0
    if args.serve:
        from repro.experiments.common import parse_bounded_int
        from repro.service.config import (
            ServiceConfig,
            parse_max_inflight,
            parse_port,
            parse_queue_depth,
            parse_tenant_rate,
        )

        try:
            service_config = ServiceConfig(
                port=parse_port(args.port),
                max_inflight=parse_max_inflight(args.max_inflight),
                tenant_rate=parse_tenant_rate(args.tenant_rate),
                queue_depth=parse_queue_depth(args.queue_depth),
            )
            serve_tenants = parse_bounded_int(
                args.serve_tenants, source="--serve-tenants",
                minimum=1, what="tenant count",
            )
            serve_seed = parse_bounded_int(
                args.serve_seed, source="--serve-seed", minimum=0,
                what="seed",
            )
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.faults is not None:
            print(
                "--serve does not support --faults", file=sys.stderr
            )
            return 2
        if args.parallel is not None:
            print(
                "--serve replays in-process; drop --parallel",
                file=sys.stderr,
            )
            return 2
        if service_config.port != 0 and len(policies) != 1:
            print(
                "--serve --port needs exactly one --policy",
                file=sys.stderr,
            )
            return 2

    # --parallel absent -> serial; bare --parallel -> default pool;
    # --parallel N -> pinned pool, validated like REPRO_PARALLEL.
    parallel = args.parallel is not None
    max_workers: Optional[int] = None
    if parallel and args.parallel != "auto":
        try:
            workers = parse_worker_count(args.parallel, source="--parallel")
        except ConfigurationError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if workers == 0:
            parallel = False
        else:
            max_workers = workers

    faults = None
    if args.fault_seed is not None and args.faults is None:
        print("--fault-seed requires --faults", file=sys.stderr)
        return 2
    if args.faults is not None:
        try:
            faults = FaultSchedule.load(args.faults)
            if args.fault_seed is not None:
                faults = faults.with_seed(
                    parse_fault_seed(args.fault_seed)
                )
        except FaultError as exc:
            print(str(exc), file=sys.stderr)
            return 2

    try:
        prepared = PreparedTrace.load(args.trace)
    except FileNotFoundError:
        print(f"no such trace file: {args.trace}", file=sys.stderr)
        return 2
    profile = PROFILES[args.profile]
    federation = Federation.single_site(build_sdss_catalog(profile), "sdss")
    federation.add_server(
        DatabaseServer("first", build_first_catalog(profile))
    )
    capacity = max(
        1, int(federation.total_database_bytes() * args.capacity_frac)
    )

    if args.serve:
        results = _run_service(
            prepared,
            federation,
            capacity,
            args.granularity,
            policies,
            serve_tenants,
            serve_seed,
            service_config,
            trace_dir=(
                Path(args.trace_dir)
                if args.trace_dir is not None
                else None
            ),
        )
    elif args.trace_dir is not None:
        results = _run_with_traces(
            prepared,
            federation,
            capacity,
            args.granularity,
            policies,
            Path(args.trace_dir),
            faults=faults,
            partial_results=args.partial_results,
        )
    else:
        results = compare_policies(
            prepared,
            federation,
            capacity,
            args.granularity,
            policies=policies,
            record_series=False,
            parallel=parallel,
            max_workers=max_workers,
            faults=faults,
            partial_results=args.partial_results,
        )
    print(
        format_breakdown(
            results,
            title=(
                f"{prepared.name}: {len(prepared)} queries, "
                f"{args.granularity} caching, cache "
                f"{args.capacity_frac:.0%} of DB ({capacity:,} B)"
            ),
            sequence_bytes=float(prepared.sequence_bytes),
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
