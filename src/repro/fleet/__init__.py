"""Sharded cooperative proxy fleets.

One proxy cannot hold the working set of "millions of users"; a fleet
can — if misses at one shard become cheap transfers from a sibling
instead of full backend fetches (the LBNL in-network caching result).
This package supplies the two pieces the independent
:func:`repro.sim.multi.simulate_fleet` lacks:

* :class:`~repro.fleet.ring.ConsistentHashRing` — seeded, keyed-hash
  virtual-node partitioning of the object catalog across N shards,
  with deterministic bounded-churn remapping on shard add/remove;
* :mod:`repro.fleet.cooperative` — the cooperative replay engine: on a
  local miss, consult the ring owner (and optionally every sibling)
  before paying backend cost, charging sibling hits over the peer
  link class (:meth:`repro.federation.network.NetworkModel.peer_cost`).

Drivers enter through ``simulate_fleet(cooperative=True, ...)`` in
:mod:`repro.sim.multi`.
"""

from repro.fleet.ring import ConsistentHashRing
from repro.fleet.cooperative import run_cooperative, split_trace

__all__ = ["ConsistentHashRing", "run_cooperative", "split_trace"]
