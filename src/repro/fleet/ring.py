"""Consistent-hash partitioning of the object catalog across shards.

The ring places ``replicas`` virtual nodes per shard on the unit
interval and assigns each object key to the first virtual node at or
after the key's own position (wrapping at 1.0).  Every position is a
:func:`repro.faults.engine.uniform_draw` — a SHA-256 hash keyed by
``(seed, label, …)`` — so the layout depends only on ``(seed, shard
names, replicas)``, never on insertion order, process identity, or how
many draws happened before.  The same seed therefore yields the same
assignment in every worker process, and adding or removing a shard
moves only the keys whose successor changed: other shards' virtual
nodes never move, bounding churn to ~K/N of K keys on an N-shard ring.

Lookup is an ``O(log V)`` bisect over the sorted virtual-node
positions (V = shards × replicas); the microbenchmark in
``benchmarks/test_bench_fleet.py`` pins ≥10^5 lookups/s.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import CacheError
from repro.faults.engine import uniform_draw

#: Virtual nodes per shard.  Enough that the largest/smallest shard
#: ownership differs by well under 2x in expectation.
DEFAULT_REPLICAS = 64


class ConsistentHashRing:
    """Seeded consistent-hash ring over named shards.

    Args:
        shards: Shard (proxy) names; must be unique and non-empty.
        seed: Determinism seed for every hash position.
        replicas: Virtual nodes per shard (load-spread knob).
    """

    def __init__(
        self,
        shards: Sequence[str],
        seed: int = 0,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        names = list(shards)
        if not names:
            raise CacheError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise CacheError("shard names must be unique")
        if replicas <= 0:
            raise CacheError("replicas per shard must be positive")
        self._seed = int(seed)
        self._replicas = int(replicas)
        self._shards: List[str] = []
        self._nodes: List[Tuple[float, str]] = []
        self._points: List[float] = []
        for name in names:
            self.add_shard(name)

    # -- layout ----------------------------------------------------------

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def replicas(self) -> int:
        return self._replicas

    @property
    def shards(self) -> Tuple[str, ...]:
        """Current shard names, sorted."""
        return tuple(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def _position(self, shard: str, replica: int) -> float:
        return uniform_draw(self._seed, "ring", shard, replica)

    def add_shard(self, shard: str) -> None:
        """Insert ``shard``'s virtual nodes; other shards never move."""
        if shard in self._shards:
            raise CacheError(f"shard {shard!r} is already on the ring")
        insort(self._shards, shard)
        for replica in range(self._replicas):
            insort(self._nodes, (self._position(shard, replica), shard))
        self._reindex()

    def remove_shard(self, shard: str) -> None:
        """Drop ``shard``; its keys remap to their next successors."""
        if shard not in self._shards:
            raise CacheError(f"shard {shard!r} is not on the ring")
        if len(self._shards) == 1:
            raise CacheError("cannot remove the last shard from a ring")
        self._shards.remove(shard)
        self._nodes = [
            node for node in self._nodes if node[1] != shard
        ]
        self._reindex()

    def _reindex(self) -> None:
        """Rebuild the bare-position index the hot lookup bisects."""
        self._points = [position for position, _ in self._nodes]

    # -- lookup ----------------------------------------------------------

    def owner(self, key: str) -> str:
        """The shard owning ``key``: first virtual node clockwise."""
        point = uniform_draw(self._seed, "key", key)
        index = bisect_left(self._points, point)
        if index == len(self._points):
            index = 0
        return self._nodes[index][1]

    def assignment(self, keys: Iterable[str]) -> Dict[str, str]:
        """key -> owning shard, for every key."""
        return {key: self.owner(key) for key in keys}

    def partition(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """shard -> owned keys (every shard present, possibly empty).

        Keys keep their input order within each shard, so a
        deterministic key iteration yields a deterministic partition.
        """
        owned: Dict[str, List[str]] = {
            shard: [] for shard in self._shards
        }
        for key in keys:
            owned[self.owner(key)].append(key)
        return owned
