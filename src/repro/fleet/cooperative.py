"""The cooperative fleet replay engine.

Independent fleets (``repro.sim.multi``) replay each client site in
isolation; here the sites are *shards* of one cooperative cache: on a
local miss each shard consults the consistent-hash ring owner of the
missed object (and optionally every sibling) before paying backend
cost, and a sibling hit ships the object over the peer link class at
``peer_weight × bytes`` instead of the full WAN fetch.

Design invariants:

* **Policies are cooperation-blind.**  ``policy.process(query)`` sees
  exactly the event it would see in an independent replay — cooperation
  only changes where load bytes are *sourced* (peer vs backend), via
  :meth:`~repro.core.pipeline.DecisionPipeline.account_cooperative`.
  Consequently a single-shard cooperative run is byte-identical to the
  independent path, and an N-shard cooperative run makes the *same
  decisions* as N independent caches while paying strictly less WAN
  whenever at least one sibling hit occurs.
* **Per-shard policy state is independent.**  Sibling residency is
  probed with a read-only ``object_id in policy.store`` check; no shard
  ever mutates another shard's victim heaps or Landlord offsets, so the
  lock-free PR-4 fast paths need no coordination story.
* **Deterministic interleave.**  Shards advance in round-robin client
  order, one query per shard per logical tick, so sibling cache
  contents at any probe are a pure function of (traces, policies,
  ring) — same inputs, same bytes, every run and every process.
* **Per-shard faults.**  An optional
  :class:`~repro.faults.schedule.FaultSchedule` keyed by *shard* names
  darkens siblings: a down shard cannot serve peer transfers (its
  probes are skipped and the requester falls back to the backend), so
  shard outages degrade cooperation gracefully instead of losing data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.core.instrumentation import Instrumentation
from repro.core.pipeline import DecisionPipeline
from repro.core.policies.base import CachePolicy
from repro.errors import CacheError
from repro.faults.engine import FaultEngine
from repro.federation.federation import Federation
from repro.fleet.ring import ConsistentHashRing
from repro.sim.results import SimulationResult
from repro.sim.simulator import SAMPLED_SERIES_POINTS
from repro.workload.trace import PreparedTrace

if TYPE_CHECKING:
    from repro.faults.schedule import FaultSchedule
    from repro.sim.multi import ClientSite


def split_trace(
    trace: PreparedTrace, shards: int, prefix: str = "shard"
) -> List[PreparedTrace]:
    """Round-robin a prepared trace into ``shards`` per-shard traces.

    The split models one user population spread across a proxy fleet:
    every shard sees a different query subsequence drawn from the same
    object universe, which is exactly the overlapping workload where
    cooperation pays (shard A's load is shard B's sibling hit).
    """
    if shards <= 0:
        raise CacheError("shard count must be positive")
    buckets: List[List] = [[] for _ in range(shards)]
    for position, query in enumerate(trace):
        buckets[position % shards].append(query)
    return [
        PreparedTrace(
            name=f"{trace.name}.{prefix}{index}", queries=bucket
        )
        for index, bucket in enumerate(buckets)
    ]


def run_cooperative(
    federation: Federation,
    clients: Sequence["ClientSite"],
    granularity: str = "table",
    policy_sees_weights: bool = True,
    record_series: Union[bool, str] = False,
    instrumentation: Optional[Instrumentation] = None,
    ring: Optional[ConsistentHashRing] = None,
    ring_seed: int = 0,
    probe_all_siblings: bool = False,
    faults: Optional["FaultSchedule"] = None,
) -> List[SimulationResult]:
    """Replay every shard's workload with sibling-hit transfers.

    Returns one :class:`SimulationResult` per client, in client order.
    The run is serial by construction — every probe reads the sibling
    caches as they stand *now*, which is the coupling that makes
    cooperation worth modeling (the independent mode stays the
    process-pool path).  Compiled event streams still come from the
    memoized :meth:`DecisionPipeline.compile_trace`, so repeat sweeps
    over the same traces skip query construction entirely.

    Args:
        ring: Pre-built catalog partition; by default a fresh
            :class:`ConsistentHashRing` over the client names seeded
            with ``ring_seed``.
        probe_all_siblings: Probe every sibling (client order) after
            the ring owner instead of the owner alone.  More peer hits
            per miss, N-1 probes per missed object.
        faults: Optional schedule keyed by *shard names*; a shard
            inside an outage/flap-down window cannot serve peer
            transfers at that tick.
    """
    if not clients:
        raise CacheError("a cooperative fleet needs at least one shard")
    names = [client.name for client in clients]
    if len(set(names)) != len(names):
        raise CacheError("shard names must be unique")
    if ring is None:
        ring = ConsistentHashRing(names, seed=ring_seed)
    else:
        missing = [name for name in names if name not in ring]
        if missing:
            raise CacheError(
                f"ring is missing shards {missing!r}; every client "
                "must own a slice of the catalog"
            )

    pipeline = DecisionPipeline(
        federation,
        granularity,
        policy_sees_weights,
        instrumentation=instrumentation,
    )
    engine = FaultEngine(faults) if faults is not None else None
    policies: Dict[str, CachePolicy] = {
        client.name: client.policy for client in clients
    }
    compiled = [pipeline.compile_trace(client.trace) for client in clients]
    cooperative = len(clients) > 1

    results: List[SimulationResult] = []
    strides: List[int] = []
    for client, stream in zip(clients, compiled):
        stride = 1
        if record_series == "sampled":
            stride = max(1, len(stream.events) // SAMPLED_SERIES_POINTS)
        strides.append(stride)
        results.append(
            SimulationResult(
                policy_name=client.policy.name,
                granularity=granularity,
                capacity_bytes=client.policy.capacity_bytes,
                sequence_bytes=float(stream.sequence_bytes),
                series_stride=stride,
            )
        )

    emit = instrumentation is not None
    rounds = max(len(stream.events) for stream in compiled)
    for tick in range(rounds):
        for position, client in enumerate(clients):
            events = compiled[position].events
            if tick >= len(events):
                continue
            event = events[tick]
            policy = client.policy
            decision = policy.process(event.query)

            peer_loads: List[str] = []
            if cooperative and decision.loads:
                for object_id in decision.loads:
                    provider = _find_provider(
                        object_id,
                        client.name,
                        names,
                        policies,
                        ring,
                        engine,
                        tick,
                        probe_all_siblings,
                    )
                    if provider is not None:
                        peer_loads.append(object_id)

            accounting = pipeline.account_cooperative(
                decision,
                bypass_bytes=event.bypass_bytes,
                servers=event.servers,
                peer_loads=peer_loads,
            )
            result = results[position]
            result.charge(
                accounting, decision, peer_hits=len(peer_loads)
            )
            total = len(events)
            stride = strides[position]
            if record_series and (
                (tick + 1) % stride == 0 or tick == total - 1
            ):
                result.cumulative_bytes.append(  # repro-lint: allow[RPR007] classic recorder, mirrors Simulator.run
                    result.breakdown.total_bytes
                )
            if emit:
                pipeline.emit_decision(
                    index=tick,
                    source="fleet",
                    policy_name=policy.name,
                    decision=decision,
                    accounting=accounting,
                    sql=event.query.sql,
                    yield_bytes=event.query.yield_bytes,
                    tenant=event.tenant,
                    shard=client.name,
                )

    for result, stream in zip(results, compiled):
        result.queries = len(stream.events)
    return results


def _find_provider(
    object_id: str,
    requester: str,
    names: Sequence[str],
    policies: Dict[str, CachePolicy],
    ring: ConsistentHashRing,
    engine: Optional[FaultEngine],
    tick: int,
    probe_all_siblings: bool,
) -> Optional[str]:
    """First live sibling holding ``object_id``, owner probed first.

    Residency is a read-only store-membership check — sibling policy
    state (recency, credits, heaps) is never touched, so a probe can
    never perturb the sibling's own decisions.
    """
    owner = ring.owner(object_id)
    candidates: List[str] = []
    if owner != requester:
        candidates.append(owner)
    if probe_all_siblings:
        candidates.extend(
            name
            for name in names
            if name != requester and name != owner
        )
    for candidate in candidates:
        if engine is not None and not engine.is_up(candidate, tick):
            continue
        if object_id in policies[candidate].store:
            return candidate
    return None
