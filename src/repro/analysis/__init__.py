"""Static-analysis tooling for the reproduction codebase.

* :mod:`repro.analysis.lint` — ``repro-lint``: a domain-aware AST
  linter enforcing the invariants the decision pipeline's correctness
  rests on (typed byte/cost units, simulator determinism, policy
  conformance, accounting discipline).
"""

from repro.analysis.lint import (
    RULE_REGISTRY,
    LintViolation,
    Rule,
    lint_file,
    lint_paths,
    register_rule,
)

__all__ = [
    "RULE_REGISTRY",
    "LintViolation",
    "Rule",
    "lint_file",
    "lint_paths",
    "register_rule",
]
