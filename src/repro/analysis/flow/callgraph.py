"""Project-wide call graph over extracted module summaries.

:class:`CallGraph` merges every module's symbol table into one index,
resolves each recorded call reference to a concrete project function
(following import re-exports and base-class method resolution), and
exposes the strongly-connected components in callee-first order so the
summary fixpoint can run bottom-up with a bounded pass over each
cycle.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.flow.extract import FunctionFacts, ModuleSummary
from repro.analysis.flow.symbols import (
    ClassSymbols,
    Ref,
    resolve_dotted,
)

#: Guards against pathological import-alias or inheritance cycles.
_MAX_HOPS = 10


class CallGraph:
    """Resolved call edges across every module of a project."""

    def __init__(self, summaries: Dict[str, ModuleSummary]) -> None:
        self.modules = summaries
        #: qualname -> facts, across all modules.
        self.functions: Dict[str, FunctionFacts] = {}
        #: qualname -> defining module name.
        self.function_module: Dict[str, str] = {}
        #: method name -> qualnames of every class method with it.
        self._method_index: Dict[str, List[str]] = {}
        #: caller qualname -> [(call-site index, callee qualname)].
        self.edges: Dict[str, List[Tuple[int, str]]] = {}

        for module_name in sorted(summaries):
            summary = summaries[module_name]
            for qualname, facts in summary.functions.items():
                self.functions[qualname] = facts
                self.function_module[qualname] = module_name
                if facts.class_name is not None:
                    self._method_index.setdefault(
                        facts.name, []
                    ).append(qualname)

        for qualname, facts in self.functions.items():
            module_name = self.function_module[qualname]
            resolved: List[Tuple[int, str]] = []
            for index, site in enumerate(facts.calls):
                callee = self.resolve(module_name, facts, site.ref)
                if callee is not None:
                    resolved.append((index, callee))
            self.edges[qualname] = resolved

    # -- reference resolution -------------------------------------------

    def resolve(
        self, module: str, facts: FunctionFacts, ref: Ref
    ) -> Optional[str]:
        """Project function a call reference targets, if determinable."""
        tag = ref[0]
        if tag == "q":
            resolved = self._resolve_qualname(ref[1])
            if resolved is not None:
                return resolved
            return self._unique_method_fallback(ref[1])
        if tag == "s":
            return self._method_of(module, ref[1], ref[2])
        if tag == "m":
            candidates = self._method_index.get(ref[1], [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        return None

    def _unique_method_fallback(self, dotted: str) -> Optional[str]:
        """``<var>.method()`` on an untyped receiver.

        When the head is no project module (so qualname resolution had
        nothing to say) and exactly one project class defines the
        trailing method name, link to it — the same bet the bare
        method index takes for ``self.<attr>.method()`` shapes.
        """
        head, _, rest = dotted.partition(".")
        if not rest or head in self.modules:
            return None
        method = dotted.rsplit(".", 1)[-1]
        candidates = self._method_index.get(method, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    def resolve_name(self, dotted: str) -> Optional[str]:
        """Public entry: project function a dotted path denotes."""
        return self._resolve_qualname(dotted)

    def method_of(
        self, module: str, class_name: str, method: str
    ) -> Optional[str]:
        """Public entry: resolve a method against a class and its MRO."""
        return self._method_of(module, class_name, method)

    def _resolve_qualname(
        self, dotted: str, hops: int = 0
    ) -> Optional[str]:
        if hops > _MAX_HOPS:
            return None
        if dotted in self.functions:
            return dotted
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            summary = self.modules.get(module)
            if summary is None:
                continue
            remainder = parts[split:]
            head = remainder[0]
            symbols = summary.symbols
            if head in symbols.classes:
                if len(remainder) == 2:
                    return self._method_of(module, head, remainder[1])
                return self._method_of(module, head, "__init__")
            if len(remainder) == 1 and head in symbols.functions:
                return f"{module}.{head}"
            if head in symbols.imports:
                target = symbols.imports[head]
                rest = ".".join(remainder[1:])
                return self._resolve_qualname(
                    f"{target}.{rest}" if rest else target, hops + 1
                )
            return None
        return None

    def _resolve_class(
        self, dotted: str, hops: int = 0
    ) -> Optional[Tuple[str, ClassSymbols]]:
        """(module, class symbols) a dotted class path denotes."""
        if hops > _MAX_HOPS:
            return None
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            summary = self.modules.get(module)
            if summary is None:
                continue
            remainder = parts[split:]
            head = remainder[0]
            symbols = summary.symbols
            if len(remainder) == 1:
                found = symbols.classes.get(head)
                if found is not None:
                    return module, found
                if head in symbols.imports:
                    return self._resolve_class(
                        symbols.imports[head], hops + 1
                    )
            return None
        return None

    def _method_of(
        self, module: str, class_name: str, method: str, hops: int = 0
    ) -> Optional[str]:
        """Qualname of ``method`` on the class or its project bases."""
        if hops > _MAX_HOPS:
            return None
        summary = self.modules.get(module)
        if summary is None:
            return None
        symbols = summary.symbols.classes.get(class_name)
        if symbols is None:
            return None
        if method in symbols.methods:
            return f"{module}.{class_name}.{method}"
        for base in symbols.bases:
            ref = resolve_dotted(summary.symbols, base)
            if ref[0] != "q":
                continue
            found = self._resolve_class(ref[1])
            if found is None:
                continue
            base_module, base_symbols = found
            resolved = self._method_of(
                base_module, base_symbols.name, method, hops + 1
            )
            if resolved is not None:
                return resolved
        return None

    def mro_bases(
        self, module: str, class_name: str
    ) -> List[Tuple[str, str]]:
        """Project base classes of a class, nearest-first."""
        out: List[Tuple[str, str]] = []
        seen: Set[Tuple[str, str]] = set()
        work: List[Tuple[str, str, int]] = [(module, class_name, 0)]
        while work:
            mod, cls, depth = work.pop(0)
            if depth > _MAX_HOPS:
                continue
            summary = self.modules.get(mod)
            if summary is None:
                continue
            symbols = summary.symbols.classes.get(cls)
            if symbols is None:
                continue
            for base in symbols.bases:
                ref = resolve_dotted(summary.symbols, base)
                if ref[0] != "q":
                    continue
                found = self._resolve_class(ref[1])
                if found is None:
                    continue
                key = (found[0], found[1].name)
                if key in seen:
                    continue
                seen.add(key)
                out.append(key)
                work.append((key[0], key[1], depth + 1))
        return out

    # -- SCC ordering ----------------------------------------------------

    def sccs(self) -> List[List[str]]:
        """Strongly-connected components, callee-first (reverse topo)."""
        succ: Dict[str, List[str]] = {}
        for caller, pairs in self.edges.items():
            seen_callees: Set[str] = set()
            ordered: List[str] = []
            for _, callee in pairs:
                if callee not in seen_callees:
                    seen_callees.add(callee)
                    ordered.append(callee)
            succ[caller] = ordered

        index: Dict[str, int] = {}
        low: Dict[str, int] = {}
        stack: List[str] = []
        on_stack: Set[str] = set()
        components: List[List[str]] = []
        counter = 0

        for root in sorted(self.functions):
            if root in index:
                continue
            work: List[Tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_index = work[-1]
                if edge_index == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                descended = False
                successors = succ.get(node, [])
                while edge_index < len(successors):
                    child = successors[edge_index]
                    edge_index += 1
                    work[-1] = (node, edge_index)
                    if child not in index:
                        work.append((child, 0))
                        descended = True
                        break
                    if child in on_stack:
                        low[node] = min(low[node], index[child])
                if descended:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    component: List[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)
        return components
