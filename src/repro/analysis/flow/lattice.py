"""The abstract-value lattice for the whole-project dataflow analysis.

Every expression the analysis tracks lives in a small flat lattice of
*currency kinds* mirroring :mod:`repro.core.units`:

* :attr:`AbstractUnit.RAW` — raw byte counts (sizes, ledger byte
  totals);
* :attr:`AbstractUnit.WEIGHTED` — link-weighted costs (bytes × the
  per-link ``f`` factor of eq. 1);
* :attr:`AbstractUnit.YIELD` — per-query result bytes attributed to an
  object.  Yields are raw-byte-denominated, so they are *compatible*
  with :attr:`AbstractUnit.RAW` and conflict with
  :attr:`AbstractUnit.WEIGHTED`;
* :attr:`AbstractUnit.WEIGHT` — a per-byte link weight (the conversion
  factor, not a currency);
* :attr:`AbstractUnit.MONEY` — money-like floats (prices, budgets in
  dollars).  Nothing in the WAN economy is money; mixing it with bytes
  or costs is always a bug;
* :attr:`AbstractUnit.UNKNOWN` — top: no information.

On top of the unit kinds, function summaries carry two effect bits —
"tainted by nondeterminism" and "mutates shared policy state" — that
are propagated separately (see :mod:`repro.analysis.flow.summaries`).

Symbolic expressions (``UExpr``) are JSON-serializable nested lists so
per-module summaries round-trip through the on-disk cache:

* ``["k", "<UNIT>"]`` — a concrete unit constant;
* ``["p", i]`` — the unit of parameter ``i`` of the enclosing function;
* ``["c", i]`` — the unit returned by the enclosing function's call
  site ``i`` (an index into its recorded call list);
* ``["mul", a, b]`` / ``["div", a, b]`` — unit algebra over the
  sanctioned conversion shapes (bytes × weight = cost, cost / weight =
  bytes, cost / bytes = weight);
* ``["merge", a, b]`` — the join of two branches (add/sub results,
  conditional expressions);
* ``["?"]`` — unknown.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, Tuple

#: A serialized symbolic unit expression (see the module docstring).
UExpr = List[Any]


class AbstractUnit(enum.Enum):
    """One point of the currency-kind lattice."""

    RAW = "raw bytes"
    WEIGHTED = "weighted cost"
    YIELD = "yield bytes"
    WEIGHT = "link weight"
    MONEY = "money"
    UNKNOWN = "unknown"


#: Units denominated in raw bytes (mutually compatible).
RAW_LIKE = frozenset({AbstractUnit.RAW, AbstractUnit.YIELD})

_RAW_EXACT = frozenset(
    {"size", "sizes", "num_bytes", "byte_size", "nbytes", "capacity"}
)
_RAW_SUFFIXES = ("_bytes", "_size", "_sizes")
_YIELD_EXACT = frozenset({"yields"})
_YIELD_SUFFIXES = ("_yield", "_yields")
_WEIGHTED_EXACT = frozenset({"cost", "costs"})
_WEIGHTED_SUFFIXES = ("_cost", "_costs")
_WEIGHT_EXACT = frozenset({"weight", "weights"})
_WEIGHT_SUFFIXES = ("_weight", "_weights")
_MONEY_EXACT = frozenset({"dollars", "price", "prices", "budget_usd"})
_MONEY_SUFFIXES = ("_usd", "_dollars", "_price")


def classify_name(name: str) -> AbstractUnit:
    """Unit implied by an identifier, by the repo's naming conventions.

    The conventions are those RPR001 enforces per file, extended with
    the yield and money kinds the interprocedural lattice adds.
    """
    name = name.lower().lstrip("_")
    if name in _WEIGHTED_EXACT or name.endswith(_WEIGHTED_SUFFIXES):
        return AbstractUnit.WEIGHTED
    if name in _RAW_EXACT or name.endswith(_RAW_SUFFIXES):
        return AbstractUnit.RAW
    if name in _YIELD_EXACT or name.endswith(_YIELD_SUFFIXES):
        return AbstractUnit.YIELD
    if name in _WEIGHT_EXACT or name.endswith(_WEIGHT_SUFFIXES):
        return AbstractUnit.WEIGHT
    if name in _MONEY_EXACT or name.endswith(_MONEY_SUFFIXES):
        return AbstractUnit.MONEY
    return AbstractUnit.UNKNOWN


def merge(left: AbstractUnit, right: AbstractUnit) -> AbstractUnit:
    """Join of two lattice points (compatible kinds keep the sharper)."""
    if left is right:
        return left
    if left is AbstractUnit.UNKNOWN:
        return right
    if right is AbstractUnit.UNKNOWN:
        return left
    if left in RAW_LIKE and right in RAW_LIKE:
        return AbstractUnit.RAW
    return AbstractUnit.UNKNOWN


def mixes(left: AbstractUnit, right: AbstractUnit) -> bool:
    """Whether combining/comparing the two kinds is a unit-mixing bug."""
    pair = {left, right}
    if AbstractUnit.WEIGHTED in pair and pair & RAW_LIKE:
        return True
    if AbstractUnit.MONEY in pair and pair & (
        RAW_LIKE | {AbstractUnit.WEIGHTED}
    ):
        return True
    return False


def multiply(left: AbstractUnit, right: AbstractUnit) -> AbstractUnit:
    """Result kind of ``left * right`` under the sanctioned algebra."""
    pair = {left, right}
    if pair & RAW_LIKE and AbstractUnit.WEIGHT in pair:
        return AbstractUnit.WEIGHTED  # bytes x weight = cost
    return merge(left, right)


def divide(left: AbstractUnit, right: AbstractUnit) -> AbstractUnit:
    """Result kind of ``left / right`` under the sanctioned algebra."""
    if left is AbstractUnit.WEIGHTED and right in RAW_LIKE:
        return AbstractUnit.WEIGHT  # cost / bytes = per-byte weight
    if left is AbstractUnit.WEIGHTED and right is AbstractUnit.WEIGHT:
        return AbstractUnit.RAW  # cost / weight = bytes
    if left is right:
        return AbstractUnit.UNKNOWN  # same-kind ratio is dimensionless
    if right is AbstractUnit.UNKNOWN:
        return left
    return AbstractUnit.UNKNOWN


# -- UExpr constructors (kept together so serialization stays in sync) --


def u_const(unit: AbstractUnit) -> UExpr:
    return ["k", unit.name]


def u_param(index: int) -> UExpr:
    return ["p", index]


def u_call(call_index: int) -> UExpr:
    return ["c", call_index]


def u_mul(left: UExpr, right: UExpr) -> UExpr:
    return ["mul", left, right]


def u_div(left: UExpr, right: UExpr) -> UExpr:
    return ["div", left, right]


def u_merge(left: UExpr, right: UExpr) -> UExpr:
    if left == right:
        return left
    return ["merge", left, right]


def u_unknown() -> UExpr:
    return ["?"]


UNKNOWN_EXPR: UExpr = ["?"]


def const_unit(expr: UExpr) -> Optional[AbstractUnit]:
    """The concrete unit of a ``["k", …]`` expression, else None."""
    if expr and expr[0] == "k":
        return AbstractUnit[str(expr[1])]
    return None


def describe_pair(
    left: AbstractUnit, right: AbstractUnit
) -> Tuple[str, str]:
    """Human-readable value phrases for a mixed pair, left and right."""
    return left.value, right.value
