"""Project loader: every module parsed once, hashed for the cache.

:func:`load_project` walks a package root (``src/repro`` in CI, a
fixture mini-project in tests), reads every ``.py`` file, and yields
:class:`ModuleInfo` records carrying the source, its SHA-256 (the
summary-cache key), and a lazily-parsed AST — warm cache runs never
pay for parses the summaries already cover.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import AnalysisError


@dataclass
class ModuleInfo:
    """One project module: identity, source, and a lazy AST."""

    name: str
    path: Path
    source: str
    sha256: str
    lines: List[str] = field(default_factory=list)
    _tree: Optional[ast.Module] = field(default=None, repr=False)

    @property
    def tree(self) -> ast.Module:
        """The parsed AST (parsed on first access, then memoized)."""
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    @property
    def package(self) -> str:
        """The root package this module belongs to."""
        return self.name.split(".", 1)[0]


def module_name_for(root: Path, package: str, path: Path) -> str:
    """Dotted module name of ``path`` relative to the project root."""
    relative = path.relative_to(root)
    parts = [package] + list(relative.parts)
    stem = Path(parts[-1]).stem
    if stem == "__init__":
        parts = parts[:-1]
    else:
        parts[-1] = stem
    return ".".join(parts)


def load_module(root: Path, package: str, path: Path) -> ModuleInfo:
    """Read and hash one module (the AST stays unparsed until used)."""
    source = path.read_text(encoding="utf-8")
    return ModuleInfo(
        name=module_name_for(root, package, path),
        path=path,
        source=source,
        sha256=hashlib.sha256(source.encode("utf-8")).hexdigest(),
        lines=source.splitlines(),
    )


def load_project(
    root: Path, package: Optional[str] = None
) -> Dict[str, ModuleInfo]:
    """Load every ``.py`` module under ``root``, keyed by module name.

    ``package`` defaults to the root directory's name, so loading
    ``src/repro`` produces ``repro.*`` modules and a fixture directory
    ``unitsbad`` produces ``unitsbad.*`` modules.
    """
    root = Path(root)
    if not root.is_dir():
        raise AnalysisError(f"project root is not a directory: {root}")
    package = package or root.name
    modules: Dict[str, ModuleInfo] = {}
    for path in sorted(root.rglob("*.py")):
        info = load_module(root, package, path)
        if info.name in modules:
            raise AnalysisError(
                f"duplicate module name {info.name!r}: "
                f"{modules[info.name].path} vs {path}"
            )
        modules[info.name] = info
    if not modules:
        raise AnalysisError(f"no python modules under {root}")
    return modules
